package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrNoBoundary is returned when no boundary crossing of the level set can be
// located from the starting point in any probed direction.
var ErrNoBoundary = errors.New("optimize: no level-set boundary found")

// ErrEvalBudget is returned when the search exceeds LevelSetOptions.MaxEvals
// objective evaluations before converging.
var ErrEvalBudget = errors.New("optimize: evaluation budget exhausted")

// LevelSetOptions configure NearestOnLevelSet.
type LevelSetOptions struct {
	// Directions is the number of additional random probe directions beyond
	// the deterministic ones (±eᵢ and ±∇f). Zero selects 4·n.
	Directions int
	// MaxSpan bounds how far rays are shot from the origin point. Zero
	// selects 1e6·(1 + ‖x0‖∞). Must be finite.
	MaxSpan float64
	// Tol is the boundary tolerance in f-units. Zero selects 1e-10.
	Tol float64
	// RefineIters bounds the tangential-descent refinement. Zero selects 200.
	RefineIters int
	// Seed seeds the random probe directions; the default (0) is fine —
	// the stream is deterministic either way.
	Seed int64
	// SkipPolish disables the final Nelder–Mead penalty polish. The polish
	// costs extra evaluations but rescues non-smooth boundaries (max-type
	// impact functions) where tangential descent stalls.
	SkipPolish bool
	// Ctx, when non-nil, makes the search cooperatively cancellable: it is
	// checked before every objective evaluation (once per block for k-probe
	// evaluations), so a cancelled or expired context aborts the search
	// within one evaluation — or one block — of the impact function. The
	// returned error wraps ctx.Err().
	Ctx context.Context
	// MaxEvals, when positive, bounds the total number of objective
	// evaluations; exceeding it aborts the search with ErrEvalBudget. Zero
	// means unlimited. A k-probe block is admitted whenever the budget
	// allows at least one more scalar evaluation, so a budgeted search may
	// overshoot by up to one block (KBlock−1 evaluations, or KBlockMax−1
	// when adaptive widening is enabled).
	MaxEvals int
	// FK, when non-nil, evaluates a block of probe points in one call and
	// must agree with f pointwise: FK(xs, out) sets out[p] = f(xs[p]). The
	// ray scan and gradient estimation then batch their probes through FK
	// instead of calling f once per point, which lets vectorized impact
	// kernels amortize per-call overhead. FK changes only how evaluations
	// are grouped, never where the search probes: results are bit-identical
	// with and without it.
	FK FuncK
	// KBlock is the number of ray-scan probes grouped per FK call. Zero
	// selects 8 when FK is set. Ignored (forced to 1) without FK. Larger
	// blocks amortize call overhead but over-evaluate more probes past a
	// sign change; the result is identical for every value.
	KBlock int
	// KBlockMax, when greater than KBlock, lets deep ray scans widen the
	// probe block adaptively: each scan starts at KBlock and doubles the
	// block (up to KBlockMax) once the grid walk passes kAdaptDepth blocks
	// of the current width, so far-away boundaries amortize ever more
	// probes per FK call while short scans keep the small block's tight
	// over-evaluation bound. Probe values depend only on the grid position,
	// never on how probes are grouped (fillWindow), so every widening
	// schedule is bit-identical to the fixed-block and scalar searches.
	// Zero or KBlock disables widening. Ignored without FK.
	KBlockMax int
	// Warm, when non-nil, carries state between searches that share the
	// same objective and origin point: the probe direction set (and its
	// gradient estimate), memoized objective values along the fixed scan
	// grid, and per-level converged brackets. See WarmState for the reuse
	// and validation contract. The state is mutated in place; the caller
	// must not share it with a concurrent search.
	Warm *WarmState
}

// searchAbort unwinds the search's deep call stacks (Brent brackets,
// Nelder–Mead, tangential descent) when the context is cancelled or the
// evaluation budget is exhausted. It is recovered at the NearestOnLevelSet
// boundary and converted into an ordinary error — it never escapes the
// package.
type searchAbort struct{ err error }

// warmInvalid unwinds the search when a reused warm record fails validation
// against the live objective (the frozen-f contract was violated). It is
// recovered inside NearestOnLevelSet, which discards the warm state and
// re-runs the search cold.
type warmInvalid struct{}

// clampMargin pads the third-best-candidate scan clamp. Any crossing the
// clamp discards lies strictly beyond d3·clampMargin, while candidate
// distances track their ray roots to a relative error many orders of
// magnitude below 1e-7 (directions are unit vectors), so clamped and
// unclamped searches keep identical top-3 candidate sets — and therefore
// identical results.
const clampMargin = 1 + 1e-7

// Result is the outcome of a nearest-boundary-point search.
type Result struct {
	// Point is the boundary point nearest to the origin point.
	Point []float64
	// Dist is the Euclidean distance from the origin point to Point — the
	// robustness radius when f is an impact function and level its bound.
	Dist float64
	// Evals counts objective evaluations spent (each point of a k-probe
	// block counts as one). Warm-started searches spend fewer; k-probe
	// blocks may spend slightly more past a sign change. The returned Point
	// and Dist are unaffected by either.
	Evals int
}

// NearestOnLevelSet finds (approximately) the point on {x : f(x) = level}
// nearest to x0 in the Euclidean norm:
//
//	min ‖x − x0‖₂  subject to  f(x) = level.
//
// This is exactly the robustness radius of the paper's Eq. 1 and Eq. 2 for a
// single constraint boundary. The search is derivative-free at its core and
// proceeds in three phases:
//
//  1. Ray shooting — cast rays from x0 along ± coordinate axes, ± the
//     numerical gradient, and a deterministic set of random directions. Each
//     ray scans a fixed geometric probe grid (determined by x0 alone, so
//     values are memoizable across searches — see WarmState), brackets the
//     first sign change (golden-section-refining any stepped-over dip), and
//     solves the 1-D crossing with Brent's method plus a first-crossing
//     walk-back. Once three crossings are in hand, later rays stop scanning
//     just past the third-best distance: a farther crossing can influence
//     neither the best point nor the refinement set, so the clamp only
//     removes dead evaluations. With FK set, scan probes and gradient
//     estimates are evaluated in k-wide blocks.
//  2. Tangential descent — from the best crossings, repeatedly remove the
//     component of (x − x0) tangent to the boundary and re-project onto the
//     boundary, shrinking the distance monotonically (first-order optimality
//     on smooth boundaries).
//  3. Penalty polish — a short Nelder–Mead run on ‖x − x0‖² + w·(f(x) −
//     level)², which handles kinks in piecewise boundaries.
//
// The returned error is non-nil when no boundary crossing exists within
// MaxSpan in any probed direction (e.g. the constraint can never be violated;
// the paper would call such a system infinitely robust in that direction),
// when opt.Ctx is cancelled mid-search (the error wraps ctx.Err()), or when
// opt.MaxEvals is exhausted (the error wraps ErrEvalBudget).
func NearestOnLevelSet(f Func, level float64, x0 []float64, opt LevelSetOptions) (res Result, err error) {
	n := len(x0)
	if n == 0 {
		return Result{}, errors.New("optimize: empty origin point")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.Directions <= 0 {
		opt.Directions = 4 * n
	}
	if opt.MaxSpan <= 0 {
		span := 1.0
		for _, x := range x0 {
			if a := math.Abs(x); a > span {
				span = a
			}
		}
		opt.MaxSpan = 1e6 * span
	}
	if opt.RefineIters <= 0 {
		opt.RefineIters = 200
	}
	if opt.FK == nil {
		opt.KBlock, opt.KBlockMax = 1, 1
	} else {
		if opt.KBlock <= 0 {
			opt.KBlock = 8
		}
		if opt.KBlockMax < opt.KBlock {
			opt.KBlockMax = opt.KBlock
		}
	}

	evals := 0
	fr := getFrame(n)
	defer putFrame(fr)
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(searchAbort)
			if !ok {
				panic(r)
			}
			res, err = Result{Evals: evals}, ab.err
		}
	}()
	// Every objective evaluation — ray shooting, gradients, the polish —
	// flows through these wrappers, so cancellation and the budget are
	// enforced uniformly no matter which phase is running.
	inner := f
	f = func(x []float64) float64 {
		if opt.Ctx != nil {
			if cerr := opt.Ctx.Err(); cerr != nil {
				panic(searchAbort{fmt.Errorf("optimize: level-set search cancelled after %d evaluations: %w", evals, cerr)})
			}
		}
		if opt.MaxEvals > 0 && evals >= opt.MaxEvals {
			panic(searchAbort{fmt.Errorf("%w: %d evaluations", ErrEvalBudget, opt.MaxEvals)})
		}
		evals++
		return inner(x)
	}
	var fk FuncK
	if opt.FK != nil {
		innerK := opt.FK
		fk = func(xs [][]float64, out []float64) {
			if opt.Ctx != nil {
				if cerr := opt.Ctx.Err(); cerr != nil {
					panic(searchAbort{fmt.Errorf("optimize: level-set search cancelled after %d evaluations: %w", evals, cerr)})
				}
			}
			if opt.MaxEvals > 0 && evals >= opt.MaxEvals {
				panic(searchAbort{fmt.Errorf("%w: %d evaluations", ErrEvalBudget, opt.MaxEvals)})
			}
			evals += len(xs)
			innerK(xs, out)
		}
	}

	f0 := f(x0)
	g0 := f0 - level
	fscale := 1 + math.Abs(level)
	if math.Abs(g0) <= opt.Tol*fscale {
		return Result{Point: append([]float64(nil), x0...), Dist: 0, Evals: evals}, nil
	}

	s := &lsSearch{
		f: f, fk: fk,
		level: level, fscale: fscale, g0: g0,
		x0: x0, opt: &opt, fr: fr,
		kblock: opt.KBlock,
		kmax:   opt.KBlockMax,
		step:   1e-3 * (1 + maxAbs(x0)),
		n:      n,
	}
	s.grid = &fr.grid
	if opt.Warm != nil {
		opt.Warm.prepare(x0, s.step, opt.Seed, opt.Directions, opt.Tol)
		s.st = opt.Warm
		s.grid = &opt.Warm.grid
	}

	best, rerr, retry := s.runPhases()
	if retry {
		// A reused warm record contradicted the live objective: the caller
		// violated the frozen-f contract. Drop everything the state learned
		// and repeat the search cold — correctness is preserved at the cost
		// of the evaluations already spent.
		s.st.reset()
		s.st.prepare(x0, s.step, opt.Seed, opt.Directions, opt.Tol)
		s.coldOnly = true
		best, rerr, _ = s.runPhases()
	}
	if rerr != nil {
		return Result{Evals: evals}, rerr
	}
	best.Evals = evals
	return best, nil
}

// lsSearch is the per-call state of one nearest-on-level-set search: the
// budget-wrapped objective(s), the scan grid, the optional warm state, and
// the frame of scratch buffers.
type lsSearch struct {
	f      Func  // budget-wrapped scalar objective
	fk     FuncK // budget-wrapped k-probe objective (nil = scalar only)
	level  float64
	fscale float64
	g0     float64 // f(x0) − level
	x0     []float64
	opt    *LevelSetOptions
	fr     *searchFrame
	st     *WarmState
	lrec   *levelRec
	grid   *[]float64
	kblock int // current probe-block width (widens up to kmax on deep scans)
	kmax   int
	step   float64
	n      int

	coldOnly  bool // retry after invalidation: never trust records
	scanEpoch int  // invalidates the probe window between ray scans
	winEpoch  int
	winBase   int
}

// runPhases executes the three search phases. retry is set when a warm
// record failed validation; the caller resets the state and calls again.
func (s *lsSearch) runPhases() (best Result, err error, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(warmInvalid); ok {
				best, err, retry = Result{}, nil, true
				return
			}
			panic(r)
		}
	}()
	opt, x0, n := s.opt, s.x0, s.n
	g := func(x []float64) float64 { return s.f(x) - s.level }

	// --- Phase 1: ray shooting -----------------------------------------
	dirs := s.dirSet()
	if s.st != nil {
		s.lrec = s.st.level(s.level, len(dirs))
	} else {
		s.lrec = nil
	}
	best = Result{Dist: math.Inf(1)}
	var candidates [][]float64
	// Three smallest candidate distances so far; d3 clamps later rays.
	d1, d2, d3 := math.Inf(1), math.Inf(1), math.Inf(1)
	for di, d := range dirs {
		limit := opt.MaxSpan
		if c := d3 * clampMargin; c < limit {
			limit = c
		}
		t, ok := s.shoot(di, d, limit)
		if !ok {
			continue
		}
		pt := make([]float64, n)
		for i := range pt {
			pt[i] = x0[i] + t*d[i]
		}
		dist := euclid(pt, x0)
		candidates = append(candidates, pt)
		switch {
		case dist < d1:
			d1, d2, d3 = dist, d1, d2
		case dist < d2:
			d2, d3 = dist, d2
		case dist < d3:
			d3 = dist
		}
		if dist < best.Dist {
			best = Result{Point: pt, Dist: dist}
		}
	}
	if math.IsInf(best.Dist, 1) {
		// Descent fallback: none of the probed rays crossed the level set.
		// That happens when the sublevel region subtends a tiny solid angle
		// from x0 (a small or eccentric ellipsoid far away). Descend g
		// itself; any opposite-sign point found defines a ray from x0 that
		// is guaranteed to cross.
		sgn := 1.0
		if s.g0 < 0 {
			sgn = -1
		}
		xm, _ := NelderMead(func(x []float64) float64 { return sgn * g(x) }, x0, NMOptions{
			InitialStep: 0.1 * (1 + maxAbs(x0)),
			MaxEvals:    400 * n,
		})
		if sgn*g(xm) < 0 {
			if pt, ok := s.project(xm, math.Inf(1)); ok {
				candidates = append(candidates, pt)
				best = Result{Point: pt, Dist: euclid(pt, x0)}
			}
		}
	}
	if math.IsInf(best.Dist, 1) {
		return Result{}, fmt.Errorf("%w within span %g of %v", ErrNoBoundary, opt.MaxSpan, x0), false
	}

	// --- Phase 2: tangential descent from the few best crossings -------
	refineFrom := topK(candidates, x0, 3)
	for _, start := range refineFrom {
		pt, dist := s.tangentialDescent(g, start)
		if dist < best.Dist {
			best = Result{Point: pt, Dist: dist}
		}
	}

	// --- Phase 3: Nelder–Mead penalty polish ----------------------------
	if !opt.SkipPolish {
		w := 1e4 * (1 + best.Dist*best.Dist) / (s.fscale * s.fscale)
		penalty := func(x []float64) float64 {
			dx := euclid(x, x0)
			gv := s.f(x) - s.level
			return dx*dx + w*gv*gv
		}
		px, _ := NelderMead(penalty, best.Point, NMOptions{
			InitialStep: 0.05 * (best.Dist + 1e-9),
			MaxEvals:    400 * n,
		})
		// Re-project the polished point exactly onto the boundary along the
		// line through x0, so feasibility is not sacrificed for distance.
		if proj, ok := s.project(px, best.Dist); ok {
			if d := euclid(proj, x0); d < best.Dist {
				best = Result{Point: proj, Dist: d}
			}
		}
	}
	return best, nil, false
}

// dirSet builds (or reuses from the warm state) the probe direction set:
// ± basis vectors, ± the gradient direction, and pseudo-random unit vectors,
// all rows of a single backing array.
func (s *lsSearch) dirSet() [][]float64 {
	if s.st != nil && s.st.dirs != nil {
		return s.st.dirs
	}
	n, opt := s.n, s.opt
	maxDirs := 2*n + 2 + opt.Directions
	var backing []float64
	var rows [][]float64
	if s.st != nil {
		// Warm directions outlive the pooled frame; give them their own
		// backing.
		backing = make([]float64, maxDirs*n)
		rows = make([][]float64, 0, maxDirs)
	} else {
		fr := s.fr
		if cap(fr.dirBack) < maxDirs*n {
			fr.dirBack = make([]float64, maxDirs*n)
		}
		backing = fr.dirBack[:maxDirs*n]
		if cap(fr.dirRows) < maxDirs {
			fr.dirRows = make([][]float64, maxDirs)
		}
		rows = fr.dirRows[:0]
	}
	used := 0
	row := func() []float64 {
		r := backing[used*n : (used+1)*n : (used+1)*n]
		return r
	}
	take := func(r []float64) {
		rows = append(rows, r)
		used++
	}
	for i := 0; i < n; i++ {
		dp := row()
		for j := range dp {
			dp[j] = 0
		}
		dp[i] = 1
		take(dp)
		dm := row()
		for j := range dm {
			dm[j] = 0
		}
		dm[i] = -1
		take(dm)
	}
	grad := s.fr.grad
	s.gradInto(grad, s.x0)
	if nrm := norm2(grad); nrm > 0 {
		gp := row()
		for i := range grad {
			gp[i] = grad[i] / nrm
		}
		take(gp)
		gm := row()
		for i := range grad {
			gm[i] = -grad[i] / nrm
		}
		take(gm)
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed1e7))
	for k := 0; k < opt.Directions; k++ {
		d := row()
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		if nrm := norm2(d); nrm > 0 {
			for i := range d {
				d[i] /= nrm
			}
			take(d)
		}
	}
	if s.st != nil {
		s.st.dirs = rows
	}
	return rows
}

// gradInto estimates ∇f into g, batching the 2n central-difference probes
// through the k-probe objective when one is available. Both paths compute
// bit-identical values.
func (s *lsSearch) gradInto(g []float64, x []float64) {
	if s.fk != nil {
		s.fr.ensureK(2*s.n, s.n)
		gradientIntoK(g, s.fk, x, s.fr.kxs, s.fr.kout)
		return
	}
	GradientInto(g, s.fr.gtmp, s.f, x)
}

// shoot locates the first boundary crossing along x0 + t·d, t > 0, scanning
// the canonical probe grid up to limit, then Brent-solving with a
// first-crossing walk-back. di ≥ 0 identifies a grid direction eligible for
// memoization and warm records; di < 0 is an ad-hoc direction (projection
// rays). It returns the converged root t.
func (s *lsSearch) shoot(di int, d []float64, limit float64) (float64, bool) {
	tol := s.opt.Tol * s.fscale
	line := func(t float64) float64 {
		x := s.fr.ray
		for i := range x {
			x[i] = s.x0[i] + t*d[i]
		}
		return s.f(x) - s.level
	}
	// Warm replay: a still-valid record skips the scan and solve outright.
	if di >= 0 && s.lrec != nil && !s.coldOnly {
		if t, ok, decided := s.replayRec(di, d, limit); decided {
			return t, ok
		}
	}
	a, b, kind, idx, found := s.scanGrid(di, d, line, limit)
	if !found {
		if di >= 0 && s.lrec != nil {
			s.lrec.rays[di] = rayRec{kind: recNone, limit: limit}
		}
		return 0, false
	}
	t, ok := solveRay(line, a, b, tol)
	if !ok {
		if di >= 0 && s.lrec != nil {
			s.lrec.rays[di] = rayRec{}
		}
		return 0, false
	}
	if di >= 0 && s.lrec != nil {
		s.lrec.rays[di] = rayRec{kind: kind, idx: idx, lo: a, hi: b, t: t}
	}
	return t, true
}

// replayRec consults the warm record of ray di at the current level.
// decided=false means no applicable record: run the full scan (its grid
// probes will mostly hit the memo anyway). A record is reused only after
// revalidation against the live objective: the recorded bracket must still
// change sign, and live values at grid positions must bit-match the memo.
// Any mismatch panics warmInvalid, discarding the whole state.
// rawAt evaluates the raw objective at x0 + t·d, constructing the probe
// point with the same arithmetic as the scan's line evaluations so the
// result is bit-comparable with memoized values.
func (s *lsSearch) rawAt(d []float64, t float64) float64 {
	x := s.fr.ray
	for i := range x {
		x[i] = s.x0[i] + t*d[i]
	}
	return s.f(x)
}

func (s *lsSearch) replayRec(di int, d []float64, limit float64) (t float64, ok, decided bool) {
	rec := &s.lrec.rays[di]
	switch rec.kind {
	case recGrid, recDip:
		// The recording scan found this crossing at detection probe
		// rec.idx; the replaying scan reaches that probe only if the
		// position two probes back is inside today's limit (the scan's stop
		// rule). Otherwise fall through to a real scan, which will stop
		// early and record recNone — exactly what a cold search would do.
		if int(rec.idx) >= 2 && s.gridPos(int(rec.idx)-2) >= limit {
			return 0, false, false
		}
		// Evaluate raw f at the bracket ends: the memo stores raw values,
		// and (f−level)+level does not round-trip bit-exactly for every
		// magnitude pair, so the cross-check must compare raw against raw.
		fa := s.rawAt(d, rec.lo)
		fb := s.rawAt(d, rec.hi)
		ga := fa - s.level
		gb := fb - s.level
		if rec.kind == recGrid && s.st != nil {
			// lo/hi sit on the grid (lo may be the origin, t=0): cross-check
			// the live values against the memo bit-for-bit.
			m := s.st.memoFor(di, int(rec.idx)+1)
			if rec.idx > 0 && !math.IsNaN(m[rec.idx-1]) &&
				math.Float64bits(m[rec.idx-1]) != math.Float64bits(fa) {
				panic(warmInvalid{})
			}
			if !math.IsNaN(m[rec.idx]) &&
				math.Float64bits(m[rec.idx]) != math.Float64bits(fb) {
				panic(warmInvalid{})
			}
		}
		if ga != 0 && gb != 0 && (ga > 0) == (gb > 0) {
			panic(warmInvalid{}) // sign change left the recorded window
		}
		s.st.stats.RayReuses++
		return rec.t, true, true
	case recNone:
		if rec.limit > 0 && limit <= rec.limit {
			// The recording scan already exhausted at least this much span
			// without a crossing.
			return 0, false, true
		}
	}
	return 0, false, false
}

// scanGrid hunts the first sign change of f−level along direction d over the
// canonical probe grid, golden-section-refining any stepped-over |g| dip. It
// mirrors BracketRoot's probe placement and stop rule exactly (positions are
// a function of the origin-scaled step alone; limit only decides where the
// scan stops, so clamped, memoized, and k-probe scans all see bit-identical
// values). kind/idx describe the crossing for the warm record.
func (s *lsSearch) scanGrid(di int, d []float64, line Func1, limit float64) (a, b float64, kind uint8, idx int32, found bool) {
	s.scanEpoch++
	s.kblock = s.opt.KBlock // each scan re-earns its adaptive widening
	prevT, prevG := 0.0, s.g0
	prev2T, prev2G := math.NaN(), math.Inf(1)
	for i := 0; ; i++ {
		t := s.gridPos(i)
		gx := s.gridVal(di, d, i) - s.level
		if gx == 0 || (prevG > 0) != (gx > 0) {
			return prevT, t, recGrid, int32(i), true
		}
		// g dipped between prev2 and t without changing sign at the probes:
		// a crossing may hide inside the dip.
		if !math.IsNaN(prev2T) && math.Abs(prevG) < math.Abs(prev2G) && math.Abs(prevG) < math.Abs(gx) {
			if lo, hi, ok := refineDip(line, prev2T, prevT, t, prevG); ok {
				return lo, hi, recDip, int32(i), true
			}
		}
		if !math.IsNaN(prev2T) && prev2T >= limit {
			return 0, 0, recNone, 0, false
		}
		prev2T, prev2G = prevT, prevG
		prevT, prevG = t, gx
	}
}

// gridPos returns scan-grid position i, extending the shared grid as
// needed. Positions follow BracketRoot's recurrence with t0 = 0: geometric
// spans step·1.8ᵇ, each subdivided into bracketSubdiv probes.
func (s *lsSearch) gridPos(i int) float64 {
	g := *s.grid
	for len(g) <= i {
		blk := len(g) / bracketSubdiv
		span := s.step
		for k := 0; k < blk; k++ {
			span *= 1.8
		}
		prev := 0.0
		if len(g) > 0 {
			prev = g[len(g)-1]
		}
		next := span
		for j := 1; j <= bracketSubdiv; j++ {
			g = append(g, prev+(next-prev)*float64(j)/bracketSubdiv)
		}
	}
	*s.grid = g
	return g[i]
}

// gridVal returns the raw objective value at grid position i of direction
// di, consulting (and feeding) the warm memo, and evaluating misses through
// the k-probe objective a window at a time when one is available.
func (s *lsSearch) gridVal(di int, d []float64, i int) float64 {
	if s.st != nil && di >= 0 {
		m := s.st.memoFor(di, i+1)
		if v := m[i]; !math.IsNaN(v) {
			s.st.stats.MemoHits++
			return v
		}
	}
	if s.kmax > s.kblock && i >= s.kblock*kAdaptDepth {
		// Deep scan: the boundary is far out on this ray, so widen the
		// probe block geometrically (matching the grid's geometric spans)
		// to amortize more probes per FK call. Realigning the window to
		// the new width only regroups future evaluations; the probe
		// positions and values are untouched, so widening is bit-exact.
		nk := s.kblock
		for nk < s.kmax && i >= nk*kAdaptDepth {
			nk *= 2
		}
		if nk > s.kmax {
			nk = s.kmax
		}
		s.kblock = nk
		s.winBase = -1 // force a refill under the new alignment
	}
	base := i - i%s.kblock
	if s.winEpoch != s.scanEpoch || s.winBase != base {
		s.fillWindow(di, d, base)
	}
	return s.fr.win[i-base]
}

// kAdaptDepth is the adaptive-widening trigger: once a scan's grid index
// passes this many blocks of the current width, the block doubles (capped at
// KBlockMax). 4 keeps short scans — the common case, boundaries within a few
// origin-scaled spans — on the configured block while letting thousand-probe
// walks reach the wide blocks within a few windows.
const kAdaptDepth = 4

// fillWindow evaluates the probe window [base, base+kblock) of direction d,
// copying memo-known values and batching the misses through fk (falling back
// to scalar evaluation). Windows are aligned to multiples of kblock, so the
// set of points a k-probe search evaluates is independent of where any one
// scan stops — over-evaluation past a sign change wastes at most a window,
// never changes a value.
func (s *lsSearch) fillWindow(di int, d []float64, base int) {
	k := s.kblock
	fr := s.fr
	if cap(fr.win) < k {
		fr.win = make([]float64, k)
	}
	fr.win = fr.win[:k]
	var memo []float64
	if s.st != nil && di >= 0 {
		memo = s.st.memoFor(di, base+k)
	}
	miss := 0
	for j := 0; j < k; j++ {
		if memo != nil && !math.IsNaN(memo[base+j]) {
			fr.win[j] = memo[base+j]
		} else {
			fr.win[j] = math.NaN()
			miss++
		}
	}
	if miss > 1 && s.fk != nil {
		fr.ensureK(miss, s.n)
		m := 0
		for j := 0; j < k; j++ {
			if !math.IsNaN(fr.win[j]) {
				continue
			}
			t := s.gridPos(base + j)
			row := fr.kxs[m]
			for q := 0; q < s.n; q++ {
				row[q] = s.x0[q] + t*d[q]
			}
			m++
		}
		s.fk(fr.kxs[:m], fr.kout[:m])
		m = 0
		for j := 0; j < k; j++ {
			if !math.IsNaN(fr.win[j]) {
				continue
			}
			fr.win[j] = fr.kout[m]
			m++
			if memo != nil {
				memo[base+j] = fr.win[j]
			}
		}
	} else if miss > 0 {
		for j := 0; j < k; j++ {
			if !math.IsNaN(fr.win[j]) {
				continue
			}
			t := s.gridPos(base + j)
			x := fr.ray
			for q := range x {
				x[q] = s.x0[q] + t*d[q]
			}
			fr.win[j] = s.f(x)
			if memo != nil {
				memo[base+j] = fr.win[j]
			}
		}
	}
	s.winEpoch, s.winBase = s.scanEpoch, base
}

// solveRay Brent-solves the bracket [a, b] and walks the root back to the
// ray's first crossing. Brent converges to *a* root of the bracket, not
// necessarily the one nearest x0: a wide (dip-refined) bracket can span a
// whole sublevel window, and landing on its far edge overestimates the
// radius. While a probe just below the current root still has the crossed
// sign, an earlier crossing exists — re-solve in the earlier sub-bracket.
func solveRay(line Func1, a, b, tol float64) (float64, bool) {
	t, err := Brent(line, a, b, tol*1e-3)
	if err != nil {
		return 0, false
	}
	ga := line(a)
	for range make([]struct{}, 16) {
		cut := t - 1e-6*(1+math.Abs(t))
		if cut <= a {
			break
		}
		gc := line(cut)
		if gc == 0 {
			t = cut
			continue
		}
		if (gc > 0) == (ga > 0) {
			break
		}
		t2, err2 := Brent(line, a, cut, tol)
		if err2 != nil {
			break
		}
		t = t2
	}
	return t, true
}

// project re-projects x onto the boundary along the ray from x0 through x.
// distCap bounds the scan: a crossing beyond distCap·clampMargin could not
// beat the caller's current best distance, so skipping it changes nothing.
func (s *lsSearch) project(x []float64, distCap float64) ([]float64, bool) {
	d := s.fr.dir
	for i := range d {
		d[i] = x[i] - s.x0[i]
	}
	nrm := norm2(d)
	if nrm == 0 {
		return nil, false
	}
	for i := range d {
		d[i] /= nrm
	}
	limit := s.opt.MaxSpan
	if c := distCap * clampMargin; c < limit {
		limit = c
	}
	t, ok := s.shoot(-1, d, limit)
	if !ok {
		return nil, false
	}
	pt := make([]float64, s.n)
	for i := range pt {
		pt[i] = s.x0[i] + t*d[i]
	}
	return pt, true
}

// tangentialDescent slides a boundary point along the level set toward x0.
// At each step the tangential component of (x − x0) is removed and the point
// is re-projected onto the boundary along the local normal (falling back to
// the ray through x0).
func (s *lsSearch) tangentialDescent(g Func, start []float64) ([]float64, float64) {
	opt, fr, x0 := s.opt, s.fr, s.x0
	x := append([]float64(nil), start...)
	dist := euclid(x, x0)
	eta := 1.0
	for iter := 0; iter < opt.RefineIters; iter++ {
		grad := fr.grad
		s.gradInto(grad, x)
		gn := norm2(grad)
		if gn == 0 {
			break
		}
		// r = x − x0; tangential residual r_t = r − (r·n̂)n̂.
		r := fr.r
		var rDotN float64
		for i := range r {
			r[i] = x[i] - x0[i]
			rDotN += r[i] * grad[i] / gn
		}
		rt := fr.rt
		var rtNorm float64
		for i := range rt {
			rt[i] = r[i] - rDotN*grad[i]/gn
			rtNorm += rt[i] * rt[i]
		}
		rtNorm = math.Sqrt(rtNorm)
		if rtNorm <= 1e-12*(1+dist) {
			break // first-order optimal: (x − x0) ∥ ∇f
		}
		// Trial step along −r_t, then re-project onto the boundary.
		improved := false
		for ; eta > 1e-10; eta *= 0.5 {
			trial := fr.trial
			for i := range trial {
				trial[i] = x[i] - eta*rt[i]
			}
			proj, ok := reprojectNormal(g, trial, grad, gn, opt.MaxSpan, opt.Tol*s.fscale, fr)
			if !ok {
				proj, ok = s.project(trial, dist)
			}
			if !ok {
				continue
			}
			if d := euclid(proj, x0); d < dist-1e-15*(1+dist) {
				x, dist = proj, d
				improved = true
				eta = math.Min(eta*2, 1)
				break
			}
		}
		if !improved {
			break
		}
	}
	return x, dist
}

// reprojectNormal root-finds along ± the normal direction from a near-
// boundary point to land exactly on the level set.
func reprojectNormal(g Func, x, grad []float64, gradNorm, maxSpan, tol float64, fr *searchFrame) ([]float64, bool) {
	d := fr.dir
	for i := range d {
		d[i] = grad[i] / gradNorm
	}
	line := func(t float64) float64 {
		y := fr.proj
		for i := range y {
			y[i] = x[i] + t*d[i]
		}
		return g(y)
	}
	g0 := line(0)
	if math.Abs(g0) <= tol {
		return append([]float64(nil), x...), true
	}
	// Search the side that reduces |g| first; the crossing is nearby, so
	// keep the bracket expansion tight.
	span := 0.1 * (1 + maxAbs(x))
	for _, sign := range []float64{-1, 1} {
		dir := func(t float64) float64 { return line(sign * t) }
		a, b, err := BracketRoot(dir, 0, 1e-6*(1+maxAbs(x)), span)
		if err != nil {
			continue
		}
		t, err := Brent(dir, a, b, tol*1e-3)
		if err != nil {
			continue
		}
		y := make([]float64, len(x))
		for i := range y {
			y[i] = x[i] + sign*t*d[i]
		}
		return y, true
	}
	return nil, false
}

// topK returns up to k candidate points nearest to x0.
func topK(cands [][]float64, x0 []float64, k int) [][]float64 {
	type scored struct {
		pt []float64
		d  float64
	}
	ss := make([]scored, len(cands))
	for i, c := range cands {
		ss[i] = scored{c, euclid(c, x0)}
	}
	// Simple selection of the k smallest — candidate counts are tiny.
	out := make([][]float64, 0, k)
	for len(out) < k && len(ss) > 0 {
		bi := 0
		for i := range ss {
			if ss[i].d < ss[bi].d {
				bi = i
			}
		}
		out = append(out, ss[bi].pt)
		ss = append(ss[:bi], ss[bi+1:]...)
	}
	return out
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func norm2(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}
