package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectKnownRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0 {
		t.Errorf("root = %v, want exact endpoint 0", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err == nil {
		t.Error("no sign change must error")
	}
}

func TestBrentKnownRoots(t *testing.T) {
	cases := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cos", math.Cos, 0, 3, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
	}
	for _, c := range cases {
		root, err := Brent(c.f, c.a, c.b, 1e-14)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(root-c.want) > 1e-9 {
			t.Errorf("%s: root = %v, want %v", c.name, root, c.want)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12); err == nil {
		t.Error("Brent without sign change must error")
	}
}

func TestBracketRoot(t *testing.T) {
	g := func(tt float64) float64 { return tt - 7 }
	a, b, err := BracketRoot(g, 0, 0.5, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if !(g(a) <= 0 && g(b) >= 0) {
		t.Errorf("bracket [%v, %v] does not straddle the root", a, b)
	}
}

func TestBracketRootGivesUp(t *testing.T) {
	g := func(tt float64) float64 { return 1 + tt } // never crosses for t > 0
	if _, _, err := BracketRoot(g, 0, 1, 100); err == nil {
		t.Error("must report no bracket")
	}
}

func TestBracketRootNarrowDip(t *testing.T) {
	// A parabola dipping just below zero on a short interval far from the
	// start: the geometric expansion strides past it, so only the dip
	// refinement can find the crossing. Regression for the distant-ellipsoid
	// ErrNoBoundary flake in the level-set search.
	for _, c := range []struct{ center, halfwidth float64 }{
		{7, 0.4},
		{42, 0.15},
		{300, 0.05},
	} {
		g := func(tt float64) float64 {
			d := (tt - c.center) / c.halfwidth
			return d*d - 1 // negative only on (center−hw, center+hw)
		}
		a, b, err := BracketRoot(g, 0, 1e-3, 1e6)
		if err != nil {
			t.Fatalf("dip at %g (halfwidth %g) not found: %v", c.center, c.halfwidth, err)
		}
		if ga, gb := g(a), g(b); ga != 0 && gb != 0 && (ga > 0) == (gb > 0) {
			t.Fatalf("bracket [%v, %v] does not straddle: g = %v, %v", a, b, ga, gb)
		}
	}
}

func TestBracketRootDipWithoutCrossing(t *testing.T) {
	// A dip that bottoms out above zero must still be reported as no bracket.
	g := func(tt float64) float64 {
		d := tt - 9
		return 0.5 + d*d
	}
	if _, _, err := BracketRoot(g, 0, 1e-3, 1e4); err == nil {
		t.Error("positive dip must not produce a bracket")
	}
}

func TestBracketRootImmediate(t *testing.T) {
	g := func(tt float64) float64 { return tt }
	a, b, err := BracketRoot(g, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 0 {
		t.Errorf("exact zero at start should return (0,0), got (%v,%v)", a, b)
	}
}

func TestPropBrentFindsLinearRoots(t *testing.T) {
	f := func(slope, offset int8) bool {
		m := float64(slope)
		if m == 0 {
			return true
		}
		c := float64(offset)
		root := -c / m
		lin := func(x float64) float64 { return m*x + c }
		got, err := Brent(lin, root-10, root+10, 1e-13)
		if err != nil {
			return false
		}
		return math.Abs(got-root) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGradientPolynomial(t *testing.T) {
	// f(x, y) = x² + 3xy + y³ ⇒ ∇f = (2x+3y, 3x+3y²).
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[0]*x[1] + x[1]*x[1]*x[1] }
	g := Gradient(f, []float64{2, -1})
	want := []float64{2*2 + 3*(-1), 3*2 + 3*1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-6 {
			t.Errorf("grad[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestGradientLargeMagnitude(t *testing.T) {
	// Step scaling must keep relative accuracy at large |x|.
	f := func(x []float64) float64 { return x[0] * x[0] }
	g := Gradient(f, []float64{1e6})
	if math.Abs(g[0]-2e6)/2e6 > 1e-6 {
		t.Errorf("grad = %v, want 2e6", g[0])
	}
}

func TestDirectional(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + x[1] }
	d := []float64{1 / math.Sqrt2, 1 / math.Sqrt2}
	got := Directional(f, []float64{1, 0}, d)
	want := (2*1)*d[0] + 1*d[1]
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("directional = %v, want %v", got, want)
	}
}
