package optimize

import (
	"math"
	"sync"
)

// NMOptions configure the Nelder–Mead simplex search.
type NMOptions struct {
	// InitialStep sets the edge length of the starting simplex. Zero selects
	// a step scaled to the starting point.
	InitialStep float64
	// TolF stops the search when the simplex function-value spread falls
	// below this. Zero selects 1e-12.
	TolF float64
	// TolX stops the search when the simplex diameter falls below this.
	// Zero selects 1e-10.
	TolX float64
	// MaxEvals bounds the number of function evaluations. Zero selects
	// 2000·n.
	MaxEvals int
}

// nmScratch holds every buffer one Nelder–Mead run needs: the simplex
// vertices as rows of a single backing array, their values, the sorted
// order, and the four trial points. The level-set search runs Nelder–Mead
// once or twice per boundary side (descent fallback + penalty polish), and
// before this pool existed those per-call allocations — and a reflection-
// based sort.Slice over the vertices — dominated the numeric tier's
// profile.
type nmScratch struct {
	backing  []float64 // (n+1)×n vertex rows
	simplex  [][]float64
	fx       []float64
	ord      []int // vertex indices, sorted by fx ascending
	centroid []float64
	xr       []float64
	xe       []float64
	xc       []float64
}

var nmPool = sync.Pool{New: func() any { return new(nmScratch) }}

func getNM(n int) *nmScratch {
	s := nmPool.Get().(*nmScratch)
	if cap(s.backing) < (n+1)*n {
		s.backing = make([]float64, (n+1)*n)
	}
	s.backing = s.backing[:(n+1)*n]
	if cap(s.simplex) < n+1 {
		s.simplex = make([][]float64, n+1)
	}
	s.simplex = s.simplex[:n+1]
	for i := range s.simplex {
		s.simplex[i] = s.backing[i*n : (i+1)*n]
	}
	for _, b := range []*[]float64{&s.fx, &s.centroid, &s.xr, &s.xe, &s.xc} {
		if cap(*b) < n+1 {
			*b = make([]float64, n+1)
		}
	}
	s.fx = s.fx[:n+1]
	s.centroid, s.xr, s.xe, s.xc = s.centroid[:n], s.xr[:n], s.xe[:n], s.xc[:n]
	if cap(s.ord) < n+1 {
		s.ord = make([]int, n+1)
	}
	s.ord = s.ord[:n+1]
	return s
}

func putNM(s *nmScratch) { nmPool.Put(s) }

// NelderMead minimizes f starting from x0 using the Nelder–Mead downhill
// simplex method with adaptive parameters (Gao & Han 2012) for robustness in
// higher dimensions. It returns the best point found and its value. The
// method is derivative-free, which matters because impact functions f_ij may
// be piecewise (max over machines, max over paths) and hence non-smooth.
//
// The returned point is freshly allocated; all internal state is pooled.
// Vertex ordering is maintained by a deterministic stable insertion, so two
// runs over the same f and x0 follow bit-identical trajectories.
func NelderMead(f Func, x0 []float64, opt NMOptions) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if opt.TolF <= 0 {
		opt.TolF = 1e-12
	}
	if opt.TolX <= 0 {
		opt.TolX = 1e-10
	}
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 2000 * n
	}
	step := opt.InitialStep
	if step <= 0 {
		scale := 0.0
		for _, x := range x0 {
			if a := math.Abs(x); a > scale {
				scale = a
			}
		}
		step = 0.1
		if scale > 0 {
			step = 0.1 * scale
		}
	}

	// Adaptive coefficients.
	nf := float64(n)
	alpha := 1.0             // reflection
	beta := 1 + 2/nf         // expansion
	gamma := 0.75 - 1/(2*nf) // contraction
	delta := 1 - 1/nf        // shrink

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	s := getNM(n)
	defer putNM(s)
	simplex, fx, ord := s.simplex, s.fx, s.ord
	copy(simplex[0], x0)
	fx[0] = eval(simplex[0])
	for i := 1; i <= n; i++ {
		copy(simplex[i], x0)
		simplex[i][i-1] += step
		fx[i] = eval(simplex[i])
	}
	for i := range ord {
		ord[i] = i
	}
	// Stable insertion sort of the vertex order by value: n is small and
	// after the initial sort each iteration disturbs at most one vertex.
	sortOrd := func() {
		for i := 1; i < len(ord); i++ {
			for j := i; j > 0 && fx[ord[j]] < fx[ord[j-1]]; j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
	}
	sortOrd()
	// reinsert restores sorted order after the worst vertex (ord[n]) was
	// replaced, preserving stability: the new value moves left past strictly
	// greater values only.
	reinsert := func() {
		for j := n; j > 0 && fx[ord[j]] < fx[ord[j-1]]; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}

	centroid, xr, xe, xc := s.centroid, s.xr, s.xe, s.xc
	for evals < opt.MaxEvals {
		best, worst := simplex[ord[0]], simplex[ord[n]]
		fbest, fworst := fx[ord[0]], fx[ord[n]]

		// Convergence: function spread and simplex diameter.
		if math.Abs(fworst-fbest) <= opt.TolF*(1+math.Abs(fbest)) {
			diam := 0.0
			for i := 1; i <= n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(simplex[ord[i]][j] - best[j]); d > diam {
						diam = d
					}
				}
			}
			if diam <= opt.TolX*(1+maxAbs(best)) {
				break
			}
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			var sum float64
			for i := 0; i < n; i++ {
				sum += simplex[ord[i]][j]
			}
			centroid[j] = sum / nf
		}

		// Reflect.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst[j])
		}
		fr := eval(xr)
		switch {
		case fr < fbest:
			// Expand.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + beta*(xr[j]-centroid[j])
			}
			fe := eval(xe)
			if fe < fr {
				copy(worst, xe)
				fx[ord[n]] = fe
			} else {
				copy(worst, xr)
				fx[ord[n]] = fr
			}
			reinsert()
		case fr < fx[ord[n-1]]:
			copy(worst, xr)
			fx[ord[n]] = fr
			reinsert()
		default:
			// Contract (outside if the reflected point improved on the
			// worst, inside otherwise).
			if fr < fworst {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + gamma*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] - gamma*(centroid[j]-worst[j])
				}
			}
			fc := eval(xc)
			if fc < math.Min(fr, fworst) {
				copy(worst, xc)
				fx[ord[n]] = fc
				reinsert()
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					v := simplex[ord[i]]
					for j := 0; j < n; j++ {
						v[j] = best[j] + delta*(v[j]-best[j])
					}
					fx[ord[i]] = eval(v)
				}
				sortOrd()
			}
		}
	}

	out := append([]float64(nil), simplex[ord[0]]...)
	return out, fx[ord[0]]
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
