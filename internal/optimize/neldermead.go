package optimize

import (
	"math"
	"sort"
)

// NMOptions configure the Nelder–Mead simplex search.
type NMOptions struct {
	// InitialStep sets the edge length of the starting simplex. Zero selects
	// a step scaled to the starting point.
	InitialStep float64
	// TolF stops the search when the simplex function-value spread falls
	// below this. Zero selects 1e-12.
	TolF float64
	// TolX stops the search when the simplex diameter falls below this.
	// Zero selects 1e-10.
	TolX float64
	// MaxEvals bounds the number of function evaluations. Zero selects
	// 2000·n.
	MaxEvals int
}

// NelderMead minimizes f starting from x0 using the Nelder–Mead downhill
// simplex method with adaptive parameters (Gao & Han 2012) for robustness in
// higher dimensions. It returns the best point found and its value. The
// method is derivative-free, which matters because impact functions f_ij may
// be piecewise (max over machines, max over paths) and hence non-smooth.
func NelderMead(f Func, x0 []float64, opt NMOptions) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, f(nil)
	}
	if opt.TolF <= 0 {
		opt.TolF = 1e-12
	}
	if opt.TolX <= 0 {
		opt.TolX = 1e-10
	}
	if opt.MaxEvals <= 0 {
		opt.MaxEvals = 2000 * n
	}
	step := opt.InitialStep
	if step <= 0 {
		scale := 0.0
		for _, x := range x0 {
			if a := math.Abs(x); a > scale {
				scale = a
			}
		}
		step = 0.1
		if scale > 0 {
			step = 0.1 * scale
		}
	}

	// Adaptive coefficients.
	nf := float64(n)
	alpha := 1.0             // reflection
	beta := 1 + 2/nf         // expansion
	gamma := 0.75 - 1/(2*nf) // contraction
	delta := 1 - 1/nf        // shrink

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = eval(simplex[0].x)
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		x[i-1] += step
		simplex[i] = vertex{x: x, f: eval(x)}
	}

	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	for evals < opt.MaxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		best, worst := simplex[0], simplex[n]

		// Convergence: function spread and simplex diameter.
		if math.Abs(worst.f-best.f) <= opt.TolF*(1+math.Abs(best.f)) {
			diam := 0.0
			for i := 1; i <= n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(simplex[i].x[j] - best.x[j]); d > diam {
						diam = d
					}
				}
			}
			if diam <= opt.TolX*(1+maxAbs(best.x)) {
				break
			}
		}

		// Centroid of all but the worst vertex.
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				s += simplex[i].x[j]
			}
			centroid[j] = s / nf
		}

		// Reflect.
		for j := 0; j < n; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(xr)
		switch {
		case fr < best.f:
			// Expand.
			for j := 0; j < n; j++ {
				xe[j] = centroid[j] + beta*(xr[j]-centroid[j])
			}
			fe := eval(xe)
			if fe < fr {
				copy(simplex[n].x, xe)
				simplex[n].f = fe
			} else {
				copy(simplex[n].x, xr)
				simplex[n].f = fr
			}
		case fr < simplex[n-1].f:
			copy(simplex[n].x, xr)
			simplex[n].f = fr
		default:
			// Contract (outside if the reflected point improved on the
			// worst, inside otherwise).
			if fr < worst.f {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] + gamma*(xr[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					xc[j] = centroid[j] - gamma*(centroid[j]-worst.x[j])
				}
			}
			fc := eval(xc)
			if fc < math.Min(fr, worst.f) {
				copy(simplex[n].x, xc)
				simplex[n].f = fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = best.x[j] + delta*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}

	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x, simplex[0].f
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
