package optimize

import "sync"

// searchFrame holds the scratch vectors one nearest-on-level-set search
// reuses across its thousands of objective evaluations. Before this frame
// existed, every 1-D line evaluation inside ray shooting, re-projection,
// and tangential descent allocated a fresh point vector — roughly one
// allocation per impact evaluation, which dominated the runtime of cheap
// impact functions. A search is single-goroutine, so one frame serves all
// of its phases; frames are pooled across searches.
type searchFrame struct {
	ray   []float64 // line-evaluation point (shootRay)
	proj  []float64 // line-evaluation point (reprojectNormal)
	dir   []float64 // direction scratch (projectThroughOrigin, reprojectNormal)
	r     []float64 // radial residual (tangentialDescent)
	rt    []float64 // tangential residual (tangentialDescent)
	trial []float64 // trial step (tangentialDescent)
	grad  []float64 // gradient (tangentialDescent)
	gtmp  []float64 // gradient probe scratch (GradientInto)
}

var framePool = sync.Pool{New: func() any { return new(searchFrame) }}

// getFrame returns a frame whose buffers all have length n.
func getFrame(n int) *searchFrame {
	fr := framePool.Get().(*searchFrame)
	for _, b := range []*[]float64{&fr.ray, &fr.proj, &fr.dir, &fr.r, &fr.rt, &fr.trial, &fr.grad, &fr.gtmp} {
		if cap(*b) < n {
			*b = make([]float64, n)
		} else {
			*b = (*b)[:n]
		}
	}
	return fr
}

// putFrame recycles a frame; the caller must not touch it afterwards.
func putFrame(fr *searchFrame) { framePool.Put(fr) }
