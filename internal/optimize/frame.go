package optimize

import "sync"

// searchFrame holds the scratch vectors one nearest-on-level-set search
// reuses across its thousands of objective evaluations. Before this frame
// existed, every 1-D line evaluation inside ray shooting, re-projection,
// and tangential descent allocated a fresh point vector — roughly one
// allocation per impact evaluation, which dominated the runtime of cheap
// impact functions. A search is single-goroutine, so one frame serves all
// of its phases; frames are pooled across searches.
type searchFrame struct {
	ray   []float64 // line-evaluation point (shoot)
	proj  []float64 // line-evaluation point (reprojectNormal)
	dir   []float64 // direction scratch (project, reprojectNormal)
	r     []float64 // radial residual (tangentialDescent)
	rt    []float64 // tangential residual (tangentialDescent)
	trial []float64 // trial step (tangentialDescent)
	grad  []float64 // gradient (dirSet, tangentialDescent)
	gtmp  []float64 // gradient probe scratch (GradientInto)

	grid []float64 // canonical scan-grid positions (cold searches)
	win  []float64 // probe-window values (gridVal/fillWindow)

	dirBack []float64   // probe-direction backing rows (cold searches)
	dirRows [][]float64 // probe-direction headers over dirBack

	kback []float64   // k-probe point backing rows
	kxs   [][]float64 // k-probe point headers over kback
	kout  []float64   // k-probe output values
}

var framePool = sync.Pool{New: func() any { return new(searchFrame) }}

// getFrame returns a frame whose core buffers all have length n. The
// k-probe, direction, and grid buffers are sized lazily by their users.
func getFrame(n int) *searchFrame {
	fr := framePool.Get().(*searchFrame)
	for _, b := range []*[]float64{&fr.ray, &fr.proj, &fr.dir, &fr.r, &fr.rt, &fr.trial, &fr.grad, &fr.gtmp} {
		if cap(*b) < n {
			*b = make([]float64, n)
		} else {
			*b = (*b)[:n]
		}
	}
	fr.grid = fr.grid[:0]
	fr.win = fr.win[:0]
	return fr
}

// ensureK sizes the k-probe scratch for at least rows points of dimension n,
// re-slicing the row headers over a single backing array.
func (fr *searchFrame) ensureK(rows, n int) {
	if cap(fr.kback) < rows*n {
		fr.kback = make([]float64, rows*n)
	}
	fr.kback = fr.kback[:rows*n]
	if cap(fr.kxs) < rows {
		fr.kxs = make([][]float64, rows)
	}
	fr.kxs = fr.kxs[:rows]
	for i := range fr.kxs {
		fr.kxs[i] = fr.kback[i*n : (i+1)*n]
	}
	if cap(fr.kout) < rows {
		fr.kout = make([]float64, rows)
	}
	fr.kout = fr.kout[:rows]
}

// putFrame recycles a frame; the caller must not touch it afterwards.
func putFrame(fr *searchFrame) { framePool.Put(fr) }
