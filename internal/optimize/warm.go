package optimize

import "math"

// Ray-record kinds stored per (level, direction) in a WarmState. The zero
// value (recNone with limit 0) is inert: replay never trusts it, so a
// partially filled record slice is always safe to consult.
const (
	recNone uint8 = iota // ray exhausted its scan limit without a crossing
	recGrid              // crossing between consecutive grid probes
	recDip               // crossing inside a golden-section-refined dip
)

// rayRec is the converged bracket of one probe ray at one boundary level:
// enough to skip the ray's scan and root solve on the next search of the
// same level, and enough to *validate* that skip against the live objective
// first.
type rayRec struct {
	kind   uint8
	idx    int32   // crossing probe's grid index (recGrid)
	limit  float64 // scan limit the ray was exhausted at (recNone)
	lo, hi float64 // dip bracket endpoints (recDip)
	t      float64 // converged root after the first-crossing walk-back
}

// levelRec holds the per-ray records of one boundary level.
type levelRec struct {
	rays []rayRec
}

// WarmStats count what a WarmState saved (and when it had to be thrown
// away). MemoHits are scan probes answered from the memoized line table
// instead of a live objective evaluation; RayReuses are whole rays whose
// converged bracket was revalidated and reused; Invalidations count resets
// after a reused bracket failed validation.
type WarmStats struct {
	Searches      int
	MemoHits      int
	RayReuses     int
	Invalidations int
}

// WarmState carries reusable state between NearestOnLevelSet calls that
// share the same objective f and origin point x0 — typically the two
// boundary sides ⟨β^min, β^max⟩ of one feature, or repeated searches of the
// same boundary as a service re-checks an operating point. It memoizes what
// is level-independent (the probe direction set, including the two gradient
// directions and their 2n estimation evaluations; the raw objective values
// along every scan ray, keyed by the fixed probe grid) and records per
// (level, direction) the converged bracket and root, which a later search
// of the same level revalidates against the live objective and reuses.
//
// Correctness contract: a WarmState is only meaningful while f is frozen —
// the same determinism assumption the impact cache documents. Reuse is
// validated (a reused bracket must still change sign on the live
// objective, and memoized values are cross-checked where they overlap);
// any mismatch discards the entire state and the search re-runs cold, so a
// violated contract costs time, not correctness. Because memoized values
// are the raw f values the cold search would have computed at bit-identical
// probe positions, a warm search returns bit-identical results to a cold
// one.
//
// A WarmState is owned by exactly one search at a time. It is not
// internally synchronized: callers hand it to LevelSetOptions.Warm for the
// duration of one NearestOnLevelSet call and must not share it
// concurrently. internal/core checks states in and out of per-feature
// atomic slots so that concurrent searches race for the state and losers
// simply run cold.
type WarmState struct {
	ident    []float64 // caller identity (e.g. origin ⧺ scales), bit-compared
	x0       []float64
	step     float64
	seed     int64
	dirCount int
	tol      float64
	bound    bool
	dirs     [][]float64
	grid     []float64   // canonical scan-grid positions generated so far
	memo     [][]float64 // raw f per (direction, grid index); NaN = unknown
	levels   map[uint64]*levelRec

	stats WarmStats
}

// maxWarmLevels bounds the per-level record map; searches over more levels
// than this (a β sweep, say) drop the accumulated records and start over
// rather than growing without bound. The line memo is unaffected — it is
// level-independent and bounded by the scan grid.
const maxWarmLevels = 32

// NewWarmState returns an empty warm state bound to the given identity
// vector. The identity is an opaque fingerprint of everything the objective
// closes over (for the robustness engine: the origin point concatenated
// with the weighting scales); Valid bit-compares it so a state is never
// reused across objectives.
func NewWarmState(ident []float64) *WarmState {
	w := &WarmState{}
	w.ident = append([]float64(nil), ident...)
	return w
}

// Valid reports whether the state was built for this identity vector
// (bit-exact comparison, so NaN payloads and signed zeros are respected).
func (w *WarmState) Valid(ident []float64) bool {
	if w == nil || len(w.ident) != len(ident) {
		return false
	}
	return bitsEqual(w.ident, ident)
}

// Stats returns the state's reuse counters.
func (w *WarmState) Stats() WarmStats { return w.stats }

// reset drops everything the state has learned, keeping only its identity.
func (w *WarmState) reset() {
	w.x0, w.step, w.bound = nil, 0, false
	w.dirs, w.grid, w.memo = nil, nil, nil
	w.levels = nil
	w.stats.Invalidations++
}

// prepare binds the state to a search configuration — origin point, scan
// step, direction seed and count, and boundary tolerance (everything the
// recorded brackets and memoized scans depend on) — resetting it first if
// any of them differ bit-wise from the state's previous binding.
func (w *WarmState) prepare(x0 []float64, step float64, seed int64, dirCount int, tol float64) {
	w.stats.Searches++
	if w.bound &&
		(len(w.x0) != len(x0) || !bitsEqual(w.x0, x0) ||
			math.Float64bits(w.step) != math.Float64bits(step) ||
			w.seed != seed || w.dirCount != dirCount ||
			math.Float64bits(w.tol) != math.Float64bits(tol)) {
		w.reset()
	}
	if !w.bound {
		w.x0 = append(w.x0[:0], x0...)
		w.step, w.seed, w.dirCount, w.tol = step, seed, dirCount, tol
		w.bound = true
	}
}

// level returns (creating if needed) the per-ray record slice for a
// boundary level, sized for nDirs rays.
func (w *WarmState) level(lv float64, nDirs int) *levelRec {
	if w.levels == nil {
		w.levels = make(map[uint64]*levelRec)
	}
	key := math.Float64bits(lv)
	lr := w.levels[key]
	if lr == nil {
		if len(w.levels) >= maxWarmLevels {
			w.levels = make(map[uint64]*levelRec)
		}
		lr = &levelRec{}
		w.levels[key] = lr
	}
	if len(lr.rays) < nDirs {
		rays := make([]rayRec, nDirs)
		copy(rays, lr.rays)
		lr.rays = rays
	}
	return lr
}

// memoFor returns the raw-f line table of direction di, grown (with NaN
// sentinels) to cover at least minLen grid positions.
func (w *WarmState) memoFor(di, minLen int) []float64 {
	for len(w.memo) <= di {
		w.memo = append(w.memo, nil)
	}
	m := w.memo[di]
	for len(m) < minLen {
		m = append(m, math.NaN())
	}
	w.memo[di] = m
	return m
}

func bitsEqual(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
