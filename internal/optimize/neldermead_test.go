package optimize

import (
	"math"
	"testing"
)

func TestNelderMeadSphere(t *testing.T) {
	f := func(x []float64) float64 {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		return s
	}
	x, fv := NelderMead(f, []float64{3, -2, 1, 4, -5}, NMOptions{})
	if fv > 1e-10 {
		t.Errorf("sphere min value = %v at %v", fv, x)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fv := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxEvals: 20000})
	if math.Abs(x[0]-1) > 1e-4 || math.Abs(x[1]-1) > 1e-4 {
		t.Errorf("Rosenbrock min at %v (f=%v), want (1,1)", x, fv)
	}
}

func TestNelderMeadShiftedQuadratic(t *testing.T) {
	target := []float64{2, -3, 5}
	f := func(x []float64) float64 {
		var s float64
		for i, xi := range x {
			d := xi - target[i]
			s += d * d
		}
		return s
	}
	x, _ := NelderMead(f, []float64{0, 0, 0}, NMOptions{})
	for i := range target {
		if math.Abs(x[i]-target[i]) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], target[i])
		}
	}
}

func TestNelderMeadNonSmooth(t *testing.T) {
	// f = max(|x−1|, |y+2|) is non-smooth; derivative-free search must
	// still find the minimizer (1, −2).
	f := func(x []float64) float64 {
		return math.Max(math.Abs(x[0]-1), math.Abs(x[1]+2))
	}
	x, fv := NelderMead(f, []float64{10, 10}, NMOptions{MaxEvals: 20000})
	if fv > 1e-5 {
		t.Errorf("non-smooth min value = %v at %v", fv, x)
	}
}

func TestNelderMeadRespectsMaxEvals(t *testing.T) {
	evals := 0
	f := func(x []float64) float64 {
		evals++
		return x[0] * x[0]
	}
	NelderMead(f, []float64{100}, NMOptions{MaxEvals: 50})
	// The shrink step can add up to n evaluations beyond the check.
	if evals > 60 {
		t.Errorf("used %d evaluations with MaxEvals=50", evals)
	}
}

func TestNelderMeadEmptyInput(t *testing.T) {
	called := false
	f := func(x []float64) float64 { called = true; return 0 }
	_, fv := NelderMead(f, nil, NMOptions{})
	if !called || fv != 0 {
		t.Error("empty input should evaluate f once and return it")
	}
}

func TestNelderMeadInitialStepHonored(t *testing.T) {
	// A minimum far from the start needs expansion; ensure a custom initial
	// step still converges.
	f := func(x []float64) float64 { d := x[0] - 1000; return d * d }
	x, _ := NelderMead(f, []float64{0}, NMOptions{InitialStep: 1, MaxEvals: 10000})
	if math.Abs(x[0]-1000) > 1e-3 {
		t.Errorf("x = %v, want 1000", x[0])
	}
}
