package optimize

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a sign-changing interval cannot be found.
var ErrNoBracket = errors.New("optimize: could not bracket a root")

// ErrMaxIter is returned when an iterative method exhausts its budget
// without meeting its tolerance.
var ErrMaxIter = errors.New("optimize: iteration limit reached")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs (an endpoint that is exactly zero is returned immediately).
// The result is within tol of a true root.
func Bisect(f Func1, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g and f(%g)=%g have the same sign", ErrNoBracket, a, fa, b, fb)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		if b-a < tol || m == a || m == b {
			return m, nil
		}
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). It converges superlinearly for
// smooth f and never worse than bisection. f(a) and f(b) must bracket a root.
func Brent(f Func1, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: Brent needs a sign change on [%g, %g]", ErrNoBracket, a, b)
	}
	if tol <= 0 {
		tol = 1e-13
	}
	// Ensure |f(b)| <= |f(a)|: b is the best iterate.
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, nil
}

// bracketSubdiv is the number of probes per geometric expansion interval of
// the bracketing scan. Exported indirectly through the probe grid contract:
// see BracketRoot.
const bracketSubdiv = 4

// BracketRoot searches for a sign change of g on t ≥ t0, expanding the probed
// span geometrically from the given initial step. Each expansion interval is
// subdivided, and any local-minimum triple in the scanned |g| values is
// refined by golden-section search, so narrow crossings (a level set entered
// and left again between two probes, e.g. a ray crossing a small or distant
// ellipsoid with a short chord) are not stepped over. It returns (a, b) with
// g(a)·g(b) ≤ 0.
//
// Probe positions form a fixed geometric grid determined by t0 and step
// alone — maxSpan decides only where the scan STOPS, never where it probes.
// Two scans with different maxSpan therefore evaluate g at bit-identical
// positions over their common range, which is what lets the level-set search
// clamp late rays at the current third-best candidate distance (and lets a
// warm-started search replay a memoized scan) without perturbing any result.
// The scan continues until the position two probes back has passed maxSpan,
// so a dip window straddling the stop is still refined.
//
// The error, when non-nil, is ErrNoBracket. It is returned unwrapped: the
// level-set search discards it once per non-crossing ray, and wrapping it
// with position detail showed up as an allocation hot spot.
func BracketRoot(g Func1, t0, step, maxSpan float64) (a, b float64, err error) {
	if step <= 0 {
		step = 1e-3
	}
	ga := g(t0)
	if ga == 0 {
		return t0, t0, nil
	}
	prev, gprev := t0, ga
	prev2, gprev2 := math.NaN(), math.Inf(1)
	for span := step; ; span *= 1.8 {
		next := t0 + span
		for i := 1; i <= bracketSubdiv; i++ {
			x := prev + (next-prev)*float64(i)/bracketSubdiv
			gx := g(x)
			if gx == 0 || (gprev > 0) != (gx > 0) {
				return prev, x, nil
			}
			// g dipped between prev2 and x without changing sign at the
			// probes: a crossing may hide inside the dip.
			if !math.IsNaN(prev2) && math.Abs(gprev) < math.Abs(gprev2) && math.Abs(gprev) < math.Abs(gx) {
				if lo, hi, ok := refineDip(g, prev2, prev, x, gprev); ok {
					return lo, hi, nil
				}
			}
			if !math.IsNaN(prev2) && prev2-t0 >= maxSpan {
				return 0, 0, ErrNoBracket
			}
			prev2, gprev2 = prev, gprev
			prev, gprev = x, gx
		}
	}
}

// refineDip golden-sections the local minimum of |g| inside [a, c] (with
// interior probe b, g(b) = gb, all three values of equal sign) hunting for a
// sign change the expanding scan stepped over. It returns a bracket with
// opposite-sign endpoints, or ok=false when the dip never reaches zero.
func refineDip(g Func1, a, b, c, gb float64) (lo, hi float64, ok bool) {
	const ratio = 0.381966 // 2 − φ
	pos := gb > 0
	for k := 0; k < 80 && c-a > 1e-13*(1+math.Abs(b)); k++ {
		var m float64
		if c-b > b-a {
			m = b + ratio*(c-b)
		} else {
			m = b - ratio*(b-a)
		}
		gm := g(m)
		if gm == 0 {
			return m, m, true
		}
		if (gm > 0) != pos {
			// Pair m with the same-sign endpoint on the t0 side, so the
			// bracket holds the dip window's NEAR crossing. Pairing with the
			// far side hands the caller the window's far edge — for a
			// nearest-boundary search that silently overestimates the radius
			// (surfaced by the oracle's composition-bound check, seed 382).
			if m < b {
				return a, m, true
			}
			return b, m, true
		}
		if math.Abs(gm) < math.Abs(gb) {
			if m > b {
				a, b, gb = b, m, gm
			} else {
				c, b, gb = b, m, gm
			}
		} else {
			if m > b {
				c = m
			} else {
				a = m
			}
		}
	}
	return 0, 0, false
}
