// Package optimize supplies the numerical routines the robustness analysis
// needs: root finding along rays, derivative estimation, derivative-free
// minimization (Nelder–Mead), and — the centerpiece — nearest-point-on-a-
// level-set search, which is exactly the robustness radius of Eq. 1/Eq. 2
// for impact functions with no closed form.
//
// The level-set search scans each probe ray over a fixed geometric grid, so
// its evaluations can be batched k probes at a time through a FuncK
// objective (vectorized impact kernels), memoized and replayed across
// searches that share an origin (WarmState), and clamped at the current
// third-best candidate distance — all without moving a single probe, which
// is what keeps scalar, k-probe, and warm-started searches bit-identical.
//
// Everything here is standard library only and deterministic.
package optimize

import "math"

// Func is a scalar field f: R^n → R.
type Func func(x []float64) float64

// Func1 is a scalar function of one variable.
type Func1 func(x float64) float64

// FuncK evaluates a scalar field at a block of points in one call, setting
// out[p] = f(xs[p]) for every p < len(xs). It must agree pointwise with the
// scalar objective it accompanies and must not retain xs or out. The
// level-set search uses it to amortize per-call overhead (vectorized
// kernels, batched cache probes); it never changes which points are
// evaluated, only how they are grouped.
type FuncK func(xs [][]float64, out []float64)

// Gradient estimates ∇f(x) by central differences with per-coordinate steps
// scaled to the magnitude of x_i. The returned slice is freshly allocated.
func Gradient(f Func, x []float64) []float64 {
	g := make([]float64, len(x))
	xx := make([]float64, len(x))
	GradientInto(g, xx, f, x)
	return g
}

// GradientInto estimates ∇f(x) into g, using probe as the perturbed-point
// scratch vector. g, probe, and x must share a length; probe must not alias
// x. This is the allocation-free form the level-set search uses once per
// tangential-descent iteration.
func GradientInto(g, probe []float64, f Func, x []float64) {
	xx := probe
	copy(xx, x)
	for i := range x {
		h := stepFor(x[i])
		orig := xx[i]
		xx[i] = orig + h
		fp := f(xx)
		xx[i] = orig - h
		fm := f(xx)
		xx[i] = orig
		g[i] = (fp - fm) / (2 * h)
	}
}

// gradientIntoK estimates ∇f(x) into g like GradientInto, but evaluates all
// 2n central-difference probes through one FuncK call. xs must hold at
// least 2·len(x) rows of length len(x) and out at least 2·len(x) values
// (see searchFrame.ensureK). Probe points and the difference formula are
// identical to the scalar path, so the two estimates are bit-equal.
func gradientIntoK(g []float64, fk FuncK, x []float64, xs [][]float64, out []float64) {
	n := len(x)
	for i := 0; i < n; i++ {
		h := stepFor(x[i])
		p, m := xs[2*i], xs[2*i+1]
		copy(p, x)
		copy(m, x)
		p[i] = x[i] + h
		m[i] = x[i] - h
	}
	fk(xs[:2*n], out[:2*n])
	for i := 0; i < n; i++ {
		h := stepFor(x[i])
		g[i] = (out[2*i] - out[2*i+1]) / (2 * h)
	}
}

// Directional estimates the derivative of f at x along the unit direction d
// by central differences.
func Directional(f Func, x, d []float64) float64 {
	h := 1e-6
	scale := 0.0
	for _, xi := range x {
		if a := math.Abs(xi); a > scale {
			scale = a
		}
	}
	if scale > 1 {
		h *= scale
	}
	xp := make([]float64, len(x))
	xm := make([]float64, len(x))
	for i := range x {
		xp[i] = x[i] + h*d[i]
		xm[i] = x[i] - h*d[i]
	}
	return (f(xp) - f(xm)) / (2 * h)
}

// stepFor picks a central-difference step proportional to |x| with a floor,
// balancing truncation against round-off (cube root of machine epsilon).
func stepFor(x float64) float64 {
	const base = 6.055454452393343e-06 // cbrt(2^-52)
	a := math.Abs(x)
	if a < 1 {
		a = 1
	}
	return base * a
}
