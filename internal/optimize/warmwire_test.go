package optimize

import (
	"bytes"
	"math"
	"testing"
)

// TestWarmStateSnapshotRoundTrip pins the serialization contract: a
// restored state must behave exactly like the original — a repeat search
// through it returns bit-identical results, spends the same number of
// evaluations as a repeat through the live state, and reuses recorded
// brackets and memoized probes (proving the restored state is warm, not a
// fresh shell that happens to validate).
func TestWarmStateSnapshotRoundTrip(t *testing.T) {
	f := ellipsoid([]float64{1, 2.5, 0.7}, []float64{0.3, -0.2, 1.1})
	x0 := []float64{1.2, 0.8, -0.4}
	level := 9.0

	st := NewWarmState(x0)
	first, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{Warm: st})
	if err != nil {
		t.Fatalf("first search: %v", err)
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Live repeat: the reference for what a warm repeat costs.
	live, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{Warm: st})
	if err != nil {
		t.Fatalf("live repeat: %v", err)
	}

	restored, err := RestoreWarmState(snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !restored.Valid(x0) {
		t.Fatal("restored state does not validate against its own identity")
	}
	if got := restored.Stats(); got != (WarmStats{}) {
		t.Fatalf("restored state carries counters: %+v", got)
	}
	reply, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{Warm: restored})
	if err != nil {
		t.Fatalf("restored repeat: %v", err)
	}

	if math.Float64bits(reply.Dist) != math.Float64bits(first.Dist) || !bitsSame(reply.Point, first.Point) {
		t.Fatalf("restored repeat diverged: dist %v vs %v", reply.Dist, first.Dist)
	}
	if reply.Evals != live.Evals {
		t.Fatalf("restored repeat cost %d evals, live repeat %d — snapshot lost state", reply.Evals, live.Evals)
	}
	stats := restored.Stats()
	if stats.RayReuses == 0 || stats.MemoHits == 0 {
		t.Fatalf("restored repeat ran cold: %+v", stats)
	}
	if stats.Invalidations != 0 {
		t.Fatalf("restored state invalidated: %+v", stats)
	}

	// A second snapshot of the restored state (before its repeat mutated
	// nothing but counters) must be byte-identical: deterministic encoding.
	snap2, err := restored.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

// NaN memo sentinels and non-finite record fields must survive the round
// trip bit-for-bit — they are load-bearing (NaN marks unknown probes).
func TestWarmStateSnapshotPreservesNaN(t *testing.T) {
	st := NewWarmState([]float64{math.NaN(), math.Copysign(0, -1)})
	st.prepare([]float64{1, 2}, 0.5, 42, 6, 1e-9)
	m := st.memoFor(0, 4)
	m[1] = 3.25 // leaves m[0], m[2], m[3] as NaN sentinels
	lr := st.level(7.5, 2)
	lr.rays[0] = rayRec{kind: recNone, limit: math.Inf(1)}
	lr.rays[1] = rayRec{kind: recDip, lo: 0.25, hi: 0.75, t: 0.5}

	snap, err := st.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	got, err := RestoreWarmState(snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bitsSame(got.ident, st.ident) {
		t.Fatalf("identity changed: %v vs %v", got.ident, st.ident)
	}
	gm := got.memoFor(0, 4)
	for i := range m {
		if math.Float64bits(gm[i]) != math.Float64bits(m[i]) {
			t.Fatalf("memo[%d]: %v vs %v", i, gm[i], m[i])
		}
	}
	glr := got.level(7.5, 2)
	if glr.rays[0] != lr.rays[0] || glr.rays[1] != lr.rays[1] {
		t.Fatalf("ray records changed: %+v vs %+v", glr.rays, lr.rays)
	}
}

// Corrupt and structurally invalid snapshots must be refused, not half
// restored.
func TestRestoreWarmStateRejectsBad(t *testing.T) {
	if _, err := RestoreWarmState([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := RestoreWarmState([]byte(`{"ident":[1],"levels":[{"level":1,"rays":[{"kind":9}]}]}`)); err == nil {
		t.Fatal("unknown ray kind accepted")
	}
}
