package optimize

import (
	"encoding/json"
	"fmt"
	"math"
)

// Warm-state serialization. A WarmState is pure numeric data — the probe
// directions, the memoized raw objective values along every scan ray, and
// the converged bracket of each (level, ray) pair — so it can be written to
// disk and re-attached to a rebuilt objective. Every float64 is encoded as
// its IEEE-754 bit pattern (a uint64), never as a decimal string: the warm
// contract is *bit* identity (NaN memo sentinels, signed zeros, and the
// bit-compared identity vector all survive the round trip exactly).
//
// The reuse counters (WarmStats) are deliberately not persisted — they are
// per-process observability, and restoring them would make a restarted
// daemon's /statz lie about work it never did.

// wireState is the on-disk shape of one WarmState.
type wireState struct {
	Ident    []uint64    `json:"ident"`
	Bound    bool        `json:"bound,omitempty"`
	X0       []uint64    `json:"x0,omitempty"`
	Step     uint64      `json:"step,omitempty"`
	Seed     int64       `json:"seed,omitempty"`
	DirCount int         `json:"dirCount,omitempty"`
	Tol      uint64      `json:"tol,omitempty"`
	Dirs     [][]uint64  `json:"dirs,omitempty"`
	Grid     []uint64    `json:"grid,omitempty"`
	Memo     [][]uint64  `json:"memo,omitempty"`
	Levels   []wireLevel `json:"levels,omitempty"`
}

// wireLevel is one boundary level's ray records, keyed by the level's bit
// pattern. Levels are sorted by key on encode so snapshots are
// deterministic.
type wireLevel struct {
	Level uint64    `json:"level"`
	Rays  []wireRay `json:"rays"`
}

// wireRay mirrors rayRec.
type wireRay struct {
	Kind  uint8  `json:"kind,omitempty"`
	Idx   int32  `json:"idx,omitempty"`
	Limit uint64 `json:"limit,omitempty"`
	Lo    uint64 `json:"lo,omitempty"`
	Hi    uint64 `json:"hi,omitempty"`
	T     uint64 `json:"t,omitempty"`
}

func floatsToBits(fs []float64) []uint64 {
	if fs == nil {
		return nil
	}
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = math.Float64bits(f)
	}
	return out
}

func bitsToFloats(bs []uint64) []float64 {
	if bs == nil {
		return nil
	}
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// Snapshot serializes the state for later RestoreWarmState. The caller must
// own the state (the usual single-owner rule); the snapshot is a deep copy,
// so the state stays usable afterwards.
func (w *WarmState) Snapshot() ([]byte, error) {
	ws := wireState{
		Ident:    floatsToBits(w.ident),
		Bound:    w.bound,
		X0:       floatsToBits(w.x0),
		Step:     math.Float64bits(w.step),
		Seed:     w.seed,
		DirCount: w.dirCount,
		Tol:      math.Float64bits(w.tol),
		Grid:     floatsToBits(w.grid),
	}
	if w.dirs != nil {
		ws.Dirs = make([][]uint64, len(w.dirs))
		for i, d := range w.dirs {
			ws.Dirs[i] = floatsToBits(d)
		}
	}
	if w.memo != nil {
		ws.Memo = make([][]uint64, len(w.memo))
		for i, m := range w.memo {
			ws.Memo[i] = floatsToBits(m)
		}
	}
	if len(w.levels) > 0 {
		ws.Levels = make([]wireLevel, 0, len(w.levels))
		for key, lr := range w.levels {
			wl := wireLevel{Level: key, Rays: make([]wireRay, len(lr.rays))}
			for i, r := range lr.rays {
				wl.Rays[i] = wireRay{
					Kind:  r.kind,
					Idx:   r.idx,
					Limit: math.Float64bits(r.limit),
					Lo:    math.Float64bits(r.lo),
					Hi:    math.Float64bits(r.hi),
					T:     math.Float64bits(r.t),
				}
			}
			ws.Levels = append(ws.Levels, wl)
		}
		// Deterministic order: map iteration must not leak into the bytes.
		for i := 1; i < len(ws.Levels); i++ {
			for j := i; j > 0 && ws.Levels[j-1].Level > ws.Levels[j].Level; j-- {
				ws.Levels[j-1], ws.Levels[j] = ws.Levels[j], ws.Levels[j-1]
			}
		}
	}
	return json.Marshal(ws)
}

// RestoreWarmState rebuilds a WarmState from a Snapshot. The restored state
// is subject to the same validation as a live one — identity bit-compare on
// checkout, bracket revalidation against the live objective on reuse — so a
// stale or mismatched snapshot costs a cold re-run, never correctness.
func RestoreWarmState(data []byte) (*WarmState, error) {
	var ws wireState
	if err := json.Unmarshal(data, &ws); err != nil {
		return nil, fmt.Errorf("optimize: restoring warm state: %w", err)
	}
	w := &WarmState{
		ident:    bitsToFloats(ws.Ident),
		bound:    ws.Bound,
		x0:       bitsToFloats(ws.X0),
		step:     math.Float64frombits(ws.Step),
		seed:     ws.Seed,
		dirCount: ws.DirCount,
		tol:      math.Float64frombits(ws.Tol),
		grid:     bitsToFloats(ws.Grid),
	}
	if ws.Dirs != nil {
		w.dirs = make([][]float64, len(ws.Dirs))
		for i, d := range ws.Dirs {
			w.dirs[i] = bitsToFloats(d)
		}
	}
	if ws.Memo != nil {
		w.memo = make([][]float64, len(ws.Memo))
		for i, m := range ws.Memo {
			w.memo[i] = bitsToFloats(m)
		}
	}
	if len(ws.Levels) > 0 {
		w.levels = make(map[uint64]*levelRec, len(ws.Levels))
		for _, wl := range ws.Levels {
			lr := &levelRec{rays: make([]rayRec, len(wl.Rays))}
			for i, r := range wl.Rays {
				if r.Kind > recDip {
					return nil, fmt.Errorf("optimize: restoring warm state: unknown ray kind %d", r.Kind)
				}
				lr.rays[i] = rayRec{
					kind:  r.Kind,
					idx:   r.Idx,
					limit: math.Float64frombits(r.Limit),
					lo:    math.Float64frombits(r.Lo),
					hi:    math.Float64frombits(r.Hi),
					t:     math.Float64frombits(r.T),
				}
			}
			w.levels[wl.Level] = lr
		}
	}
	return w, nil
}
