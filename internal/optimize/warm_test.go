package optimize

import (
	"math"
	"testing"
)

// ellipsoid is a smooth test objective with a closed-form level set:
// f(x) = Σ wᵢ·(xᵢ − cᵢ)².
func ellipsoid(w, c []float64) Func {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - c[i]
			s += w[i] * d * d
		}
		return s
	}
}

func countingFunc(f Func, n *int) Func {
	return func(x []float64) float64 {
		*n++
		return f(x)
	}
}

func fkFor(f Func) FuncK {
	return func(xs [][]float64, out []float64) {
		for p := range xs {
			out[p] = f(xs[p])
		}
	}
}

func bitsSame(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// A warm-started repeat of the same search must return bit-identical
// results while reusing recorded brackets and spending fewer evaluations.
func TestWarmStartBitIdenticalAndCheaper(t *testing.T) {
	f := ellipsoid([]float64{1, 2.5, 0.7}, []float64{0.3, -0.2, 1.1})
	x0 := []float64{1.2, 0.8, -0.4}
	level := 9.0

	cold, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{})
	if err != nil {
		t.Fatalf("cold search: %v", err)
	}

	st := NewWarmState(x0)
	opt := LevelSetOptions{Warm: st}
	first, err := NearestOnLevelSet(f, level, x0, opt)
	if err != nil {
		t.Fatalf("first warm search: %v", err)
	}
	second, err := NearestOnLevelSet(f, level, x0, opt)
	if err != nil {
		t.Fatalf("second warm search: %v", err)
	}

	for name, r := range map[string]Result{"first-warm": first, "second-warm": second} {
		if math.Float64bits(r.Dist) != math.Float64bits(cold.Dist) || !bitsSame(r.Point, cold.Point) {
			t.Errorf("%s diverged from cold: dist %v vs %v, point %v vs %v",
				name, r.Dist, cold.Dist, r.Point, cold.Point)
		}
	}
	if second.Evals >= first.Evals {
		t.Errorf("warm repeat did not save evaluations: %d vs %d", second.Evals, first.Evals)
	}
	stats := st.Stats()
	if stats.RayReuses == 0 {
		t.Errorf("warm repeat reused no ray records: %+v", stats)
	}
	if stats.MemoHits == 0 {
		t.Errorf("warm repeat hit no memoized probes: %+v", stats)
	}
	if stats.Invalidations != 0 {
		t.Errorf("unexpected invalidations: %+v", stats)
	}
}

// One WarmState serving two levels of the same objective (the β^min/β^max
// sides of a feature) must match cold searches of both levels.
func TestWarmStartTwoLevels(t *testing.T) {
	f := ellipsoid([]float64{1, 1}, []float64{0, 0})
	x0 := []float64{0.5, 0.25}
	st := NewWarmState(x0)
	for _, level := range []float64{4, 9, 4, 9} {
		cold, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{})
		if err != nil {
			t.Fatalf("cold level %g: %v", level, err)
		}
		warm, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{Warm: st})
		if err != nil {
			t.Fatalf("warm level %g: %v", level, err)
		}
		if math.Float64bits(warm.Dist) != math.Float64bits(cold.Dist) || !bitsSame(warm.Point, cold.Point) {
			t.Errorf("level %g: warm diverged: %v vs %v", level, warm.Dist, cold.Dist)
		}
	}
	if st.Stats().Invalidations != 0 {
		t.Errorf("unexpected invalidations: %+v", st.Stats())
	}
}

// The warm-start fallback: when the objective changes underneath a
// WarmState (violating the frozen-f contract) so the sign change moves
// outside the reused bracket window, validation must catch it, discard the
// state, and re-run cold — returning exactly what a fresh search returns.
func TestWarmStartInvalidBracketFallsBackCold(t *testing.T) {
	shift := 0.0
	base := ellipsoid([]float64{1, 1.5}, []float64{0.1, -0.3})
	f := func(x []float64) float64 { return base(x) + shift }
	x0 := []float64{0.9, 0.7}
	level := 16.0

	st := NewWarmState(x0)
	if _, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{Warm: st}); err != nil {
		t.Fatalf("seeding warm search: %v", err)
	}

	// Shift the objective so every recorded bracket's crossing moves: the
	// boundary {f = 16} pulls inward by a wide margin.
	shift = 12.0
	fresh, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{})
	if err != nil {
		t.Fatalf("fresh search on shifted objective: %v", err)
	}
	warm, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{Warm: st})
	if err != nil {
		t.Fatalf("warm search on shifted objective: %v", err)
	}
	if math.Float64bits(warm.Dist) != math.Float64bits(fresh.Dist) || !bitsSame(warm.Point, fresh.Point) {
		t.Errorf("fallback result diverged from fresh cold search: %v vs %v", warm.Dist, fresh.Dist)
	}
	if st.Stats().Invalidations == 0 {
		t.Errorf("expected an invalidation after the objective changed: %+v", st.Stats())
	}
	// The rebuilt state must serve the new objective bit-identically again.
	warm2, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{Warm: st})
	if err != nil {
		t.Fatalf("post-fallback warm search: %v", err)
	}
	if math.Float64bits(warm2.Dist) != math.Float64bits(fresh.Dist) {
		t.Errorf("post-fallback warm search diverged: %v vs %v", warm2.Dist, fresh.Dist)
	}
}

// A WarmState bound to one search configuration must reset, not mislead,
// when reused with another (different seed ⇒ different random rays).
func TestWarmStartConfigChangeResets(t *testing.T) {
	f := ellipsoid([]float64{1, 1}, []float64{0, 0})
	x0 := []float64{0.5, 0.5}
	st := NewWarmState(x0)
	if _, err := NearestOnLevelSet(f, 4, x0, LevelSetOptions{Warm: st}); err != nil {
		t.Fatal(err)
	}
	cold, err := NearestOnLevelSet(f, 4, x0, LevelSetOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NearestOnLevelSet(f, 4, x0, LevelSetOptions{Seed: 99, Warm: st})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(warm.Dist) != math.Float64bits(cold.Dist) || !bitsSame(warm.Point, cold.Point) {
		t.Errorf("config change not honored: %v vs %v", warm.Dist, cold.Dist)
	}
}

// WarmState.Valid must be a bit-exact identity check.
func TestWarmStateValid(t *testing.T) {
	st := NewWarmState([]float64{1, 2, 3})
	if !st.Valid([]float64{1, 2, 3}) {
		t.Error("identity should match")
	}
	if st.Valid([]float64{1, 2}) || st.Valid([]float64{1, 2, 4}) {
		t.Error("wrong identity accepted")
	}
	var nilState *WarmState
	if nilState.Valid([]float64{1}) {
		t.Error("nil state claimed validity")
	}
}

// k-probe evaluation groups probes; it must not move them. Every block
// width must return bit-identical results to the scalar path.
func TestKProbeBitIdenticalAcrossWidths(t *testing.T) {
	f := ellipsoid([]float64{1, 0.5, 2, 1.2}, []float64{0.2, -0.1, 0.4, 0})
	x0 := []float64{1, 1, -0.5, 0.8}
	level := 25.0
	scalar, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kb := range []int{1, 2, 3, 5, 8, 16} {
		res, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{FK: fkFor(f), KBlock: kb})
		if err != nil {
			t.Fatalf("KBlock=%d: %v", kb, err)
		}
		if math.Float64bits(res.Dist) != math.Float64bits(scalar.Dist) || !bitsSame(res.Point, scalar.Point) {
			t.Errorf("KBlock=%d diverged: %v vs %v", kb, res.Dist, scalar.Dist)
		}
	}
}

// Warm start and k-probe compose: warm+FK must equal scalar cold, and the
// k-probe objective must absorb most scan probes (fewer scalar calls).
func TestWarmStartWithKProbe(t *testing.T) {
	f := ellipsoid([]float64{1, 2}, []float64{0.4, 0.1})
	x0 := []float64{1.5, -0.7}
	level := 12.0
	scalar, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewWarmState(x0)
	opt := LevelSetOptions{FK: fkFor(f), Warm: st}
	for i := 0; i < 3; i++ {
		res, err := NearestOnLevelSet(f, level, x0, opt)
		if err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
		if math.Float64bits(res.Dist) != math.Float64bits(scalar.Dist) || !bitsSame(res.Point, scalar.Point) {
			t.Errorf("pass %d diverged: %v vs %v", i, res.Dist, scalar.Dist)
		}
	}
	if st.Stats().Invalidations != 0 {
		t.Errorf("unexpected invalidations: %+v", st.Stats())
	}
}

// The evaluation budget must hold for k-probe searches too (within the
// documented one-block overshoot).
func TestKProbeRespectsMaxEvals(t *testing.T) {
	calls := 0
	f := countingFunc(ellipsoid([]float64{1, 1}, []float64{0, 0}), &calls)
	x0 := []float64{3, 4}
	const budget = 40
	_, err := NearestOnLevelSet(f, 100, x0, LevelSetOptions{
		FK: fkFor(f), KBlock: 8, MaxEvals: budget,
	})
	if err == nil {
		t.Fatal("expected ErrEvalBudget")
	}
	if calls > budget+8 {
		t.Errorf("budget overshot by more than one block: %d calls for budget %d", calls, budget)
	}
}
