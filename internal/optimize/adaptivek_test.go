package optimize

import (
	"math"
	"testing"
)

// TestAdaptiveKBlockBitIdentical pins the adaptive-widening contract: a
// search whose ray scans walk deep into the probe grid (a boundary a
// thousand origin-scaled steps out) must return bit-identical results with
// the scalar path, a fixed k-probe block, and an adaptively widened block —
// while the widened search spends strictly fewer FK calls than the fixed
// one.
func TestAdaptiveKBlockBitIdentical(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	var calls int
	fk := func(xs [][]float64, out []float64) {
		calls++
		for p := range xs {
			out[p] = f(xs[p])
		}
	}
	x0 := []float64{0.5, 0.5}
	const level = 1e6 // boundary at distance ~1000: a deep grid walk

	base := LevelSetOptions{Seed: 7, MaxSpan: 1e7}
	scalar, err := NearestOnLevelSet(f, level, x0, base)
	if err != nil {
		t.Fatal(err)
	}

	run := func(kb, kmax int) (Result, int) {
		t.Helper()
		calls = 0
		o := base
		o.FK, o.KBlock, o.KBlockMax = fk, kb, kmax
		r, err := NearestOnLevelSet(f, level, x0, o)
		if err != nil {
			t.Fatal(err)
		}
		return r, calls
	}
	fixed, fixedCalls := run(4, 0)
	adaptive, adaptiveCalls := run(4, 64)

	for name, r := range map[string]Result{"fixed": fixed, "adaptive": adaptive} {
		if math.Float64bits(r.Dist) != math.Float64bits(scalar.Dist) {
			t.Fatalf("%s k-probe Dist %.17g != scalar %.17g", name, r.Dist, scalar.Dist)
		}
		if len(r.Point) != len(scalar.Point) {
			t.Fatalf("%s point dim %d != %d", name, len(r.Point), len(scalar.Point))
		}
		for i := range r.Point {
			if math.Float64bits(r.Point[i]) != math.Float64bits(scalar.Point[i]) {
				t.Fatalf("%s point[%d] %.17g != scalar %.17g", name, i, r.Point[i], scalar.Point[i])
			}
		}
	}
	if adaptiveCalls >= fixedCalls {
		t.Fatalf("adaptive widening spent %d FK calls, fixed block spent %d — widening never engaged",
			adaptiveCalls, fixedCalls)
	}
	t.Logf("FK calls: fixed=%d adaptive=%d (evals: scalar=%d fixed=%d adaptive=%d)",
		fixedCalls, adaptiveCalls, scalar.Evals, fixed.Evals, adaptive.Evals)
}

// TestAdaptiveKBlockShallowUnchanged checks the other half of the design: a
// near boundary never reaches the widening threshold, so KBlockMax has no
// effect at all — same result, same FK call count.
func TestAdaptiveKBlockShallowUnchanged(t *testing.T) {
	f := func(x []float64) float64 { return x[0] + x[1] }
	var calls int
	fk := func(xs [][]float64, out []float64) {
		calls++
		for p := range xs {
			out[p] = f(xs[p])
		}
	}
	x0 := []float64{1, 1}
	run := func(kmax int) (Result, int) {
		t.Helper()
		calls = 0
		// MaxSpan keeps even the non-crossing rays under the widening
		// threshold (kAdaptDepth blocks of 8).
		o := LevelSetOptions{Seed: 3, FK: fk, KBlock: 8, KBlockMax: kmax, MaxSpan: 0.1}
		r, err := NearestOnLevelSet(f, 2.05, x0, o)
		if err != nil {
			t.Fatal(err)
		}
		return r, calls
	}
	plain, plainCalls := run(0)
	wide, wideCalls := run(128)
	if math.Float64bits(plain.Dist) != math.Float64bits(wide.Dist) || plainCalls != wideCalls {
		t.Fatalf("shallow scan changed under KBlockMax: dist %.17g/%.17g, calls %d/%d",
			plain.Dist, wide.Dist, plainCalls, wideCalls)
	}
}
