package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// planeDist is the analytic distance from x0 to {x : k·x = c}.
func planeDist(k, x0 []float64, c float64) float64 {
	var dot, nrm float64
	for i := range k {
		dot += k[i] * x0[i]
		nrm += k[i] * k[i]
	}
	return math.Abs(dot-c) / math.Sqrt(nrm)
}

func TestNearestOnLevelSetHyperplane2D(t *testing.T) {
	k := []float64{3, 4}
	f := func(x []float64) float64 { return k[0]*x[0] + k[1]*x[1] }
	x0 := []float64{1, 1}
	const level = 32
	res, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := planeDist(k, x0, level) // |3+4−32|/5 = 5
	if math.Abs(res.Dist-want) > 1e-6 {
		t.Errorf("dist = %v, want %v", res.Dist, want)
	}
	if got := f(res.Point); math.Abs(got-level) > 1e-6 {
		t.Errorf("returned point is off the boundary: f=%v", got)
	}
}

func TestNearestOnLevelSetHyperplane5D(t *testing.T) {
	k := []float64{1, -2, 0.5, 3, -1}
	f := func(x []float64) float64 {
		var s float64
		for i := range k {
			s += k[i] * x[i]
		}
		return s
	}
	x0 := []float64{2, 1, -1, 0.5, 3}
	const level = 40
	res, err := NearestOnLevelSet(f, level, x0, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := planeDist(k, x0, level)
	if math.Abs(res.Dist-want)/want > 1e-5 {
		t.Errorf("dist = %v, want %v", res.Dist, want)
	}
}

func TestNearestOnLevelSetSphere(t *testing.T) {
	// f(x) = ‖x‖², level R²: nearest boundary point from x0 is at distance
	// |R − ‖x0‖|.
	f := func(x []float64) float64 {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		return s
	}
	x0 := []float64{1, 2, 2} // ‖x0‖ = 3
	const radius = 5.0
	res, err := NearestOnLevelSet(f, radius*radius, x0, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist-2) > 1e-5 {
		t.Errorf("dist = %v, want 2", res.Dist)
	}
}

func TestNearestOnLevelSetProductCurve(t *testing.T) {
	// Figure-1-like convex boundary: f(x, y) = x·y, level 4, from (1, 1).
	// By symmetry the nearest point is (2, 2), distance √2.
	f := func(x []float64) float64 { return x[0] * x[1] }
	res, err := NearestOnLevelSet(f, 4, []float64{1, 1}, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist-math.Sqrt2) > 1e-5 {
		t.Errorf("dist = %v, want √2", res.Dist)
	}
	if math.Abs(res.Point[0]-2) > 1e-4 || math.Abs(res.Point[1]-2) > 1e-4 {
		t.Errorf("point = %v, want (2, 2)", res.Point)
	}
}

func TestNearestOnLevelSetMaxBoundary(t *testing.T) {
	// f = max(x, y): the boundary {max = 5} from (1, 2) has nearest point
	// (1, 5) at distance 3 — tests the non-smooth path.
	f := func(x []float64) float64 { return math.Max(x[0], x[1]) }
	res, err := NearestOnLevelSet(f, 5, []float64{1, 2}, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist-3) > 1e-4 {
		t.Errorf("dist = %v, want 3", res.Dist)
	}
}

func TestNearestOnLevelSetAlreadyOnBoundary(t *testing.T) {
	f := func(x []float64) float64 { return x[0] + x[1] }
	res, err := NearestOnLevelSet(f, 3, []float64{1, 2}, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist != 0 {
		t.Errorf("already on boundary: dist = %v", res.Dist)
	}
}

func TestNearestOnLevelSetUnreachable(t *testing.T) {
	// f ≡ 0 can never reach level 1: must report ErrNoBoundary.
	f := func(x []float64) float64 { return 0 }
	_, err := NearestOnLevelSet(f, 1, []float64{0, 0}, LevelSetOptions{MaxSpan: 100})
	if err == nil {
		t.Fatal("unreachable level must error")
	}
}

func TestNearestOnLevelSetEmptyOrigin(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, err := NearestOnLevelSet(f, 1, nil, LevelSetOptions{}); err == nil {
		t.Error("empty origin must error")
	}
}

func TestPropNearestHyperplaneMatchesClosedForm(t *testing.T) {
	// Random hyperplanes in random dimensions: numeric vs. analytic distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(4) + 2
		k := make([]float64, n)
		x0 := make([]float64, n)
		for i := range k {
			k[i] = rng.Float64()*4 + 0.5 // positive, bounded away from 0
			x0[i] = rng.Float64()*5 + 0.5
		}
		field := func(x []float64) float64 {
			var s float64
			for i := range k {
				s += k[i] * x[i]
			}
			return s
		}
		orig := field(x0)
		level := orig * (1.2 + rng.Float64()) // boundary strictly above
		res, err := NearestOnLevelSet(field, level, x0, LevelSetOptions{Seed: seed})
		if err != nil {
			return false
		}
		want := planeDist(k, x0, level)
		return math.Abs(res.Dist-want) <= 1e-4*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropBoundaryFeasibility(t *testing.T) {
	// Whatever point the solver returns must actually lie on the level set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*2 + 0.5
		b := rng.Float64()*2 + 0.5
		field := func(x []float64) float64 { return a*x[0]*x[0] + b*x[1]*x[1] }
		x0 := []float64{rng.Float64(), rng.Float64()}
		level := field(x0) + 1 + rng.Float64()*10
		res, err := NearestOnLevelSet(field, level, x0, LevelSetOptions{Seed: seed})
		if err != nil {
			return false
		}
		return math.Abs(field(res.Point)-level) < 1e-5*(1+math.Abs(level))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNearestOnLevelSetEllipse(t *testing.T) {
	// f = x²/4 + y², level 1, from origin: nearest point (0, ±1), dist 1.
	f := func(x []float64) float64 { return x[0]*x[0]/4 + x[1]*x[1] }
	res, err := NearestOnLevelSet(f, 1, []float64{0, 0}, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist-1) > 1e-5 {
		t.Errorf("dist = %v, want 1 (semi-minor axis)", res.Dist)
	}
}

// TestNearestOnLevelSetSublevelWindowNearEdge is the regression fixture for
// the far-edge defect surfaced by the oracle's composition-bound check
// (oracle seed 382): φ(x) = c + k·√|x·s| dips below the level on a narrow
// window around x = 0, and the expanding bracket scan steps over it. The
// dip refinement used to hand Brent a bracket holding only the window's
// FAR edge (x ≈ −0.0494, distance 1.0494 from x0 = 1), silently
// overestimating the robustness radius; the nearest boundary point is the
// near edge x ≈ +0.0494 at distance 0.9506.
func TestNearestOnLevelSetSublevelWindowNearEdge(t *testing.T) {
	const (
		c     = 0.45524031932508985
		k     = 0.8618950779178387
		s     = 2.977759305648638
		level = 0.7856693583552339
	)
	f := func(x []float64) float64 { return c + k*math.Sqrt(math.Abs(x[0]*s)) }
	res, err := NearestOnLevelSet(f, level, []float64{1}, LevelSetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Exact near edge: |x| = ((level−c)/k)²/s on the positive side.
	wantX := ((level - c) / k) * ((level - c) / k) / s
	wantDist := 1 - wantX
	if math.Abs(res.Dist-wantDist) > 1e-6 {
		t.Fatalf("Dist = %.12f (point %v), want near-edge %.12f — search landed on the far edge of the sublevel window",
			res.Dist, res.Point, wantDist)
	}
	if res.Point[0] < 0 {
		t.Fatalf("boundary point %v is on the far side of the window; want the near edge %.9f", res.Point, wantX)
	}
}
