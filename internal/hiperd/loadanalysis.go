package hiperd

import (
	"fmt"

	"fepia/internal/core"
	"fepia/internal/vec"
)

// AnalysisWithLoad extends Analysis with a THIRD kind of perturbation — the
// sensor load λ (data sets per second), the uncertainty the paper's
// introduction leads with ("the sensor loads are expected to change
// unpredictably"). The three parameter kinds are
//
//	π_1 = execution times e (seconds),
//	π_2 = message lengths m (bytes),
//	π_3 = sensor load λ (data sets per second, one element).
//
// Utilization features become *bilinear* — U_j = λ·Σ e_a and V_k = λ·m_k/BW
// are products of two different perturbation kinds — so their boundaries are
// curved (exactly the convex shape of the paper's Figure 1) and the engine's
// numeric level-set tier carries the radius computation. Latency features
// remain affine (the contention-free path latency does not depend on λ) and
// keep the exact tier, with a zero coefficient block for λ. The mixture
// exercises every computation tier inside one analysis.
func (s *System) AnalysisWithLoad() (*core.Analysis, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	params := []core.Perturbation{
		{Name: "exec-times", Unit: "s", Orig: s.OrigExecTimes()},
		{Name: "msg-lengths", Unit: "bytes", Orig: s.OrigMsgSizes()},
		{Name: "sensor-load", Unit: "datasets/s", Orig: vec.Of(s.Rate)},
	}
	nA, nE := len(s.Apps), len(s.MsgSizes)
	cross := s.CrossEdges()
	var features []core.Feature

	// Bilinear machine-utilization features: U_j(e, λ) = λ · Σ_{a on j} e_a.
	for j := range s.Machines {
		onJ := make([]bool, nA)
		used := false
		for a, mj := range s.Alloc {
			if mj == j {
				onJ[a] = true
				used = true
			}
		}
		if !used {
			continue
		}
		mask := onJ
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("util(machine-%d)", j),
			Bounds: core.MaxOnly(1),
			Impact: func(vs []vec.V) float64 {
				var sum float64
				for a, in := range mask {
					if in {
						sum += vs[0][a]
					}
				}
				return vs[2][0] * sum
			},
		})
	}

	// Bilinear link-utilization features: V_k(m, λ) = λ · m_k / BW_k.
	for kIdx, isCross := range cross {
		if !isCross {
			continue
		}
		k := kIdx
		bw := s.edgeBW(k)
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("util(link-edge-%d)", k),
			Bounds: core.MaxOnly(1),
			Impact: func(vs []vec.V) float64 {
				return vs[2][0] * vs[1][k] / bw
			},
		})
	}

	// Affine latency features with a zero λ block.
	paths, err := s.Paths()
	if err != nil {
		return nil, err
	}
	idx := s.edgeIndex()
	for pi, p := range paths {
		ke := make(vec.V, nA)
		km := make(vec.V, nE)
		for i, a := range p {
			ke[a] = 1
			if i+1 < len(p) {
				k, ok := idx[[2]int{a, p[i+1]}]
				if !ok {
					return nil, fmt.Errorf("%w: path %d uses missing edge (%d,%d)", ErrBadSystem, pi, a, p[i+1])
				}
				if cross[k] {
					km[k] = 1 / s.edgeBW(k)
				}
			}
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("latency(path-%d)", pi),
			Bounds: core.MaxOnly(s.LatencyMax),
			Linear: &core.LinearImpact{Coeffs: []vec.V{ke, km, vec.New(1)}},
		})
	}

	return core.NewAnalysis(features, params)
}
