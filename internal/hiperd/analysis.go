package hiperd

import (
	"fmt"

	"fepia/internal/core"
	"fepia/internal/vec"
)

// Analysis adapts the system to a FePIA core.Analysis with two perturbation
// parameters of different kinds — the paper's Section 3 scenario:
//
//	π_1 = actual application execution times e (seconds),
//	π_2 = actual message lengths m (bytes),
//
// and three families of linear performance features:
//
//	machine utilization  U_j(e)   = λ·Σ_{a on j} e_a            ≤ 1
//	link utilization     V_k(m)   = λ·m_k/BW   (cross edges)    ≤ 1
//	path latency         L_p(e,m) = Σ_p e_a + Σ_p,cross m_k/BW  ≤ LatencyMax
//
// Every feature is affine in (e, m), so the engine's analytic tier applies;
// the latency features couple both kinds, which is what makes the combined
// P-space analysis non-trivial.
func (s *System) Analysis() (*core.Analysis, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	params := []core.Perturbation{
		{Name: "exec-times", Unit: "s", Orig: s.OrigExecTimes()},
		{Name: "msg-lengths", Unit: "bytes", Orig: s.OrigMsgSizes()},
	}
	nA, nE := len(s.Apps), len(s.MsgSizes)
	cross := s.CrossEdges()
	var features []core.Feature

	// Machine-utilization features (skip machines with no apps: their
	// utilization is identically zero and unreachable).
	for j := range s.Machines {
		k := make(vec.V, nA)
		used := false
		for a, mj := range s.Alloc {
			if mj == j {
				k[a] = s.Rate
				used = true
			}
		}
		if !used {
			continue
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("util(machine-%d)", j),
			Bounds: core.MaxOnly(1),
			Linear: &core.LinearImpact{Coeffs: []vec.V{k, make(vec.V, nE)}},
		})
	}

	// Link-utilization features, one per cross-machine edge.
	for kIdx, isCross := range cross {
		if !isCross {
			continue
		}
		km := make(vec.V, nE)
		km[kIdx] = s.Rate / s.edgeBW(kIdx)
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("util(link-edge-%d)", kIdx),
			Bounds: core.MaxOnly(1),
			Linear: &core.LinearImpact{Coeffs: []vec.V{make(vec.V, nA), km}},
		})
	}

	// Path-latency features — the genuinely mixed-kind ones.
	paths, err := s.Paths()
	if err != nil {
		return nil, err
	}
	idx := s.edgeIndex()
	for pi, p := range paths {
		ke := make(vec.V, nA)
		km := make(vec.V, nE)
		for i, a := range p {
			ke[a] = 1
			if i+1 < len(p) {
				k, ok := idx[[2]int{a, p[i+1]}]
				if !ok {
					return nil, fmt.Errorf("%w: path %d uses missing edge (%d,%d)", ErrBadSystem, pi, a, p[i+1])
				}
				if cross[k] {
					km[k] = 1 / s.edgeBW(k)
				}
			}
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("latency(path-%d)", pi),
			Bounds: core.MaxOnly(s.LatencyMax),
			Linear: &core.LinearImpact{Coeffs: []vec.V{ke, km}},
		})
	}

	return core.NewAnalysis(features, params)
}
