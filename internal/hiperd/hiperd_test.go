package hiperd

import (
	"math"
	"testing"

	"fepia/internal/dag"
	"fepia/internal/vec"
)

// pipeline builds a 3-stage chain 0→1→2, one app per machine:
//
//	exec (s):    0.02, 0.03, 0.01       rate λ = 10 /s
//	msg (bytes): 1000, 2000             bandwidth 1e6 B/s
//
// Analytic worst latency = 0.02 + 0.001 + 0.03 + 0.002 + 0.01 = 0.063 s.
func pipeline(t *testing.T) *System {
	t.Helper()
	g, err := dag.New(3)
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	s := &System{
		Apps:       []App{{"filter", 0.02}, {"track", 0.03}, {"display", 0.01}},
		Graph:      g,
		MsgSizes:   vec.Of(1000, 2000),
		Machines:   []Machine{{"m0", 1}, {"m1", 1}, {"m2", 1}},
		Bandwidth:  1e6,
		Alloc:      []int{0, 1, 2},
		Rate:       10,
		LatencyMax: 0.1,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// diamond builds 0→{1,2}→3 with apps 0,1 on machine 0 and 2,3 on machine 1.
func diamond(t *testing.T) *System {
	t.Helper()
	g, err := dag.New(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s := &System{
		Apps:       []App{{"src", 0.01}, {"a", 0.02}, {"b", 0.02}, {"sink", 0.01}},
		Graph:      g,
		MsgSizes:   vec.Of(500, 500, 500, 500),
		Machines:   []Machine{{"m0", 1}, {"m1", 1}},
		Bandwidth:  1e6,
		Alloc:      []int{0, 0, 1, 1},
		Rate:       5,
		LatencyMax: 0.2,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidateErrors(t *testing.T) {
	base := func() *System { return pipeline(t) }
	mutations := []struct {
		name string
		mut  func(*System)
	}{
		{"nil graph", func(s *System) { s.Graph = nil }},
		{"app count", func(s *System) { s.Apps = s.Apps[:2] }},
		{"msg count", func(s *System) { s.MsgSizes = s.MsgSizes[:1] }},
		{"non-positive msg", func(s *System) { s.MsgSizes[0] = 0 }},
		{"no machines", func(s *System) { s.Machines = nil }},
		{"bad speed", func(s *System) { s.Machines[0].Speed = 0 }},
		{"alloc count", func(s *System) { s.Alloc = s.Alloc[:1] }},
		{"alloc range", func(s *System) { s.Alloc[0] = 9 }},
		{"bad exec", func(s *System) { s.Apps[0].BaseExec = -1 }},
		{"bad bandwidth", func(s *System) { s.Bandwidth = 0 }},
		{"bad rate", func(s *System) { s.Rate = 0 }},
		{"bad latency bound", func(s *System) { s.LatencyMax = 0 }},
	}
	for _, m := range mutations {
		s := base()
		m.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestOrigExecTimesSpeedScaling(t *testing.T) {
	s := pipeline(t)
	s.Machines[1].Speed = 2 // app 1 halves
	e := s.OrigExecTimes()
	if !e.EqualApprox(vec.Of(0.02, 0.015, 0.01), 1e-12) {
		t.Errorf("exec times = %v", e)
	}
}

func TestMachineAndLinkUtil(t *testing.T) {
	s := pipeline(t)
	e := s.OrigExecTimes()
	mu, err := s.MachineUtil(e)
	if err != nil {
		t.Fatal(err)
	}
	if !mu.EqualApprox(vec.Of(0.2, 0.3, 0.1), 1e-12) {
		t.Errorf("machine util = %v", mu)
	}
	lu, err := s.LinkUtil(s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if !lu.EqualApprox(vec.Of(0.01, 0.02), 1e-12) {
		t.Errorf("link util = %v", lu)
	}
	if _, err := s.MachineUtil(vec.Of(1)); err == nil {
		t.Error("bad exec dims must error")
	}
	if _, err := s.LinkUtil(vec.Of(1)); err == nil {
		t.Error("bad msg dims must error")
	}
}

func TestColocatedEdgesFree(t *testing.T) {
	s := pipeline(t)
	s.Alloc = []int{0, 0, 0} // all co-located
	cross := s.CrossEdges()
	for k, c := range cross {
		if c {
			t.Errorf("edge %d should be co-located", k)
		}
	}
	lu, err := s.LinkUtil(s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if lu.Norm1() != 0 {
		t.Errorf("co-located link util = %v, want zeros", lu)
	}
	lat, err := s.WorstLatency(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-0.06) > 1e-12 {
		t.Errorf("co-located latency = %v, want 0.06 (no comm)", lat)
	}
}

func TestPathLatencyPipeline(t *testing.T) {
	s := pipeline(t)
	paths, err := s.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	lat, err := s.PathLatency(paths[0], s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-0.063) > 1e-12 {
		t.Errorf("latency = %v, want 0.063", lat)
	}
}

func TestWorstLatencyDiamond(t *testing.T) {
	s := diamond(t)
	// Paths: 0-1-3 and 0-2-3. Cross edges under alloc {0,0,1,1}:
	// (0,1) same, (0,2) cross, (1,3) cross, (2,3) same.
	// L(0,1,3) = 0.01+0.02+0.0005+0.01 = 0.0405
	// L(0,2,3) = 0.01+0.0005+0.02+0.01 = 0.0405
	lat, err := s.WorstLatency(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-0.0405) > 1e-12 {
		t.Errorf("worst latency = %v, want 0.0405", lat)
	}
}

func TestQoSOK(t *testing.T) {
	s := pipeline(t)
	ok, err := s.QoSOK(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("nominal system must satisfy QoS")
	}
	// Machine overload: exec 0.2 at rate 10 → util 2.
	ok, err = s.QoSOK(vec.Of(0.2, 0.03, 0.01), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded machine must fail QoS")
	}
	// Latency blowout via huge message.
	ok, err = s.QoSOK(s.OrigExecTimes(), vec.Of(1000, 80000))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("slow message must fail QoS (latency)")
	}
	// Link overload: rate 10 · m/BW > 1 ⇒ m > 1e5.
	ok, err = s.QoSOK(s.OrigExecTimes(), vec.Of(150000, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("saturated link must fail QoS")
	}
}

func TestAnalysisStructure(t *testing.T) {
	s := pipeline(t)
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	// 3 machine features + 2 link features + 1 path feature.
	if len(a.Features) != 6 {
		t.Fatalf("feature count = %d, want 6", len(a.Features))
	}
	if len(a.Params) != 2 {
		t.Fatalf("param count = %d", len(a.Params))
	}
	if a.Params[0].Unit != "s" || a.Params[1].Unit != "bytes" {
		t.Errorf("units = %q, %q", a.Params[0].Unit, a.Params[1].Unit)
	}
	if a.TotalDim() != 5 { // 3 exec + 2 msg
		t.Errorf("total dim = %d, want 5", a.TotalDim())
	}
}

func TestAnalysisFeatureValuesMatchModel(t *testing.T) {
	s := pipeline(t)
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	vals := []vec.V{e, m}
	mu, _ := s.MachineUtil(e)
	// Features 0..2 are machine utils; 3..4 link utils; 5 path latency.
	for j := 0; j < 3; j++ {
		if got := a.FeatureValue(j, vals); math.Abs(got-mu[j]) > 1e-12 {
			t.Errorf("feature %d = %v, want util %v", j, got, mu[j])
		}
	}
	worst, _ := s.WorstLatency(e, m)
	if got := a.FeatureValue(5, vals); math.Abs(got-worst) > 1e-12 {
		t.Errorf("latency feature = %v, want %v", got, worst)
	}
}

func TestAnalysisViolatesAgreesWithQoSOK(t *testing.T) {
	s := diamond(t)
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]vec.V{
		{s.OrigExecTimes(), s.OrigMsgSizes()},
		{vec.Of(0.3, 0.02, 0.02, 0.01), s.OrigMsgSizes()},            // machine overload
		{s.OrigExecTimes(), vec.Of(500, 250000, 500, 500)},           // link overload
		{vec.Of(0.09, 0.09, 0.002, 0.002), s.OrigMsgSizes()},         // latency-ish
		{vec.Of(0.01, 0.02, 0.02, 0.01), vec.Of(500, 500, 500, 500)}, // nominal again
		{vec.Of(0.15, 0.15, 0.002, 0.002), vec.Of(10, 10, 10, 10)},   // util boundary region
	}
	for i, vals := range cases {
		ok, err := s.QoSOK(vals[0], vals[1])
		if err != nil {
			t.Fatal(err)
		}
		if ok == a.Violates(vals) {
			t.Errorf("case %d: QoSOK=%v but Violates=%v", i, ok, a.Violates(vals))
		}
	}
}

func TestRobustnessPositiveAndCriticalSensible(t *testing.T) {
	s := pipeline(t)
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	// Per-kind robustness (Eq. 1): both must be positive and finite.
	for j := 0; j < 2; j++ {
		r, err := a.RobustnessSingle(j)
		if err != nil {
			t.Fatal(err)
		}
		if !(r.Value > 0) || math.IsInf(r.Value, 1) {
			t.Errorf("single robustness %d = %v", j, r.Value)
		}
	}
	// Combined normalized robustness.
	rho, err := a.Robustness(normalizedW())
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) || math.IsInf(rho.Value, 1) {
		t.Errorf("combined rho = %v", rho.Value)
	}
}
