package hiperd

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/core"
)

// The paper lists "sudden machine or link failures" among the uncertainties
// a robust resource allocation must face. This file implements failure
// injection and recovery for the HiPer-D substrate: a machine is removed,
// its applications are remapped onto the survivors, and the analysis
// quantifies how much robustness the failure cost — experiment E12.

// ErrNoCapacity is returned when no feasible remapping exists (some machine
// would exceed its throughput capacity even at nominal values).
var ErrNoCapacity = errors.New("hiperd: no feasible remapping after failure")

// FailMachine returns a copy of the system with machine j removed and its
// applications remapped onto the surviving machines by the given mapper.
// Machine indices are compacted (machines after j shift down by one).
func (s *System) FailMachine(j int, remap Remapper) (*System, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if j < 0 || j >= len(s.Machines) {
		return nil, fmt.Errorf("hiperd: FailMachine(%d) of %d machines", j, len(s.Machines))
	}
	if len(s.Machines) == 1 {
		return nil, fmt.Errorf("%w: last machine failed", ErrNoCapacity)
	}
	if remap == nil {
		remap = GreedyUtilRemap
	}

	out := *s
	out.Machines = make([]Machine, 0, len(s.Machines)-1)
	for idx, m := range s.Machines {
		if idx != j {
			out.Machines = append(out.Machines, m)
		}
	}
	// Re-key heterogeneous link bandwidths; pairs touching the failed
	// machine disappear with it.
	if len(s.LinkBW) > 0 {
		out.LinkBW = make(map[[2]int]float64, len(s.LinkBW))
		shift := func(m int) int {
			if m > j {
				return m - 1
			}
			return m
		}
		for pair, bw := range s.LinkBW {
			if pair[0] == j || pair[1] == j {
				continue
			}
			out.LinkBW[[2]int{shift(pair[0]), shift(pair[1])}] = bw
		}
	}
	// Re-index surviving assignments; collect orphans.
	out.Alloc = make([]int, len(s.Alloc))
	var orphans []int
	for a, m := range s.Alloc {
		switch {
		case m == j:
			out.Alloc[a] = -1
			orphans = append(orphans, a)
		case m > j:
			out.Alloc[a] = m - 1
		default:
			out.Alloc[a] = m
		}
	}
	if err := remap(&out, orphans); err != nil {
		return nil, err
	}
	for a, m := range out.Alloc {
		if m < 0 || m >= len(out.Machines) {
			return nil, fmt.Errorf("hiperd: remapper left app %d on machine %d", a, m)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("hiperd: remapped system invalid: %w", err)
	}
	return &out, nil
}

// Remapper assigns the orphaned applications (Alloc[a] == -1) of a
// post-failure system to surviving machines, editing sys.Alloc in place.
type Remapper func(sys *System, orphans []int) error

// GreedyUtilRemap places each orphan, heaviest first, on the machine whose
// utilization stays lowest — the classical load-balancing recovery.
func GreedyUtilRemap(sys *System, orphans []int) error {
	load := make([]float64, len(sys.Machines))
	for a, m := range sys.Alloc {
		if m >= 0 {
			load[m] += sys.Apps[a].BaseExec / sys.Machines[m].Speed
		}
	}
	// Heaviest orphans first (deterministic: ties by index).
	sorted := append([]int(nil), orphans...)
	for i := 1; i < len(sorted); i++ {
		for k := i; k > 0; k-- {
			a, b := sorted[k-1], sorted[k]
			if sys.Apps[b].BaseExec > sys.Apps[a].BaseExec ||
				(sys.Apps[b].BaseExec == sys.Apps[a].BaseExec && b < a) {
				sorted[k-1], sorted[k] = b, a
			} else {
				break
			}
		}
	}
	for _, a := range sorted {
		best, bestLoad := -1, math.Inf(1)
		for m := range sys.Machines {
			t := load[m] + sys.Apps[a].BaseExec/sys.Machines[m].Speed
			if t < bestLoad {
				best, bestLoad = m, t
			}
		}
		sys.Alloc[a] = best
		load[best] = bestLoad
	}
	// Feasibility: every machine must sustain the rate.
	for m, l := range load {
		if sys.Rate*l > 1 {
			return fmt.Errorf("%w: machine %d utilization %.3f", ErrNoCapacity, m, sys.Rate*l)
		}
	}
	return nil
}

// RobustRemap places orphans to maximize the post-failure combined
// normalized robustness: each orphan (heaviest first) tries every surviving
// machine and keeps the placement with the largest ρ_μ(Φ, P). It is more
// expensive than GreedyUtilRemap — one analysis per candidate — and
// measurably better on robustness (E12 quantifies the gap).
func RobustRemap(sys *System, orphans []int) error {
	// Order as in GreedyUtilRemap for comparability.
	sorted := append([]int(nil), orphans...)
	for i := 1; i < len(sorted); i++ {
		for k := i; k > 0; k-- {
			a, b := sorted[k-1], sorted[k]
			if sys.Apps[b].BaseExec > sys.Apps[a].BaseExec ||
				(sys.Apps[b].BaseExec == sys.Apps[a].BaseExec && b < a) {
				sorted[k-1], sorted[k] = b, a
			} else {
				break
			}
		}
	}
	for _, a := range sorted {
		best, bestRho := -1, math.Inf(-1)
		for m := range sys.Machines {
			sys.Alloc[a] = m
			rho, ok := tryRho(sys, sorted, a)
			if ok && rho > bestRho {
				best, bestRho = m, rho
			}
		}
		if best < 0 {
			// No placement yields a valid analysis (e.g. any choice
			// overloads): fall back to the least-utilized machine so the
			// caller gets the capacity error with full context.
			sys.Alloc[a] = -1
			return GreedyUtilRemap(sys, remaining(sorted, a))
		}
		sys.Alloc[a] = best
	}
	return nil
}

// tryRho evaluates the combined robustness of a partially remapped system:
// orphans not yet placed (those after app a in order) are parked on machine
// 0 for the trial.
func tryRho(sys *System, order []int, upto int) (float64, bool) {
	parked := []int{}
	seen := false
	for _, o := range order {
		if seen && sys.Alloc[o] == -1 {
			parked = append(parked, o)
			sys.Alloc[o] = 0
		}
		if o == upto {
			seen = true
		}
	}
	defer func() {
		for _, o := range parked {
			sys.Alloc[o] = -1
		}
	}()
	// Unplaced orphans before upto should not exist; guard anyway.
	for _, m := range sys.Alloc {
		if m == -1 {
			return 0, false
		}
	}
	a, err := sys.Analysis()
	if err != nil {
		return 0, false
	}
	rho, err := a.Robustness(core.Normalized{})
	if err != nil {
		return 0, false
	}
	return rho.Value, true
}

// remaining returns the orphans from a (inclusive) onward in order.
func remaining(order []int, from int) []int {
	for i, o := range order {
		if o == from {
			return order[i:]
		}
	}
	return nil
}
