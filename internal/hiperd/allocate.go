package hiperd

import (
	"fmt"
	"math"

	"fepia/internal/core"
)

// The DARPA project that motivated the paper was "the design and analysis of
// heuristics for robust resource allocation". This file provides initial
// (from-scratch) allocation heuristics for the HiPer-D substrate, the
// counterpart of internal/sched for the streaming system: given a system
// with machines but no committed allocation, place every application.

// AllocateGreedyUtil assigns applications to machines balancing utilization:
// heaviest application first onto the machine with the lowest resulting
// load (speed-aware). It overwrites s.Alloc and validates the result; an
// error is returned when even balanced placement overloads a machine.
func (s *System) AllocateGreedyUtil() error {
	if len(s.Machines) == 0 {
		return fmt.Errorf("%w: no machines", ErrBadSystem)
	}
	if len(s.Alloc) != len(s.Apps) {
		s.Alloc = make([]int, len(s.Apps))
	}
	for a := range s.Alloc {
		s.Alloc[a] = -1
	}
	order := execOrder(s)
	load := make([]float64, len(s.Machines))
	for _, a := range order {
		best, bestLoad := -1, math.Inf(1)
		for m := range s.Machines {
			t := load[m] + s.Apps[a].BaseExec/s.Machines[m].Speed
			if t < bestLoad {
				best, bestLoad = m, t
			}
		}
		s.Alloc[a] = best
		load[best] = bestLoad
	}
	for m, l := range load {
		if s.Rate*l > 1 {
			return fmt.Errorf("%w: machine %d utilization %.3f after balanced placement", ErrNoCapacity, m, s.Rate*l)
		}
	}
	return s.Validate()
}

// AllocateRobust assigns applications to maximize the combined normalized
// robustness ρ_μ(Φ, P): starting from the balanced placement, it hill-climbs
// over single-application moves, accepting only strict improvements, until a
// local optimum or maxSteps moves. It is the expensive-but-better initial
// mapper the motivating project asked for; E12's remapping counterpart
// handles the failure path.
func (s *System) AllocateRobust(maxSteps int) error {
	if err := s.AllocateGreedyUtil(); err != nil {
		return err
	}
	if maxSteps <= 0 {
		maxSteps = 4 * len(s.Apps)
	}
	cur, err := s.robustScore()
	if err != nil {
		return err
	}
	for step := 0; step < maxSteps; step++ {
		improved := false
		for a := 0; a < len(s.Apps) && !improved; a++ {
			from := s.Alloc[a]
			for m := range s.Machines {
				if m == from {
					continue
				}
				s.Alloc[a] = m
				next, err := s.robustScore()
				if err == nil && next > cur+1e-12 {
					cur = next
					improved = true
					break
				}
				s.Alloc[a] = from
			}
		}
		if !improved {
			break
		}
	}
	return s.Validate()
}

// robustScore evaluates ρ under the normalized weighting, returning an error
// for infeasible intermediate states (e.g. a move that overloads a machine
// makes the analysis reject the operating point).
func (s *System) robustScore() (float64, error) {
	a, err := s.Analysis()
	if err != nil {
		return 0, err
	}
	rho, err := a.Robustness(core.Normalized{})
	if err != nil {
		return 0, err
	}
	return rho.Value, nil
}

// execOrder returns application indices sorted heaviest-first
// (deterministic: ties by index).
func execOrder(s *System) []int {
	order := make([]int, len(s.Apps))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0; k-- {
			x, y := order[k-1], order[k]
			if s.Apps[y].BaseExec > s.Apps[x].BaseExec ||
				(s.Apps[y].BaseExec == s.Apps[x].BaseExec && y < x) {
				order[k-1], order[k] = y, x
			} else {
				break
			}
		}
	}
	return order
}
