package hiperd

import (
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/vec"
)

func TestAllocateGreedyUtilBalances(t *testing.T) {
	s := pipeline(t)
	s.Machines = s.Machines[:2] // 3 apps on 2 machines
	s.Alloc = nil
	if err := s.AllocateGreedyUtil(); err != nil {
		t.Fatal(err)
	}
	// Heaviest-first: 0.03 → m0, 0.02 → m1, 0.01 → m1 (0.02 < 0.03).
	load, err := s.MachineUtil(s.OrigExecTimes())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(load[0]-0.3) > 1e-12 || math.Abs(load[1]-0.3) > 1e-12 {
		t.Errorf("balanced utils = %v, want (0.3, 0.3)", load)
	}
}

func TestAllocateGreedyUtilSpeedAware(t *testing.T) {
	s := pipeline(t)
	s.Machines = []Machine{{"slow", 0.5}, {"fast", 2}}
	s.Alloc = nil
	if err := s.AllocateGreedyUtil(); err != nil {
		t.Fatal(err)
	}
	// The fast machine absorbs more work: its per-app times are 4x lower.
	load, err := s.MachineUtil(s.OrigExecTimes())
	if err != nil {
		t.Fatal(err)
	}
	if load[1] > load[0]+1e-9 && len(s.TasksOnMachine(1)) < 2 {
		t.Errorf("fast machine underused: loads %v", load)
	}
}

// TasksOnMachine mirrors makespan.TasksOn for this package's tests.
func (s *System) TasksOnMachine(m int) []int {
	var out []int
	for a, mm := range s.Alloc {
		if mm == m {
			out = append(out, a)
		}
	}
	return out
}

func TestAllocateGreedyUtilOverload(t *testing.T) {
	s := pipeline(t)
	s.Machines = s.Machines[:1]
	s.Alloc = nil
	s.Rate = 20 // 0.06 total exec × 20 = 1.2 > 1
	if err := s.AllocateGreedyUtil(); err == nil {
		t.Error("overloaded placement must error")
	}
}

func TestAllocateGreedyUtilNoMachines(t *testing.T) {
	s := pipeline(t)
	s.Machines = nil
	if err := s.AllocateGreedyUtil(); err == nil {
		t.Error("no machines must error")
	}
}

func TestAllocateRobustNeverWorse(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		s := randomShared(t, 300+seed)
		base := *s
		base.Alloc = append([]int(nil), s.Alloc...)
		if err := base.AllocateGreedyUtil(); err != nil {
			t.Fatal(err)
		}
		rhoGreedy, err := base.robustScore()
		if err != nil {
			t.Fatal(err)
		}
		opt := *s
		opt.Alloc = append([]int(nil), s.Alloc...)
		if err := opt.AllocateRobust(0); err != nil {
			t.Fatal(err)
		}
		rhoOpt, err := opt.robustScore()
		if err != nil {
			t.Fatal(err)
		}
		if rhoOpt < rhoGreedy-1e-9 {
			t.Fatalf("seed %d: robust allocation %v below greedy %v", seed, rhoOpt, rhoGreedy)
		}
	}
}

func TestAllocateRobustProducesValidSystem(t *testing.T) {
	s := randomShared(t, 500)
	if err := s.AllocateRobust(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) {
		t.Errorf("rho = %v", rho.Value)
	}
	ok, err := s.QoSOK(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("robust allocation must satisfy QoS at the nominal point")
	}
}

func TestExecOrderHeaviestFirst(t *testing.T) {
	s := pipeline(t) // base execs 0.02, 0.03, 0.01
	order := execOrder(s)
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Errorf("order = %v, want [1 0 2]", order)
	}
	// Ties resolve by index.
	s.Apps = []App{{"a", 0.02}, {"b", 0.02}, {"c", 0.02}}
	s.MsgSizes = vec.Of(100, 100)
	order = execOrder(s)
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("tie order = %v, want [0 1 2]", order)
	}
}
