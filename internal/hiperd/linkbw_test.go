package hiperd

import (
	"math"
	"testing"

	"fepia/internal/vec"
)

// slowLinkPipeline returns the standard pipeline with the 1→2 machine link
// degraded to a tenth of the default bandwidth.
func slowLinkPipeline(t *testing.T) *System {
	t.Helper()
	s := pipeline(t)
	s.LinkBW = map[[2]int]float64{{1, 2}: 1e5}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLinkBandwidthLookup(t *testing.T) {
	s := slowLinkPipeline(t)
	if got := s.LinkBandwidth(0, 1); got != 1e6 {
		t.Errorf("default link = %v", got)
	}
	if got := s.LinkBandwidth(1, 2); got != 1e5 {
		t.Errorf("override link = %v", got)
	}
	// Direction matters: (2, 1) has no override.
	if got := s.LinkBandwidth(2, 1); got != 1e6 {
		t.Errorf("reverse link = %v", got)
	}
}

func TestLinkBWValidate(t *testing.T) {
	s := pipeline(t)
	s.LinkBW = map[[2]int]float64{{0, 1}: 0}
	if err := s.Validate(); err == nil {
		t.Error("zero link bandwidth must error")
	}
	s.LinkBW = map[[2]int]float64{{0, 9}: 1e5}
	if err := s.Validate(); err == nil {
		t.Error("out-of-range link pair must error")
	}
}

func TestSlowLinkChangesLatencyAndUtil(t *testing.T) {
	s := slowLinkPipeline(t)
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	// Edge 1 (apps 1→2 = machines 1→2) now takes 2000/1e5 = 0.02 s instead
	// of 0.002: latency = 0.02 + 0.001 + 0.03 + 0.02 + 0.01 = 0.081.
	lat, err := s.WorstLatency(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-0.081) > 1e-12 {
		t.Errorf("latency = %v, want 0.081", lat)
	}
	lu, err := s.LinkUtil(m)
	if err != nil {
		t.Fatal(err)
	}
	// Edge 1 util: 10·2000/1e5 = 0.2; edge 0 unchanged at 0.01.
	if !lu.EqualApprox(vec.Of(0.01, 0.2), 1e-12) {
		t.Errorf("link util = %v", lu)
	}
}

func TestSlowLinkAnalysisConsistent(t *testing.T) {
	s := slowLinkPipeline(t)
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	vals := []vec.V{e, m}
	worst, err := s.WorstLatency(e, m)
	if err != nil {
		t.Fatal(err)
	}
	// Latency feature (last) must reflect the heterogeneous bandwidth.
	if got := a.FeatureValue(len(a.Features)-1, vals); math.Abs(got-worst) > 1e-12 {
		t.Errorf("analysis latency %v vs model %v", got, worst)
	}
	// The slow link shrinks the message-length robustness.
	fast := pipeline(t)
	aFast, err := fast.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := a.RobustnessSingle(1)
	if err != nil {
		t.Fatal(err)
	}
	rFast, err := aFast.RobustnessSingle(1)
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Value >= rFast.Value {
		t.Errorf("slow link should reduce msg robustness: %v vs %v", rSlow.Value, rFast.Value)
	}
}

func TestSlowLinkSimulationMatches(t *testing.T) {
	s := slowLinkPipeline(t)
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	res, err := s.Simulate(e, m, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := s.WorstLatency(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanLatency-worst) > 1e-9 {
		t.Errorf("sim %v vs analytic %v with heterogeneous links", res.MeanLatency, worst)
	}
}

func TestFailMachineRemapsLinkBW(t *testing.T) {
	s := slowLinkPipeline(t) // override on (1, 2)
	failed, err := s.FailMachine(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Machines shift down: old (1,2) becomes (0,1); the override must move.
	if got := failed.LinkBandwidth(0, 1); got != 1e5 {
		t.Errorf("override not re-keyed: (0,1) = %v", got)
	}
	// Failing machine 2 drops the override entirely.
	failed2, err := s.FailMachine(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed2.LinkBW) != 0 {
		t.Errorf("override touching failed machine should vanish: %v", failed2.LinkBW)
	}
}

func TestLinkBWScenarioRoundTrip(t *testing.T) {
	s := slowLinkPipeline(t)
	// Round-trip through the scenario package is covered there; here check
	// the load-analysis path handles overrides too.
	a, err := s.AnalysisWithLoad()
	if err != nil {
		t.Fatal(err)
	}
	// Link feature for edge 1: λ·m/1e5 = 10·2000/1e5 = 0.2 at nominal.
	vals := []vec.V{s.OrigExecTimes(), s.OrigMsgSizes(), vec.Of(s.Rate)}
	found := false
	for i, f := range a.Features {
		if f.Name == "util(link-edge-1)" {
			found = true
			if got := a.FeatureValue(i, vals); math.Abs(got-0.2) > 1e-12 {
				t.Errorf("link feature = %v, want 0.2", got)
			}
		}
	}
	if !found {
		t.Error("link-edge-1 feature missing")
	}
}
