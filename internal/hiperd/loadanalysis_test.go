package hiperd

import (
	"math"
	"strings"
	"testing"

	"fepia/internal/core"
	"fepia/internal/vec"
)

func TestAnalysisWithLoadStructure(t *testing.T) {
	s := pipeline(t)
	a, err := s.AnalysisWithLoad()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(a.Params))
	}
	if a.Params[2].Unit != "datasets/s" || a.Params[2].Dim() != 1 {
		t.Errorf("load param wrong: %+v", a.Params[2])
	}
	if a.Params[2].Orig[0] != s.Rate {
		t.Errorf("load orig = %v, want %v", a.Params[2].Orig[0], s.Rate)
	}
	// 3 machine + 2 link + 1 path features, as in the two-kind analysis.
	if len(a.Features) != 6 {
		t.Fatalf("features = %d, want 6", len(a.Features))
	}
	if a.TotalDim() != 6 { // 3 exec + 2 msg + 1 load
		t.Errorf("total dim = %d", a.TotalDim())
	}
}

func TestAnalysisWithLoadFeatureValues(t *testing.T) {
	s := pipeline(t)
	a, err := s.AnalysisWithLoad()
	if err != nil {
		t.Fatal(err)
	}
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	vals := []vec.V{e, m, vec.Of(s.Rate)}
	mu, _ := s.MachineUtil(e)
	for j := 0; j < 3; j++ {
		if got := a.FeatureValue(j, vals); math.Abs(got-mu[j]) > 1e-12 {
			t.Errorf("util feature %d = %v, want %v", j, got, mu[j])
		}
	}
	// Doubling λ doubles every utilization feature.
	vals2 := []vec.V{e, m, vec.Of(2 * s.Rate)}
	for j := 0; j < 3; j++ {
		if got := a.FeatureValue(j, vals2); math.Abs(got-2*mu[j]) > 1e-12 {
			t.Errorf("doubled-load util %d = %v, want %v", j, got, 2*mu[j])
		}
	}
	// Latency is λ-independent.
	worst, _ := s.WorstLatency(e, m)
	if got := a.FeatureValue(5, vals2); math.Abs(got-worst) > 1e-12 {
		t.Errorf("latency must not depend on load: %v vs %v", got, worst)
	}
}

func TestAnalysisWithLoadRadiiFiniteAndTighter(t *testing.T) {
	// Adding a third perturbation kind can only bring the boundary closer
	// in the shared subspace: rho(3 kinds) <= rho(2 kinds) + tolerance.
	s := pipeline(t)
	a2, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	a3, err := s.AnalysisWithLoad()
	if err != nil {
		t.Fatal(err)
	}
	rho2, err := a2.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	rho3, err := a3.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho3.Value > 0) || math.IsInf(rho3.Value, 1) {
		t.Fatalf("rho3 = %v", rho3.Value)
	}
	if rho3.Value > rho2.Value+1e-3 {
		t.Errorf("3-kind rho %v should not exceed 2-kind rho %v", rho3.Value, rho2.Value)
	}
}

func TestAnalysisWithLoadSensorLoadRadius(t *testing.T) {
	// Single-parameter radius vs the load: machine 1 is the busiest
	// (util 0.3 at rate 10). Util hits 1 when λ·0.03 = 1 → λ = 33.3;
	// radius = 23.3 datasets/s.
	s := pipeline(t)
	a, err := s.AnalysisWithLoad()
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RobustnessSingle(2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1/0.03 - 10
	if math.Abs(r.Value-want) > 1e-3*(1+want) {
		t.Errorf("load radius = %v, want %v", r.Value, want)
	}
	if !strings.HasPrefix(a.Features[r.Feature].Name, "util(machine-1") {
		t.Errorf("critical feature = %q, want machine-1 util", a.Features[r.Feature].Name)
	}
}

func TestAnalysisWithLoadViolationConsistency(t *testing.T) {
	// The analysis' Violates must agree with direct QoS evaluation at a
	// changed load: scale the system's rate and compare.
	s := diamond(t)
	a, err := s.AnalysisWithLoad()
	if err != nil {
		t.Fatal(err)
	}
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	for _, lambda := range []float64{s.Rate, s.Rate * 2, s.Rate * 40} {
		vals := []vec.V{e, m, vec.Of(lambda)}
		// Ground truth: rebuild the system at the new rate.
		sysAt := *s
		sysAt.Rate = lambda
		ok, err := sysAt.QoSOK(e, m)
		if err != nil {
			t.Fatal(err)
		}
		if ok == a.Violates(vals) {
			t.Errorf("lambda=%v: QoSOK=%v but Violates=%v", lambda, ok, a.Violates(vals))
		}
	}
}

func TestAnalysisWithLoadBoundaryPointFeasible(t *testing.T) {
	// The numeric combined radius must return a point on a real boundary.
	s := pipeline(t)
	a, err := s.AnalysisWithLoad()
	if err != nil {
		t.Fatal(err)
	}
	// Feature 0 is the bilinear util of machine 0.
	r, err := a.CombinedRadius(0, core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := core.FromP(a, core.Normalized{}, 0, r.Point)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.FeatureValue(0, vals); math.Abs(got-1) > 1e-5 {
		t.Errorf("boundary point maps to util %v, want 1", got)
	}
	if r.Analytic {
		t.Error("bilinear feature must use the numeric tier")
	}
}
