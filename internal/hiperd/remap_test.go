package hiperd

import (
	"fmt"
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/dag"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// randomShared builds a random layered system on shared machines without
// depending on internal/workload (which imports this package).
func randomShared(t *testing.T, seed int64) *System {
	t.Helper()
	src := stats.NewSource(seed)
	const nApps, nMachines = 8, 5
	g, err := dag.New(nApps)
	if err != nil {
		t.Fatal(err)
	}
	// Chain 0→1→…→7 plus a few random forward skips.
	for i := 0; i+1 < nApps; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+2 < nApps; i++ {
		if src.Float64() < 0.3 {
			if err := g.AddEdge(i, i+2); err != nil {
				t.Fatal(err)
			}
		}
	}
	apps := make([]App, nApps)
	for i := range apps {
		apps[i] = App{Name: fmt.Sprintf("a%d", i), BaseExec: src.Uniform(0.01, 0.04)}
	}
	machines := make([]Machine, nMachines)
	alloc := make([]int, nApps)
	for j := range machines {
		machines[j] = Machine{Name: fmt.Sprintf("m%d", j), Speed: 1}
	}
	for i := range alloc {
		alloc[i] = i % nMachines
	}
	msgs := make(vec.V, len(g.Edges()))
	for k := range msgs {
		msgs[k] = src.Uniform(500, 4000)
	}
	s := &System{
		Apps: apps, Graph: g, MsgSizes: msgs, Machines: machines,
		Bandwidth: 1e6, Alloc: alloc, Rate: 2, LatencyMax: 1,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	nominal, err := s.WorstLatency(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	s.LatencyMax = 2 * nominal
	return s
}

func TestFailMachineCompactsIndices(t *testing.T) {
	s := pipeline(t) // apps 0,1,2 on machines 0,1,2
	failed, err := s.FailMachine(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed.Machines) != 2 {
		t.Fatalf("machines = %d", len(failed.Machines))
	}
	// App 0 stays on 0; app 2 was on machine 2 → index shifts to 1; app 1
	// (orphan) went somewhere valid.
	if failed.Alloc[0] != 0 {
		t.Errorf("app 0 moved: %v", failed.Alloc)
	}
	if failed.Alloc[2] != 1 {
		t.Errorf("app 2 index not compacted: %v", failed.Alloc)
	}
	if failed.Alloc[1] < 0 || failed.Alloc[1] > 1 {
		t.Errorf("orphan not placed: %v", failed.Alloc)
	}
	// The original system is untouched.
	if len(s.Machines) != 3 || s.Alloc[1] != 1 {
		t.Error("FailMachine mutated its receiver")
	}
}

func TestFailMachineStillMeetsQoSWhenFeasible(t *testing.T) {
	s := pipeline(t)
	failed, err := s.FailMachine(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := failed.QoSOK(failed.OrigExecTimes(), failed.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("pipeline has ample headroom; the remapped system must meet QoS")
	}
}

func TestFailMachineErrors(t *testing.T) {
	s := pipeline(t)
	if _, err := s.FailMachine(-1, nil); err == nil {
		t.Error("negative index must error")
	}
	if _, err := s.FailMachine(5, nil); err == nil {
		t.Error("out-of-range index must error")
	}
	// Single-machine system: failure unrecoverable.
	solo := pipeline(t)
	solo.Alloc = []int{0, 0, 0}
	solo.Machines = solo.Machines[:1]
	if _, err := solo.FailMachine(0, nil); err == nil {
		t.Error("last machine failure must error")
	}
}

func TestGreedyUtilRemapOverloadDetected(t *testing.T) {
	// Rate high enough that the survivors cannot absorb the orphan.
	s := pipeline(t)
	s.Rate = 25 // utils: 0.5, 0.75, 0.25 — fine dedicated, tight combined
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Failing machine 2 forces 0.25 onto a survivor: 0.5+0.25 = 0.75 ok,
	// but failing machine 0 pushes 0.5 onto 0.75 → 1.25 or onto 0.25 → 0.75.
	// Greedy picks the lighter machine, so still feasible. Raise the rate:
	s.Rate = 30 // utils 0.6, 0.9, 0.3; orphan 0.6 → lighter gets 0.9: ok.
	s.Rate = 33 // utils 0.66, 0.99, 0.33; orphan 0.66 + 0.33 = 0.99: ok.
	s.LatencyMax = 10
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	failed, err := s.FailMachine(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu, err := failed.MachineUtil(failed.OrigExecTimes())
	if err != nil {
		t.Fatal(err)
	}
	if mu.Max() > 1 {
		t.Errorf("greedy remap overloaded a machine: %v", mu)
	}
	// Now make recovery impossible: both survivors near capacity.
	s2 := pipeline(t)
	s2.Rate = 24 // utils 0.48, 0.72, 0.24; fail machine 1 (0.72 orphan):
	// lighter survivor 0.24+0.72=0.96 ok. Go higher.
	s2.Rate = 30 // fail 1: orphan 0.9; 0.3+0.9 = 1.2 > 1 and 0.6+0.9 = 1.5.
	s2.LatencyMax = 10
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.FailMachine(1, nil); err == nil {
		t.Error("infeasible recovery must report ErrNoCapacity")
	}
}

func TestRobustRemapAtLeastAsRobust(t *testing.T) {
	// On random systems with shared machines, the robustness-aware remap
	// must end at least as robust as the greedy one.
	for seed := int64(0); seed < 5; seed++ {
		sys := randomShared(t, 100+seed)
		rhoOf := func(s *System) float64 {
			a, err := s.Analysis()
			if err != nil {
				t.Fatal(err)
			}
			rho, err := a.Robustness(core.Normalized{})
			if err != nil {
				t.Fatal(err)
			}
			return rho.Value
		}
		greedy, errG := sys.FailMachine(0, GreedyUtilRemap)
		robust, errR := sys.FailMachine(0, RobustRemap)
		if errG != nil || errR != nil {
			// Some draws are genuinely unrecoverable; both must agree.
			if (errG == nil) != (errR == nil) {
				t.Fatalf("seed %d: greedy err=%v robust err=%v", seed, errG, errR)
			}
			continue
		}
		rg, rr := rhoOf(greedy), rhoOf(robust)
		if rr < rg-1e-9 {
			t.Errorf("seed %d: robust remap rho %v below greedy %v", seed, rr, rg)
		}
	}
}

func TestFailMachineRobustnessDegrades(t *testing.T) {
	// Losing a machine cannot improve the combined robustness of the
	// dedicated pipeline (co-location only adds load and removes slack).
	s := pipeline(t)
	a0, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho0, err := a0.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	failed, err := s.FailMachine(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := failed.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho1, err := a1.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if rho1.Value > rho0.Value+1e-9 {
		t.Errorf("failure increased robustness: %v -> %v", rho0.Value, rho1.Value)
	}
	if math.IsInf(rho1.Value, 1) || rho1.Value <= 0 {
		t.Errorf("post-failure rho = %v", rho1.Value)
	}
}
