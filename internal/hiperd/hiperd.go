// Package hiperd models the HiPer-D-like distributed streaming system that
// motivates the paper: sensors emit a steady stream of data sets into a DAG
// of continuously-running applications mapped onto dedicated machines and
// interconnected by high-speed links, ending in actuators. The system must
// satisfy throughput constraints (every machine and link keeps up with the
// sensor rate) and latency constraints (every sensor→actuator path completes
// within a deadline).
//
// The perturbation parameters are of two different kinds — exactly the
// paper's Section 3 scenario: the vector of actual application execution
// times (seconds) and the vector of actual message lengths (bytes). Both
// throughput and latency features are linear in these, so the package can
// hand the core engine an analysis with exact closed forms while remaining a
// genuinely mixed-unit, multi-feature system. A discrete-event simulator
// (sim.go) validates the analytic feature functions against a running
// system.
//
// Substitution note (DESIGN.md): the original HiPer-D testbed is proprietary
// naval hardware; this synthetic model preserves the structure the FePIA
// analysis exercises — per-machine utilization, per-link utilization, and
// per-path latency as functions of execution times and message lengths.
package hiperd

import (
	"errors"
	"fmt"

	"fepia/internal/dag"
	"fepia/internal/vec"
)

// Machine is a processing resource. Speed scales application base execution
// times: actual time = BaseExec / Speed.
type Machine struct {
	Name  string
	Speed float64
}

// App is a continuously-running application processing one data set per
// sensor period. BaseExec is its execution time on a speed-1 machine.
type App struct {
	Name     string
	BaseExec float64
}

// System is a complete HiPer-D scenario: application DAG, machines, message
// sizes, an allocation, and the QoS requirements.
type System struct {
	// Apps, indexed as the nodes of Graph.
	Apps []App
	// Graph is the precedence DAG over applications. Sources are sensor-fed
	// applications; sinks feed actuators.
	Graph *dag.Graph
	// MsgSizes holds the nominal message length in bytes of each edge, in
	// the order of Graph.Edges().
	MsgSizes vec.V
	// Machines available to the allocation.
	Machines []Machine
	// Bandwidth of every inter-machine link, bytes per second. Messages
	// between co-located applications cost nothing.
	Bandwidth float64
	// LinkBW optionally overrides the bandwidth of specific ordered
	// machine pairs (from, to); pairs absent from the map use Bandwidth.
	// Heterogeneous interconnects (a slow WAN hop between two clusters,
	// a fast bus between co-racked machines) are modeled this way.
	LinkBW map[[2]int]float64
	// Alloc maps each application to a machine — the resource allocation μ.
	Alloc []int
	// Rate is the sensor data-set rate λ (data sets per second). Every
	// source emits one data set per period 1/λ.
	Rate float64
	// LatencyMax is the end-to-end deadline for every sensor→actuator path.
	LatencyMax float64
}

// Validation errors.
var (
	ErrBadSystem = errors.New("hiperd: invalid system")
)

// Validate checks structural and physical consistency.
func (s *System) Validate() error {
	if s.Graph == nil {
		return fmt.Errorf("%w: nil graph", ErrBadSystem)
	}
	if len(s.Apps) != s.Graph.N() {
		return fmt.Errorf("%w: %d apps for %d graph nodes", ErrBadSystem, len(s.Apps), s.Graph.N())
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("%w: no applications", ErrBadSystem)
	}
	if !s.Graph.IsAcyclic() {
		return fmt.Errorf("%w: application graph has a cycle", ErrBadSystem)
	}
	if got, want := len(s.MsgSizes), len(s.Graph.Edges()); got != want {
		return fmt.Errorf("%w: %d message sizes for %d edges", ErrBadSystem, got, want)
	}
	for k, m := range s.MsgSizes {
		if m <= 0 {
			return fmt.Errorf("%w: message size %d is %g, want > 0", ErrBadSystem, k, m)
		}
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("%w: no machines", ErrBadSystem)
	}
	for i, m := range s.Machines {
		if m.Speed <= 0 {
			return fmt.Errorf("%w: machine %d speed %g, want > 0", ErrBadSystem, i, m.Speed)
		}
	}
	if len(s.Alloc) != len(s.Apps) {
		return fmt.Errorf("%w: %d assignments for %d apps", ErrBadSystem, len(s.Alloc), len(s.Apps))
	}
	for a, m := range s.Alloc {
		if m < 0 || m >= len(s.Machines) {
			return fmt.Errorf("%w: app %d on machine %d of %d", ErrBadSystem, a, m, len(s.Machines))
		}
	}
	for a, app := range s.Apps {
		if app.BaseExec <= 0 {
			return fmt.Errorf("%w: app %d base exec %g, want > 0", ErrBadSystem, a, app.BaseExec)
		}
	}
	if s.Bandwidth <= 0 {
		return fmt.Errorf("%w: bandwidth %g, want > 0", ErrBadSystem, s.Bandwidth)
	}
	for pair, bw := range s.LinkBW {
		if bw <= 0 {
			return fmt.Errorf("%w: link bandwidth %v = %g, want > 0", ErrBadSystem, pair, bw)
		}
		for _, m := range pair {
			if m < 0 || m >= len(s.Machines) {
				return fmt.Errorf("%w: link bandwidth pair %v out of machine range", ErrBadSystem, pair)
			}
		}
	}
	if s.Rate <= 0 {
		return fmt.Errorf("%w: rate %g, want > 0", ErrBadSystem, s.Rate)
	}
	if s.LatencyMax <= 0 {
		return fmt.Errorf("%w: latency bound %g, want > 0", ErrBadSystem, s.LatencyMax)
	}
	return nil
}

// OrigExecTimes returns e^orig: each app's nominal execution time on its
// assigned machine (BaseExec / Speed). This is π_1^orig, in seconds.
func (s *System) OrigExecTimes() vec.V {
	e := make(vec.V, len(s.Apps))
	for a, app := range s.Apps {
		e[a] = app.BaseExec / s.Machines[s.Alloc[a]].Speed
	}
	return e
}

// OrigMsgSizes returns m^orig — π_2^orig, in bytes (a copy).
func (s *System) OrigMsgSizes() vec.V { return s.MsgSizes.Clone() }

// CrossEdges reports, per edge index, whether the edge crosses machines
// under the current allocation (only those incur communication time).
func (s *System) CrossEdges() []bool {
	edges := s.Graph.Edges()
	out := make([]bool, len(edges))
	for k, e := range edges {
		out[k] = s.Alloc[e[0]] != s.Alloc[e[1]]
	}
	return out
}

// LinkBandwidth returns the bandwidth of the ordered machine pair
// (from, to): the LinkBW override when present, Bandwidth otherwise.
func (s *System) LinkBandwidth(from, to int) float64 {
	if bw, ok := s.LinkBW[[2]int{from, to}]; ok {
		return bw
	}
	return s.Bandwidth
}

// edgeBW returns the bandwidth carrying edge k under the current
// allocation.
func (s *System) edgeBW(k int) float64 {
	e := s.Graph.Edges()[k]
	return s.LinkBandwidth(s.Alloc[e[0]], s.Alloc[e[1]])
}

// MachineUtil computes each machine's utilization λ·Σ_{a on j} e_a for the
// given actual execution times. Utilization above 1 means the machine
// cannot sustain the sensor rate — a throughput violation.
func (s *System) MachineUtil(e vec.V) (vec.V, error) {
	if len(e) != len(s.Apps) {
		return nil, fmt.Errorf("%w: %d exec times for %d apps", ErrBadSystem, len(e), len(s.Apps))
	}
	u := make(vec.V, len(s.Machines))
	for a, j := range s.Alloc {
		u[j] += s.Rate * e[a]
	}
	return u, nil
}

// LinkUtil computes each cross-machine edge's utilization λ·m_k/BW for the
// given actual message sizes (co-located edges report 0).
func (s *System) LinkUtil(m vec.V) (vec.V, error) {
	if len(m) != len(s.MsgSizes) {
		return nil, fmt.Errorf("%w: %d message sizes for %d edges", ErrBadSystem, len(m), len(s.MsgSizes))
	}
	cross := s.CrossEdges()
	u := make(vec.V, len(m))
	for k := range m {
		if cross[k] {
			u[k] = s.Rate * m[k] / s.edgeBW(k)
		}
	}
	return u, nil
}

// Paths enumerates all source→sink application paths (the latency-relevant
// routes). The result is deterministic.
func (s *System) Paths() ([][]int, error) {
	var out [][]int
	for _, src := range s.Graph.Sources() {
		for _, snk := range s.Graph.Sinks() {
			ps, err := s.Graph.AllPaths(src, snk, 0)
			if err != nil {
				return nil, err
			}
			out = append(out, ps...)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no source→sink paths", ErrBadSystem)
	}
	return out, nil
}

// edgeIndex builds a lookup from (u, v) to edge position in Graph.Edges().
func (s *System) edgeIndex() map[[2]int]int {
	idx := make(map[[2]int]int)
	for k, e := range s.Graph.Edges() {
		idx[e] = k
	}
	return idx
}

// PathLatency computes the end-to-end latency of one path for actual
// execution times e and message sizes m: the sum of execution times of the
// path's applications plus transfer times m_k/BW of its cross-machine
// edges. This is the analytic (contention-free) latency; the DES simulator
// measures the same quantity on a running system.
func (s *System) PathLatency(path []int, e, m vec.V) (float64, error) {
	if len(e) != len(s.Apps) || len(m) != len(s.MsgSizes) {
		return 0, fmt.Errorf("%w: PathLatency dims e=%d m=%d", ErrBadSystem, len(e), len(m))
	}
	idx := s.edgeIndex()
	cross := s.CrossEdges()
	var lat float64
	for i, a := range path {
		lat += e[a]
		if i+1 < len(path) {
			k, ok := idx[[2]int{a, path[i+1]}]
			if !ok {
				return 0, fmt.Errorf("%w: path uses missing edge (%d,%d)", ErrBadSystem, a, path[i+1])
			}
			if cross[k] {
				lat += m[k] / s.edgeBW(k)
			}
		}
	}
	return lat, nil
}

// WorstLatency returns the maximum PathLatency over all source→sink paths.
func (s *System) WorstLatency(e, m vec.V) (float64, error) {
	paths, err := s.Paths()
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, p := range paths {
		l, err := s.PathLatency(p, e, m)
		if err != nil {
			return 0, err
		}
		if l > worst {
			worst = l
		}
	}
	return worst, nil
}

// QoSOK reports whether the system meets every constraint at the given
// actual values: all machine utilizations ≤ 1, all link utilizations ≤ 1,
// and every path latency ≤ LatencyMax.
func (s *System) QoSOK(e, m vec.V) (bool, error) {
	mu, err := s.MachineUtil(e)
	if err != nil {
		return false, err
	}
	for _, u := range mu {
		if u > 1 {
			return false, nil
		}
	}
	lu, err := s.LinkUtil(m)
	if err != nil {
		return false, err
	}
	for _, u := range lu {
		if u > 1 {
			return false, nil
		}
	}
	worst, err := s.WorstLatency(e, m)
	if err != nil {
		return false, err
	}
	return worst <= s.LatencyMax, nil
}
