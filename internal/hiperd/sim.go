package hiperd

import (
	"fmt"
	"math"

	"fepia/internal/des"
	"fepia/internal/vec"
)

// SimResult summarizes a discrete-event run of the system.
type SimResult struct {
	// DataSets is the number of data sets fully processed (reached every
	// sink).
	DataSets int
	// MeanLatency and MaxLatency are end-to-end data-set latencies
	// (emission at the sensors to completion of the last sink application),
	// measured over completed data sets after the warm-up prefix.
	MeanLatency, MaxLatency float64
	// MachineUtil is each machine's busy fraction over the simulated span.
	MachineUtil vec.V
	// Events is the number of simulator events processed.
	Events uint64
}

// Simulate runs the system under actual execution times e and message sizes
// m for the given number of data sets, and measures what the analytic model
// predicts: latency and utilization. warmup data sets are excluded from the
// latency statistics (they are still simulated).
//
// The simulation realizes the full mechanics: every machine is a FIFO
// station shared by its applications, every ordered machine pair is a FIFO
// link station, applications join on all predecessor inputs per data set,
// and sensors emit one data set every 1/λ. With all utilizations below 1 the
// pipeline reaches steady state and the measured latency matches the
// analytic Σe + Σm/BW along the critical path when applications do not
// contend for a shared machine (the validation scenarios of experiment E6
// allocate one application per machine; contention otherwise adds queueing
// delay on top of the analytic value).
func (s *System) Simulate(e, m vec.V, dataSets, warmup int) (SimResult, error) {
	if err := s.Validate(); err != nil {
		return SimResult{}, err
	}
	if len(e) != len(s.Apps) || len(m) != len(s.MsgSizes) {
		return SimResult{}, fmt.Errorf("%w: Simulate dims e=%d m=%d", ErrBadSystem, len(e), len(m))
	}
	for a, t := range e {
		if t < 0 || math.IsNaN(t) {
			return SimResult{}, fmt.Errorf("%w: exec time %d = %g", ErrBadSystem, a, t)
		}
	}
	for k, sz := range m {
		if sz < 0 || math.IsNaN(sz) {
			return SimResult{}, fmt.Errorf("%w: message size %d = %g", ErrBadSystem, k, sz)
		}
	}
	if dataSets <= 0 {
		return SimResult{}, fmt.Errorf("%w: dataSets = %d, want > 0", ErrBadSystem, dataSets)
	}
	if warmup < 0 || warmup >= dataSets {
		warmup = 0
	}

	sim := des.NewSimulator()
	machines := make([]*des.Station, len(s.Machines))
	for j := range machines {
		machines[j] = des.NewStation(sim, fmt.Sprintf("machine-%d", j))
	}
	links := make(map[[2]int]*des.Station)
	edges := s.Graph.Edges()
	cross := s.CrossEdges()
	for k, ed := range edges {
		if !cross[k] {
			continue
		}
		pair := [2]int{s.Alloc[ed[0]], s.Alloc[ed[1]]}
		if links[pair] == nil {
			links[pair] = des.NewStation(sim, fmt.Sprintf("link-%d-%d", pair[0], pair[1]))
		}
	}

	period := 1 / s.Rate
	sources := s.Graph.Sources()
	sinks := s.Graph.Sinks()
	sinkSet := make(map[int]bool, len(sinks))
	for _, sk := range sinks {
		sinkSet[sk] = true
	}

	// Per-dataset join state.
	type dsState struct {
		arrived   map[int]int // app -> predecessor inputs received
		sinksLeft int
		emitted   float64
	}
	states := make([]*dsState, dataSets)
	var completedLat []float64
	completedCount := 0

	var ready func(app, d int)
	appDone := func(app, d int) {
		st := states[d]
		if sinkSet[app] {
			st.sinksLeft--
			if st.sinksLeft == 0 {
				completedCount++
				if d >= warmup {
					completedLat = append(completedLat, sim.Now()-st.emitted)
				}
			}
		}
		for _, succ := range s.Graph.Succ(app) {
			k := edgeOf(edges, app, succ)
			deliver := func(*des.Simulator) {
				st.arrived[succ]++
				if st.arrived[succ] == len(s.Graph.Pred(succ)) {
					ready(succ, d)
				}
			}
			if cross[k] {
				pair := [2]int{s.Alloc[app], s.Alloc[succ]}
				if err := links[pair].Submit(m[k]/s.LinkBandwidth(pair[0], pair[1]), deliver); err != nil {
					panic(err) // sizes validated above
				}
			} else {
				deliver(sim)
			}
		}
	}
	ready = func(app, d int) {
		if err := machines[s.Alloc[app]].Submit(e[app], func(*des.Simulator) {
			appDone(app, d)
		}); err != nil {
			panic(err) // times validated above
		}
	}

	// Emit data sets.
	for d := 0; d < dataSets; d++ {
		d := d
		at := float64(d) * period
		if err := sim.Schedule(at, func(*des.Simulator) {
			states[d] = &dsState{
				arrived:   make(map[int]int),
				sinksLeft: len(sinks),
				emitted:   at,
			}
			for _, src := range sources {
				ready(src, d)
			}
		}); err != nil {
			return SimResult{}, err
		}
	}

	events := sim.RunAll()

	res := SimResult{
		DataSets:    completedCount,
		Events:      events,
		MachineUtil: make(vec.V, len(s.Machines)),
	}
	if len(completedLat) > 0 {
		var sum, max float64
		for _, l := range completedLat {
			sum += l
			if l > max {
				max = l
			}
		}
		res.MeanLatency = sum / float64(len(completedLat))
		res.MaxLatency = max
	}
	for j, st := range machines {
		res.MachineUtil[j] = st.Utilization()
	}
	return res, nil
}

func edgeOf(edges [][2]int, u, v int) int {
	for k, e := range edges {
		if e[0] == u && e[1] == v {
			return k
		}
	}
	return -1
}
