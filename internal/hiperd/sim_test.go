package hiperd

import (
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

func normalizedW() core.Weighting { return core.Normalized{} }

func TestSimulateMatchesAnalyticPipeline(t *testing.T) {
	s := pipeline(t)
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	res, err := s.Simulate(e, m, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSets != 200 {
		t.Fatalf("completed %d data sets, want 200", res.DataSets)
	}
	analytic, err := s.WorstLatency(e, m)
	if err != nil {
		t.Fatal(err)
	}
	// One app per machine, all utilizations < 1: no contention, so the
	// simulated latency equals the analytic sum exactly.
	if math.Abs(res.MeanLatency-analytic) > 1e-9 {
		t.Errorf("sim latency %v vs analytic %v", res.MeanLatency, analytic)
	}
	if math.Abs(res.MaxLatency-analytic) > 1e-9 {
		t.Errorf("max latency %v vs analytic %v", res.MaxLatency, analytic)
	}
	// Utilization approaches λ·e per machine over a long run.
	mu, _ := s.MachineUtil(e)
	for j := range mu {
		if math.Abs(res.MachineUtil[j]-mu[j]) > 0.02 {
			t.Errorf("machine %d util sim %v vs analytic %v", j, res.MachineUtil[j], mu[j])
		}
	}
}

func TestSimulatePerturbedStillMatches(t *testing.T) {
	s := pipeline(t)
	// Perturb execution times and message sizes (still feasible).
	e := vec.Of(0.03, 0.04, 0.02)
	m := vec.Of(3000, 5000)
	res, err := s.Simulate(e, m, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := s.WorstLatency(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanLatency-analytic) > 1e-9 {
		t.Errorf("perturbed sim latency %v vs analytic %v", res.MeanLatency, analytic)
	}
}

func TestSimulateDiamondJoin(t *testing.T) {
	s := diamond(t)
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	res, err := s.Simulate(e, m, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSets != 100 {
		t.Fatalf("completed %d, want 100", res.DataSets)
	}
	// With co-location the machine serializes its two apps, so simulated
	// latency is at least the analytic contention-free bound.
	analytic, err := s.WorstLatency(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency < analytic-1e-9 {
		t.Errorf("sim latency %v below analytic lower bound %v", res.MeanLatency, analytic)
	}
}

func TestSimulateOverloadQueuesGrow(t *testing.T) {
	s := pipeline(t)
	// Exec 0.15 s at period 0.1 s: machine 0 over capacity → latency grows
	// with the data-set index; the mean must exceed the analytic value.
	e := vec.Of(0.15, 0.03, 0.01)
	m := s.OrigMsgSizes()
	res, err := s.Simulate(e, m, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := s.WorstLatency(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency <= analytic {
		t.Errorf("overload: sim %v should exceed analytic %v", res.MeanLatency, analytic)
	}
	if res.MaxLatency <= res.MeanLatency {
		t.Errorf("overload: max %v should exceed mean %v (growing queue)", res.MaxLatency, res.MeanLatency)
	}
}

func TestSimulateArgErrors(t *testing.T) {
	s := pipeline(t)
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	if _, err := s.Simulate(vec.Of(1), m, 10, 0); err == nil {
		t.Error("bad e dims must error")
	}
	if _, err := s.Simulate(e, vec.Of(1), 10, 0); err == nil {
		t.Error("bad m dims must error")
	}
	if _, err := s.Simulate(vec.Of(-1, 0.03, 0.01), m, 10, 0); err == nil {
		t.Error("negative exec must error")
	}
	if _, err := s.Simulate(e, vec.Of(math.NaN(), 2000), 10, 0); err == nil {
		t.Error("NaN msg must error")
	}
	if _, err := s.Simulate(e, m, 0, 0); err == nil {
		t.Error("zero data sets must error")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	s := diamond(t)
	e := s.OrigExecTimes()
	m := s.OrigMsgSizes()
	r1, err := s.Simulate(e, m, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Simulate(e, m, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanLatency != r2.MeanLatency || r1.Events != r2.Events {
		t.Error("simulation must be deterministic")
	}
}

func TestSimulationValidatesRobustnessRadius(t *testing.T) {
	// The E6 cross-check in miniature: perturb (e, m) to a point strictly
	// inside the normalized robustness radius and simulate — QoS must hold
	// (simulated latency within bound, machines under capacity). Then step
	// well outside along the critical direction and observe a violation.
	s := pipeline(t)
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) {
		t.Fatalf("rho = %v", rho.Value)
	}
	src := stats.NewSource(42)
	e0 := s.OrigExecTimes()
	m0 := s.OrigMsgSizes()
	pOrig := vec.Ones(5)
	for trial := 0; trial < 50; trial++ {
		// Random direction in P-space, scaled strictly inside the radius.
		d := make(vec.V, 5)
		for i := range d {
			d[i] = src.Normal(0, 1)
		}
		d = d.Normalize().Scale(rho.Value * 0.98 * src.Float64())
		p := pOrig.Add(d)
		// Back to native: elementwise multiply by originals; clamp at tiny
		// positive to keep the simulator happy (radius < 1 normally
		// prevents negatives anyway).
		e := e0.Mul(p[:3])
		m := m0.Mul(p[3:])
		feasible := true
		for _, x := range append(e.Clone(), m...) {
			if x <= 0 {
				feasible = false
			}
		}
		if !feasible {
			continue
		}
		ok, err := s.QoSOK(e, m)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: point inside rho=%v violates QoS analytically", trial, rho.Value)
		}
		res, err := s.Simulate(e, m, 60, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanLatency > s.LatencyMax+1e-9 {
			t.Fatalf("trial %d: simulated latency %v exceeds bound inside radius", trial, res.MeanLatency)
		}
	}
	// The critical boundary point, pushed 5% beyond, must violate.
	crit := rho.PerFeature[rho.Critical]
	pBeyond := pOrig.Add(crit.Point.Sub(pOrig).Scale(1.05))
	e := e0.Mul(pBeyond[:3])
	m := m0.Mul(pBeyond[3:])
	ok, err := s.QoSOK(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("point beyond the critical boundary should violate QoS")
	}
}
