package scenario

import (
	"bytes"
	"strings"
	"testing"

	"fepia/internal/etc"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

func TestHiPerDRoundTrip(t *testing.T) {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveHiPerD(&buf, sys); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHiPerD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Apps) != len(sys.Apps) || len(back.Machines) != len(sys.Machines) {
		t.Fatalf("shape changed: %d/%d apps, %d/%d machines",
			len(back.Apps), len(sys.Apps), len(back.Machines), len(sys.Machines))
	}
	if !back.MsgSizes.EqualApprox(sys.MsgSizes, 0) {
		t.Error("message sizes changed")
	}
	if !back.OrigExecTimes().EqualApprox(sys.OrigExecTimes(), 0) {
		t.Error("exec times changed")
	}
	if back.Rate != sys.Rate || back.LatencyMax != sys.LatencyMax || back.Bandwidth != sys.Bandwidth {
		t.Error("scalars changed")
	}
	// The analyses must agree exactly.
	a1, err := sys.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Features) != len(a2.Features) || a1.TotalDim() != a2.TotalDim() {
		t.Error("round-tripped analysis differs")
	}
}

func TestLoadHiPerDRejectsBadDocs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", "{"},
		{"bad version", `{"version": 9, "kind": "hiperd"}`},
		{"bad kind", `{"version": 1, "kind": "makespan"}`},
		{"invalid system", `{"version": 1, "kind": "hiperd", "apps": [], "edges": [], "machines": []}`},
		{"bad edge", `{"version": 1, "kind": "hiperd",
			"apps": [{"name":"a","baseExec":0.1}],
			"edges": [[0, 5]],
			"machines": [{"name":"m","speed":1}],
			"msgSizes": [100], "bandwidth": 1e6, "alloc": [0], "rate": 1, "latencyMax": 1}`},
	}
	for _, c := range cases {
		if _, err := LoadHiPerD(strings.NewReader(c.doc)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSaveHiPerDRejectsInvalid(t *testing.T) {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	sys.Rate = -1
	var buf bytes.Buffer
	if err := SaveHiPerD(&buf, sys); err == nil {
		t.Error("invalid system must not serialize")
	}
}

func TestMakespanRoundTrip(t *testing.T) {
	m, err := etc.CVB(etc.CVBParams{Tasks: 10, Machines: 3, MeanTask: 5, TaskCV: 0.3, MachineCV: 0.3},
		stats.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	alloc := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	var buf bytes.Buffer
	if err := SaveMakespan(&buf, m, alloc); err != nil {
		t.Fatal(err)
	}
	m2, alloc2, err := LoadMakespan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Tasks != 10 || m2.Machines != 3 {
		t.Fatalf("shape %dx%d", m2.Tasks, m2.Machines)
	}
	for t2 := range m.Data {
		for j := range m.Data[t2] {
			if m.Data[t2][j] != m2.Data[t2][j] {
				t.Fatal("ETC values changed")
			}
		}
	}
	for i := range alloc {
		if alloc[i] != alloc2[i] {
			t.Fatal("alloc changed")
		}
	}
}

func TestMakespanNilAlloc(t *testing.T) {
	m := &etc.Matrix{Tasks: 2, Machines: 2, Data: [][]float64{{1, 2}, {3, 4}}}
	var buf bytes.Buffer
	if err := SaveMakespan(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	_, alloc, err := LoadMakespan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if alloc != nil {
		t.Errorf("expected nil alloc, got %v", alloc)
	}
}

func TestMakespanErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveMakespan(&buf, &etc.Matrix{}, nil); err == nil {
		t.Error("empty matrix must not save")
	}
	m := &etc.Matrix{Tasks: 2, Machines: 2, Data: [][]float64{{1, 2}, {3, 4}}}
	if err := SaveMakespan(&buf, m, []int{0}); err == nil {
		t.Error("short alloc must not save")
	}
	bad := []string{
		`{"version": 2, "kind": "makespan", "etc": [[1]]}`,
		`{"version": 1, "kind": "hiperd", "etc": [[1]]}`,
		`{"version": 1, "kind": "makespan", "etc": []}`,
		`{"version": 1, "kind": "makespan", "etc": [[1, 2], [3]]}`,
		`{"version": 1, "kind": "makespan", "etc": [[1, 2]], "alloc": [5]}`,
		`{"version": 1, "kind": "makespan", "etc": [[1, 2]], "alloc": [0, 1]}`,
	}
	for i, doc := range bad {
		if _, _, err := LoadMakespan(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestHiPerDLinkBWRoundTrip(t *testing.T) {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	sys.LinkBW = map[[2]int]float64{{0, 1}: 12345, {2, 3}: 67890}
	var buf bytes.Buffer
	if err := SaveHiPerD(&buf, sys); err != nil {
		t.Fatal(err)
	}
	back, err := LoadHiPerD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.LinkBandwidth(0, 1) != 12345 || back.LinkBandwidth(2, 3) != 67890 {
		t.Errorf("link overrides lost: %v", back.LinkBW)
	}
	if back.LinkBandwidth(1, 0) != sys.Bandwidth {
		t.Error("non-overridden pair must fall back to default")
	}
}
