package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// storeDoc returns a second distinct document so multi-entry walks have more
// than one fingerprint to order.
func storeDoc2() AnalysisDoc {
	d := testDoc()
	d.Params[0].Orig = []float64{0.5, 1}
	return d
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := st.Put(testDoc())
	if err != nil {
		t.Fatal(err)
	}
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	got, err := st.Get(fp)
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := got.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Fatalf("round-trip fingerprint %s, want %s", gotFP, fp)
	}
	if _, err := got.Build(); err != nil {
		t.Fatalf("round-tripped doc does not build: %v", err)
	}
	if s := st.Stats(); s.Puts != 1 || s.Loaded != 1 || s.CorruptSkipped != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestStorePutIsIdempotentPerFingerprint(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := st.Put(testDoc())
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := st.Put(testDoc())
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("same doc, different fingerprints: %s vs %s", fp1, fp2)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d files, want 1", st.Len())
	}
}

func TestStoreLoadWalksInNameOrder(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(testDoc()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(storeDoc2()); err != nil {
		t.Fatal(err)
	}
	var order []string
	rep, err := st.Load(func(fp string, _ AnalysisDoc) bool {
		order = append(order, fp)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 2 || rep.Skipped != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if len(order) != 2 || order[0] >= order[1] {
		t.Fatalf("walk order not sorted: %v", order)
	}

	// Early stop: the callback's false return ends the walk after one doc.
	n := 0
	rep, err = st.Load(func(string, AnalysisDoc) bool { n++; return false })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || rep.Loaded != 1 {
		t.Fatalf("early stop delivered %d docs (report %+v)", n, rep)
	}
}

// corruptStoreFile mutates one stored file in place, returning its path.
func corruptStoreFile(t *testing.T, st *Store, fp string, mutate func([]byte) []byte) string {
	t.Helper()
	path := filepath.Join(st.Dir(), fp+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStoreLoadSurvivesCorruption is the chaos matrix from the issue: a
// truncated write, garbage bytes, a bit-flipped payload, a file renamed to
// the wrong fingerprint, and an empty file must all be skipped, counted, and
// quarantined — never crash the load, never surface a poisoned document.
func TestStoreLoadSurvivesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"garbage", func(b []byte) []byte { return []byte("not json at all \x00\xff") }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bit flip in payload", func(b []byte) []byte {
			// Flip one digit inside the doc's numbers: still valid JSON, so
			// only the checksum can catch it.
			s := strings.Replace(string(b), `"orig":[1,2]`, `"orig":[1,3]`, 1)
			if s == string(b) {
				panic("payload pattern not found")
			}
			return []byte(s)
		}},
		{"checksum mismatch", func(b []byte) []byte {
			var env map[string]json.RawMessage
			if err := json.Unmarshal(b, &env); err != nil {
				panic(err)
			}
			env["checksum"] = json.RawMessage(`"deadbeef"`)
			out, err := json.Marshal(env)
			if err != nil {
				panic(err)
			}
			return out
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			fp, err := st.Put(testDoc())
			if err != nil {
				t.Fatal(err)
			}
			// A second, intact document proves the walk continues past the
			// corrupt file.
			if _, err := st.Put(storeDoc2()); err != nil {
				t.Fatal(err)
			}
			path := corruptStoreFile(t, st, fp, c.mutate)

			rep, err := st.Load(func(gotFP string, doc AnalysisDoc) bool {
				if gotFP == fp {
					t.Errorf("corrupt document %s surfaced from Load", fp)
				}
				if _, berr := doc.Build(); berr != nil {
					t.Errorf("Load surfaced unbuildable doc: %v", berr)
				}
				return true
			})
			if err != nil {
				t.Fatalf("Load failed outright: %v", err)
			}
			if rep.Loaded != 1 || rep.Skipped != 1 {
				t.Fatalf("report: %+v", rep)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file not quarantined: stat err %v", err)
			}
			if s := st.Stats(); s.CorruptSkipped != 1 {
				t.Fatalf("CorruptSkipped = %d, want 1", s.CorruptSkipped)
			}

			// Self-healing: re-putting the same document rebuilds the file
			// and the next load delivers both documents again.
			if _, err := st.Put(testDoc()); err != nil {
				t.Fatal(err)
			}
			rep, err = st.Load(func(string, AnalysisDoc) bool { return true })
			if err != nil {
				t.Fatal(err)
			}
			if rep.Loaded != 2 || rep.Skipped != 0 {
				t.Fatalf("post-heal report: %+v", rep)
			}
		})
	}
}

func TestStoreGetQuarantinesWrongName(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := st.Put(testDoc())
	if err != nil {
		t.Fatal(err)
	}
	// Copy the valid envelope under a different fingerprint's name: content
	// was "swapped under the name", which the fingerprint check must catch.
	data, err := os.ReadFile(filepath.Join(st.Dir(), fp+".json"))
	if err != nil {
		t.Fatal(err)
	}
	wrong := strings.Repeat("0", len(fp))
	if err := os.WriteFile(filepath.Join(st.Dir(), wrong+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(wrong); err == nil {
		t.Fatal("Get under the wrong name succeeded")
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), wrong+".json")); !os.IsNotExist(err) {
		t.Fatal("mis-named file not quarantined")
	}
	// The original is untouched.
	if _, err := st.Get(fp); err != nil {
		t.Fatalf("original damaged by quarantine: %v", err)
	}
}

func TestStoreIgnoresTempAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(testDoc()); err != nil {
		t.Fatal(err)
	}
	// A leftover temp from a crashed write and a non-store file must both be
	// invisible to Load (temps carry no .json suffix by construction).
	if err := os.WriteFile(filepath.Join(dir, ".put-12345"), []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Load(func(string, AnalysisDoc) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 || rep.Skipped != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if _, err := os.Stat(filepath.Join(dir, ".put-12345")); err != nil {
		t.Fatal("temp file removed by Load; it should be ignored")
	}
}

// storeDocN returns a distinct document per index, for GC tests that need a
// population of entries.
func storeDocN(i int) AnalysisDoc {
	d := testDoc()
	d.Params[0].Orig = []float64{1, float64(i + 2)}
	return d
}

func TestStoreGCEvictsLRU(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fps := make([]string, 4)
	for i := range fps {
		if fps[i], err = st.Put(storeDocN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest entry so it is no longer the LRU victim.
	if _, err := st.Get(fps[0]); err != nil {
		t.Fatal(err)
	}
	// Bound the store to roughly two entries: the coldest (fps[1], then
	// fps[2]) must go, the re-touched fps[0] and the newest fps[3] stay.
	total := st.SizeBytes()
	st.SetMaxBytes(total / 2)

	s := st.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under a half-size bound: %+v", s)
	}
	if st.SizeBytes() > total/2 {
		t.Fatalf("size %d still above bound %d", st.SizeBytes(), total/2)
	}
	if _, err := st.Get(fps[0]); err != nil {
		t.Fatalf("recently-used entry evicted: %v", err)
	}
	if _, err := st.Get(fps[3]); err != nil {
		t.Fatalf("newest entry evicted: %v", err)
	}
	if _, err := st.Get(fps[1]); err == nil {
		t.Fatal("coldest entry survived the sweep")
	}

	// New puts keep the bound: inserting re-evicts the now-coldest entry.
	before := st.Stats().Evictions
	if _, err := st.Put(storeDocN(10)); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Evictions == before && st.SizeBytes() > total/2 {
		t.Fatalf("put left the store over its bound without evicting")
	}
}

func TestStoreGCNeverEvictsPinned(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fps := make([]string, 3)
	for i := range fps {
		if fps[i], err = st.Put(storeDocN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Pin the coldest entry — the sweep must pass over it and take the next
	// coldest instead, even though the pinned one is the LRU victim.
	st.Pin(fps[0])
	one := st.SizeBytes() / 3
	st.SetMaxBytes(one + one/2) // room for ~one entry

	if _, err := st.Get(fps[0]); err != nil {
		t.Fatalf("pinned entry evicted: %v", err)
	}
	if _, err := st.Get(fps[1]); err == nil {
		t.Fatal("unpinned cold entry survived while a pinned one was spared")
	}

	// Unpinning re-arms eviction for it on the next sweep.
	st.Unpin(fps[0])
	st.SetMaxBytes(1)
	if _, err := st.Get(fps[0]); err == nil {
		t.Fatal("unpinned entry survived a 1-byte bound")
	}
	if s := st.Stats(); s.Evictions == 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestStoreGCRacesNestedPins drives the eviction sweep against concurrent
// nested Pin/Unpin cycles. A server holds a base pin on the generation an
// in-flight evaluation uses while shorter-lived work (shard evals, watch
// updates) pins and unpins the same fingerprint underneath it; the sweep
// must never observe a transiently-unpinned generation, no matter how the
// inner releases interleave with Put-triggered GCs. Run under -race.
func TestStoreGCRacesNestedPins(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	protected, err := st.Put(storeDocN(0))
	if err != nil {
		t.Fatal(err)
	}
	// Bound the store to roughly one entry so every churn Put below runs a
	// sweep with the protected entry as the natural LRU victim.
	st.Pin(protected) // the base pin: held for the whole test
	st.SetMaxBytes(st.SizeBytes() + st.SizeBytes()/2)

	const (
		pinners   = 4
		cycles    = 200
		churnPuts = 200
	)
	var wg sync.WaitGroup
	for p := 0; p < pinners; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cycles; i++ {
				st.Pin(protected)
				st.Pin(protected) // nest two deep
				st.Unpin(protected)
				st.Unpin(protected)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= churnPuts; i++ {
			if _, err := st.Put(storeDocN(i)); err != nil {
				t.Errorf("churn put %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	// The base pin was never released: the protected generation must have
	// survived every sweep the churn triggered.
	if _, err := st.Get(protected); err != nil {
		t.Fatalf("pinned generation evicted during churn: %v", err)
	}
	if s := st.Stats(); s.Evictions == 0 {
		t.Fatalf("churn never triggered a sweep (stats %+v) — the race was not exercised", s)
	}

	// Releasing the base pin makes it ordinary LRU fodder again: the pin
	// count balanced out to exactly the base pin, not zero or a leak.
	st.Unpin(protected)
	st.SetMaxBytes(1)
	if _, err := st.Get(protected); err == nil {
		t.Fatal("fully-unpinned generation survived a 1-byte bound: nested unpins leaked a pin")
	}
}
