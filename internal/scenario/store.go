package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the persistent content-addressed scenario store: fingerprint
// → AnalysisDoc on disk, one file per document, so an evaluation daemon can
// warm-start its scenario cache after a restart instead of cold-serving
// every class until traffic rebuilds it.
//
// Durability rules, chosen so a crash mid-write can never poison a later
// load:
//
//   - Writes are atomic: the envelope is written to a temp file in the same
//     directory, fsynced, and renamed over the final name. Readers never see
//     a half-written file under a final name.
//   - Every file carries a checksum of its document bytes and the document's
//     fingerprint. Load verifies BOTH — the checksum catches torn or
//     bit-rotted payloads, the fingerprint catches a file whose content was
//     swapped under its name.
//   - Load is corruption-tolerant: a file that fails to decode, checksum,
//     fingerprint-match, or validate is counted, (best-effort) deleted so the
//     next Put rebuilds it cleanly, and skipped. A corrupt store degrades to
//     a smaller warm-start; it never takes the daemon down.

// storeKind and storeVersion stamp every store file.
const (
	storeKind    = "fepia-store"
	storeVersion = 1
)

// storeEnvelope is the on-disk shape of one stored document.
type storeEnvelope struct {
	Kind        string `json:"kind"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Checksum is FNV-1a/64 of the raw Doc bytes, hex-encoded.
	Checksum string          `json:"checksum"`
	Doc      json.RawMessage `json:"doc"`
}

// Store is a directory of content-addressed analysis documents. All methods
// are safe for concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	stats StoreStats
}

// StoreStats are the store's monotonic counters.
type StoreStats struct {
	// Puts counts successful writes, PutErrors failed ones (the daemon keeps
	// serving either way; persistence is best-effort).
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"putErrors"`
	// Loaded counts documents served by Load/Get; CorruptSkipped counts
	// files Load refused (truncated, checksum/fingerprint mismatch,
	// invalid document) and removed.
	Loaded         uint64 `json:"loaded"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
}

// OpenStore opens (creating if needed) a scenario store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("scenario: store dir is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Stats snapshots the store's counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Len counts the store files currently on disk (corrupt or not).
func (st *Store) Len() int {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

func (st *Store) path(fp string) string { return filepath.Join(st.dir, fp+".json") }

// checksumOf is the store's payload checksum: FNV-1a/64 over the raw bytes.
func checksumOf(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return strconv.FormatUint(h.Sum64(), 16)
}

// Put persists a document under its fingerprint, atomically. Re-putting an
// existing fingerprint rewrites the file — that is the self-healing path for
// a file Load quarantined. Returns the fingerprint.
func (st *Store) Put(doc AnalysisDoc) (string, error) {
	doc.Version = Version
	doc.Kind = "fepia"
	fp, err := doc.Fingerprint()
	if err != nil {
		st.countPutErr()
		return "", err
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		st.countPutErr()
		return "", fmt.Errorf("scenario: store put: %w", err)
	}
	env := storeEnvelope{
		Kind:        storeKind,
		Version:     storeVersion,
		Fingerprint: fp,
		Checksum:    checksumOf(raw),
		Doc:         raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		st.countPutErr()
		return "", fmt.Errorf("scenario: store put: %w", err)
	}
	if err := st.writeAtomic(st.path(fp), data); err != nil {
		st.countPutErr()
		return "", err
	}
	st.mu.Lock()
	st.stats.Puts++
	st.mu.Unlock()
	return fp, nil
}

func (st *Store) countPutErr() {
	st.mu.Lock()
	st.stats.PutErrors++
	st.mu.Unlock()
}

// writeAtomic writes data via a same-directory temp file, fsync, and rename,
// so a final-name file is always complete.
func (st *Store) writeAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(st.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("scenario: store write: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("scenario: store write: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("scenario: store write: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("scenario: store write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("scenario: store write: %w", err)
	}
	return nil
}

// decodeEnvelope verifies one store file's bytes end to end: envelope shape,
// checksum, fingerprint consistency, and document validity.
func decodeEnvelope(data []byte, wantFP string) (AnalysisDoc, error) {
	var env storeEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file: %w", err)
	}
	if env.Kind != storeKind || env.Version != storeVersion {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file kind/version %q/%d, want %q/%d", env.Kind, env.Version, storeKind, storeVersion)
	}
	if got := checksumOf(env.Doc); got != env.Checksum {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file checksum %s, recorded %s", got, env.Checksum)
	}
	var doc AnalysisDoc
	if err := json.Unmarshal(env.Doc, &doc); err != nil {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file doc: %w", err)
	}
	fp, err := doc.Fingerprint()
	if err != nil {
		return AnalysisDoc{}, err
	}
	if fp != env.Fingerprint || (wantFP != "" && fp != wantFP) {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file fingerprint %s, recorded %s (name %s)", fp, env.Fingerprint, wantFP)
	}
	if err := doc.Validate(); err != nil {
		return AnalysisDoc{}, err
	}
	return doc, nil
}

// Get loads one document by fingerprint. A corrupt file is quarantined
// (removed) and reported as an error; the caller rebuilds from traffic.
func (st *Store) Get(fp string) (AnalysisDoc, error) {
	data, err := os.ReadFile(st.path(fp))
	if err != nil {
		return AnalysisDoc{}, err
	}
	doc, err := decodeEnvelope(data, fp)
	if err != nil {
		st.quarantine(st.path(fp))
		return AnalysisDoc{}, err
	}
	st.mu.Lock()
	st.stats.Loaded++
	st.mu.Unlock()
	return doc, nil
}

// quarantine removes a file Load refused, best-effort, and counts it. The
// next Put of the same fingerprint rewrites it cleanly.
func (st *Store) quarantine(path string) {
	_ = os.Remove(path)
	st.mu.Lock()
	st.stats.CorruptSkipped++
	st.mu.Unlock()
}

// LoadReport summarizes one Load sweep.
type LoadReport struct {
	Loaded  int // documents delivered to the callback
	Skipped int // corrupt/truncated/foreign files refused (and removed)
}

// Load walks the store in deterministic (name) order, delivering every
// intact document to fn; fn returning false stops the walk early (capacity
// reached). Corrupt files are skipped, counted, and removed — Load never
// fails on file content, only on an unreadable directory.
func (st *Store) Load(fn func(fp string, doc AnalysisDoc) bool) (LoadReport, error) {
	var rep LoadReport
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return rep, fmt.Errorf("scenario: store load: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(st.dir, name)
		fp := strings.TrimSuffix(name, ".json")
		data, err := os.ReadFile(path)
		if err != nil {
			rep.Skipped++
			st.quarantine(path)
			continue
		}
		doc, err := decodeEnvelope(data, fp)
		if err != nil {
			rep.Skipped++
			st.quarantine(path)
			continue
		}
		st.mu.Lock()
		st.stats.Loaded++
		st.mu.Unlock()
		rep.Loaded++
		if !fn(fp, doc) {
			break
		}
	}
	return rep, nil
}
