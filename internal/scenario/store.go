package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"fepia/internal/durable"
)

// This file is the persistent content-addressed scenario store: fingerprint
// → AnalysisDoc on disk, one file per document, so an evaluation daemon can
// warm-start its scenario cache after a restart instead of cold-serving
// every class until traffic rebuilds it.
//
// Durability rules, chosen so a crash mid-write can never poison a later
// load (the write/checksum primitives live in internal/durable, shared with
// the ring journal and search checkpoint store):
//
//   - Writes are atomic: the envelope is written to a temp file in the same
//     directory, fsynced, and renamed over the final name. Readers never see
//     a half-written file under a final name.
//   - Every file carries a checksum of its document bytes and the document's
//     fingerprint. Load verifies BOTH — the checksum catches torn or
//     bit-rotted payloads, the fingerprint catches a file whose content was
//     swapped under its name.
//   - Load is corruption-tolerant: a file that fails to decode, checksum,
//     fingerprint-match, or validate is counted, (best-effort) deleted so the
//     next Put rebuilds it cleanly, and skipped. A corrupt store degrades to
//     a smaller warm-start; it never takes the daemon down.
//
// The store is additionally bounded: SetMaxBytes arms an LRU-by-access
// eviction that runs after every Put, so a long-lived daemon's store stops
// growing without operator cron jobs. Recency is a logical clock (bumped on
// every Put/Get/Load touch), not wall-clock atime — most filesystems mount
// noatime, and a logical clock keeps tests deterministic. Entries pinned via
// Pin (a running search's instance document) are never evicted.

// storeKind and storeVersion stamp every store file.
const (
	storeKind    = "fepia-store"
	storeVersion = 1
)

// storeEnvelope is the on-disk shape of one stored document.
type storeEnvelope struct {
	Kind        string `json:"kind"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Checksum is FNV-1a/64 of the raw Doc bytes, hex-encoded.
	Checksum string          `json:"checksum"`
	Doc      json.RawMessage `json:"doc"`
}

// Store is a directory of content-addressed analysis documents. All methods
// are safe for concurrent use.
type Store struct {
	dir string

	mu       sync.Mutex
	stats    StoreStats
	maxBytes int64
	total    int64
	clock    uint64
	sizes    map[string]int64  // fingerprint → file size on disk
	atimes   map[string]uint64 // fingerprint → logical last-access tick
	pins     map[string]int    // fingerprint → pin count (never evicted while > 0)
}

// StoreStats are the store's monotonic counters.
type StoreStats struct {
	// Puts counts successful writes, PutErrors failed ones (the daemon keeps
	// serving either way; persistence is best-effort).
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"putErrors"`
	// Loaded counts documents served by Load/Get; CorruptSkipped counts
	// files Load refused (truncated, checksum/fingerprint mismatch,
	// invalid document) and removed.
	Loaded         uint64 `json:"loaded"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
	// Evictions counts entries removed by the size bound's LRU sweep.
	Evictions uint64 `json:"evictions"`
}

// OpenStore opens (creating if needed) a scenario store rooted at dir. The
// existing files are indexed by size and modification order so the eviction
// bound (SetMaxBytes) sees pre-restart entries as the coldest.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("scenario: store dir is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: opening store: %w", err)
	}
	st := &Store{
		dir:    dir,
		sizes:  make(map[string]int64),
		atimes: make(map[string]uint64),
		pins:   make(map[string]int),
	}
	st.indexExisting()
	return st, nil
}

// indexExisting seeds the size/recency index from files already on disk,
// oldest-modified first so they evict before anything touched this run.
func (st *Store) indexExisting() {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	type onDisk struct {
		fp   string
		size int64
		mod  int64
	}
	var files []onDisk
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, onDisk{
			fp:   strings.TrimSuffix(e.Name(), ".json"),
			size: info.Size(),
			mod:  info.ModTime().UnixNano(),
		})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].fp < files[j].fp
	})
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, f := range files {
		st.clock++
		st.sizes[f.fp] = f.size
		st.atimes[f.fp] = st.clock
		st.total += f.size
	}
}

// SetMaxBytes arms (or, with n ≤ 0, disarms) the store's size bound and
// immediately sweeps if already over it.
func (st *Store) SetMaxBytes(n int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.maxBytes = n
	st.evictLocked("")
}

// Pin marks a fingerprint as non-evictable (a running search depends on
// it). Pins nest; call Unpin once per Pin.
func (st *Store) Pin(fp string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.pins[fp]++
}

// Unpin releases one Pin. Once the count reaches zero the entry is ordinary
// LRU fodder again.
func (st *Store) Unpin(fp string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pins[fp] <= 1 {
		delete(st.pins, fp)
	} else {
		st.pins[fp]--
	}
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Stats snapshots the store's counters.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// SizeBytes reports the indexed on-disk footprint of the store.
func (st *Store) SizeBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// Len counts the store files currently on disk (corrupt or not).
func (st *Store) Len() int {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

func (st *Store) path(fp string) string { return filepath.Join(st.dir, fp+".json") }

// Put persists a document under its fingerprint, atomically. Re-putting an
// existing fingerprint rewrites the file — that is the self-healing path for
// a file Load quarantined. Returns the fingerprint.
func (st *Store) Put(doc AnalysisDoc) (string, error) {
	doc.Version = Version
	doc.Kind = "fepia"
	fp, err := doc.Fingerprint()
	if err != nil {
		st.countPutErr()
		return "", err
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		st.countPutErr()
		return "", fmt.Errorf("scenario: store put: %w", err)
	}
	env := storeEnvelope{
		Kind:        storeKind,
		Version:     storeVersion,
		Fingerprint: fp,
		Checksum:    durable.Checksum(raw),
		Doc:         raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		st.countPutErr()
		return "", fmt.Errorf("scenario: store put: %w", err)
	}
	if err := durable.WriteFileAtomic(st.path(fp), data, ".put-*"); err != nil {
		st.countPutErr()
		return "", fmt.Errorf("scenario: store write: %w", err)
	}
	st.mu.Lock()
	st.stats.Puts++
	st.total += int64(len(data)) - st.sizes[fp]
	st.sizes[fp] = int64(len(data))
	st.touchLocked(fp)
	st.evictLocked(fp)
	st.mu.Unlock()
	return fp, nil
}

func (st *Store) countPutErr() {
	st.mu.Lock()
	st.stats.PutErrors++
	st.mu.Unlock()
}

// touchLocked bumps fp's logical access time. Caller holds st.mu.
func (st *Store) touchLocked(fp string) {
	st.clock++
	st.atimes[fp] = st.clock
}

// evictLocked removes least-recently-used unpinned entries until the store
// fits its bound. keep (the fingerprint just written, if any) is never a
// victim even when unpinned — evicting the entry we just persisted would
// make the bound a Put veto rather than a GC. Caller holds st.mu.
func (st *Store) evictLocked(keep string) {
	if st.maxBytes <= 0 {
		return
	}
	for st.total > st.maxBytes {
		victim := ""
		var oldest uint64
		for fp := range st.sizes {
			if fp == keep || st.pins[fp] > 0 {
				continue
			}
			if victim == "" || st.atimes[fp] < oldest ||
				(st.atimes[fp] == oldest && fp < victim) {
				victim = fp
				oldest = st.atimes[fp]
			}
		}
		if victim == "" {
			return // everything left is pinned or just-written
		}
		_ = os.Remove(st.path(victim))
		st.dropLocked(victim)
		st.stats.Evictions++
	}
}

// dropLocked forgets fp's index entries. Caller holds st.mu.
func (st *Store) dropLocked(fp string) {
	st.total -= st.sizes[fp]
	delete(st.sizes, fp)
	delete(st.atimes, fp)
}

// decodeEnvelope verifies one store file's bytes end to end: envelope shape,
// checksum, fingerprint consistency, and document validity.
func decodeEnvelope(data []byte, wantFP string) (AnalysisDoc, error) {
	var env storeEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file: %w", err)
	}
	if env.Kind != storeKind || env.Version != storeVersion {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file kind/version %q/%d, want %q/%d", env.Kind, env.Version, storeKind, storeVersion)
	}
	if got := durable.Checksum(env.Doc); got != env.Checksum {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file checksum %s, recorded %s", got, env.Checksum)
	}
	var doc AnalysisDoc
	if err := json.Unmarshal(env.Doc, &doc); err != nil {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file doc: %w", err)
	}
	fp, err := doc.Fingerprint()
	if err != nil {
		return AnalysisDoc{}, err
	}
	if fp != env.Fingerprint || (wantFP != "" && fp != wantFP) {
		return AnalysisDoc{}, fmt.Errorf("scenario: store file fingerprint %s, recorded %s (name %s)", fp, env.Fingerprint, wantFP)
	}
	if err := doc.Validate(); err != nil {
		return AnalysisDoc{}, err
	}
	return doc, nil
}

// Get loads one document by fingerprint. A corrupt file is quarantined
// (removed) and reported as an error; the caller rebuilds from traffic.
func (st *Store) Get(fp string) (AnalysisDoc, error) {
	data, err := os.ReadFile(st.path(fp))
	if err != nil {
		return AnalysisDoc{}, err
	}
	doc, err := decodeEnvelope(data, fp)
	if err != nil {
		st.quarantine(st.path(fp))
		return AnalysisDoc{}, err
	}
	st.mu.Lock()
	st.stats.Loaded++
	st.touchLocked(fp)
	st.mu.Unlock()
	return doc, nil
}

// quarantine removes a file Load refused, best-effort, and counts it. The
// next Put of the same fingerprint rewrites it cleanly.
func (st *Store) quarantine(path string) {
	_ = os.Remove(path)
	fp := strings.TrimSuffix(filepath.Base(path), ".json")
	st.mu.Lock()
	st.stats.CorruptSkipped++
	st.dropLocked(fp)
	st.mu.Unlock()
}

// LoadReport summarizes one Load sweep.
type LoadReport struct {
	Loaded  int // documents delivered to the callback
	Skipped int // corrupt/truncated/foreign files refused (and removed)
}

// Load walks the store in deterministic (name) order, delivering every
// intact document to fn; fn returning false stops the walk early (capacity
// reached). Corrupt files are skipped, counted, and removed — Load never
// fails on file content, only on an unreadable directory.
func (st *Store) Load(fn func(fp string, doc AnalysisDoc) bool) (LoadReport, error) {
	var rep LoadReport
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return rep, fmt.Errorf("scenario: store load: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(st.dir, name)
		fp := strings.TrimSuffix(name, ".json")
		data, err := os.ReadFile(path)
		if err != nil {
			rep.Skipped++
			st.quarantine(path)
			continue
		}
		doc, err := decodeEnvelope(data, fp)
		if err != nil {
			rep.Skipped++
			st.quarantine(path)
			continue
		}
		st.mu.Lock()
		st.stats.Loaded++
		st.touchLocked(fp)
		st.mu.Unlock()
		rep.Loaded++
		if !fn(fp, doc) {
			break
		}
	}
	return rep, nil
}
