// Package scenario serializes the substrate systems to and from JSON so
// experiments and command-line tools can persist, share, and replay exact
// configurations. The formats are versioned and validated on load.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"fepia/internal/dag"
	"fepia/internal/etc"
	"fepia/internal/hiperd"
	"fepia/internal/vec"
)

// Version is written into every document; Load rejects unknown versions.
const Version = 1

// ErrVersion reports an unsupported document version.
var ErrVersion = errors.New("scenario: unsupported version")

// hiperdDoc is the JSON shape of a hiperd.System.
type hiperdDoc struct {
	Version    int          `json:"version"`
	Kind       string       `json:"kind"` // "hiperd"
	Apps       []appDoc     `json:"apps"`
	Edges      [][2]int     `json:"edges"`
	MsgSizes   []float64    `json:"msgSizes"`
	Machines   []machineDoc `json:"machines"`
	Bandwidth  float64      `json:"bandwidth"`
	LinkBW     []linkBWDoc  `json:"linkBW,omitempty"`
	Alloc      []int        `json:"alloc"`
	Rate       float64      `json:"rate"`
	LatencyMax float64      `json:"latencyMax"`
}

type appDoc struct {
	Name     string  `json:"name"`
	BaseExec float64 `json:"baseExec"`
}

type machineDoc struct {
	Name  string  `json:"name"`
	Speed float64 `json:"speed"`
}

type linkBWDoc struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Bandwidth float64 `json:"bw"`
}

// SaveHiPerD writes the system as indented JSON.
func SaveHiPerD(w io.Writer, s *hiperd.System) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("scenario: refusing to save invalid system: %w", err)
	}
	doc := hiperdDoc{
		Version:    Version,
		Kind:       "hiperd",
		Edges:      s.Graph.Edges(),
		MsgSizes:   append([]float64(nil), s.MsgSizes...),
		Bandwidth:  s.Bandwidth,
		Alloc:      append([]int(nil), s.Alloc...),
		Rate:       s.Rate,
		LatencyMax: s.LatencyMax,
	}
	for _, a := range s.Apps {
		doc.Apps = append(doc.Apps, appDoc{Name: a.Name, BaseExec: a.BaseExec})
	}
	for _, m := range s.Machines {
		doc.Machines = append(doc.Machines, machineDoc{Name: m.Name, Speed: m.Speed})
	}
	for pair, bw := range s.LinkBW {
		doc.LinkBW = append(doc.LinkBW, linkBWDoc{From: pair[0], To: pair[1], Bandwidth: bw})
	}
	sort.Slice(doc.LinkBW, func(a, b int) bool {
		if doc.LinkBW[a].From != doc.LinkBW[b].From {
			return doc.LinkBW[a].From < doc.LinkBW[b].From
		}
		return doc.LinkBW[a].To < doc.LinkBW[b].To
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadHiPerD reads and validates a system saved by SaveHiPerD.
func LoadHiPerD(r io.Reader) (*hiperd.System, error) {
	var doc hiperdDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, doc.Version, Version)
	}
	if doc.Kind != "hiperd" {
		return nil, fmt.Errorf("scenario: document kind %q, want %q", doc.Kind, "hiperd")
	}
	g, err := dag.New(len(doc.Apps))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	for _, e := range doc.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	s := &hiperd.System{
		Graph:      g,
		MsgSizes:   vec.V(doc.MsgSizes),
		Bandwidth:  doc.Bandwidth,
		Alloc:      doc.Alloc,
		Rate:       doc.Rate,
		LatencyMax: doc.LatencyMax,
	}
	for _, a := range doc.Apps {
		s.Apps = append(s.Apps, hiperd.App{Name: a.Name, BaseExec: a.BaseExec})
	}
	for _, m := range doc.Machines {
		s.Machines = append(s.Machines, hiperd.Machine{Name: m.Name, Speed: m.Speed})
	}
	if len(doc.LinkBW) > 0 {
		s.LinkBW = make(map[[2]int]float64, len(doc.LinkBW))
		for _, l := range doc.LinkBW {
			s.LinkBW[[2]int{l.From, l.To}] = l.Bandwidth
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: loaded system invalid: %w", err)
	}
	return s, nil
}

// makespanDoc is the JSON shape of an ETC matrix plus allocation.
type makespanDoc struct {
	Version int         `json:"version"`
	Kind    string      `json:"kind"` // "makespan"
	ETC     [][]float64 `json:"etc"`
	Alloc   []int       `json:"alloc,omitempty"`
}

// SaveMakespan writes an ETC matrix and optional allocation as JSON.
func SaveMakespan(w io.Writer, m *etc.Matrix, alloc []int) error {
	if m == nil || m.Tasks == 0 || m.Machines == 0 {
		return errors.New("scenario: refusing to save empty ETC matrix")
	}
	if alloc != nil && len(alloc) != m.Tasks {
		return fmt.Errorf("scenario: alloc has %d entries for %d tasks", len(alloc), m.Tasks)
	}
	doc := makespanDoc{Version: Version, Kind: "makespan", ETC: m.Data, Alloc: alloc}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadMakespan reads a matrix (and allocation, possibly nil) saved by
// SaveMakespan.
func LoadMakespan(r io.Reader) (*etc.Matrix, []int, error) {
	var doc makespanDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	if doc.Version != Version {
		return nil, nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, doc.Version, Version)
	}
	if doc.Kind != "makespan" {
		return nil, nil, fmt.Errorf("scenario: document kind %q, want %q", doc.Kind, "makespan")
	}
	if len(doc.ETC) == 0 || len(doc.ETC[0]) == 0 {
		return nil, nil, errors.New("scenario: empty ETC matrix")
	}
	cols := len(doc.ETC[0])
	for t, row := range doc.ETC {
		if len(row) != cols {
			return nil, nil, fmt.Errorf("scenario: ragged ETC row %d", t)
		}
	}
	m := &etc.Matrix{Tasks: len(doc.ETC), Machines: cols, Data: doc.ETC}
	if doc.Alloc != nil {
		if len(doc.Alloc) != m.Tasks {
			return nil, nil, fmt.Errorf("scenario: alloc has %d entries for %d tasks", len(doc.Alloc), m.Tasks)
		}
		for t, j := range doc.Alloc {
			if j < 0 || j >= m.Machines {
				return nil, nil, fmt.Errorf("scenario: alloc[%d] = %d out of range", t, j)
			}
		}
	}
	return m, doc.Alloc, nil
}
