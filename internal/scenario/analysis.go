package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"

	"fepia/internal/core"
	"fepia/internal/vec"
)

// This file defines the versioned JSON document of a complete FePIA
// analysis — perturbation parameters plus features over the four supported
// impact families — shared by the fepiad evaluation daemon and any tool
// that persists analyses. Linear and quadratic features build with their
// analytic declarations (closed-form tiers); multiplicative and queueing
// features are declarative nonlinearities that force the numeric level-set
// tier. docs/operations.md documents the schema for API callers.

// Impact family names accepted in AnalysisFeature.Impact.
const (
	ImpactLinear         = "linear"
	ImpactQuadratic      = "quadratic"
	ImpactMultiplicative = "multiplicative"
	ImpactQueueing       = "queueing"
)

// AnalysisDoc is the JSON shape of a core.Analysis.
type AnalysisDoc struct {
	Version  int               `json:"version"`
	Kind     string            `json:"kind"` // "fepia"
	Params   []AnalysisParam   `json:"params"`
	Features []AnalysisFeature `json:"features"`
}

// AnalysisParam is one perturbation parameter π_j.
type AnalysisParam struct {
	Name string    `json:"name"`
	Unit string    `json:"unit,omitempty"`
	Orig []float64 `json:"orig"`
}

// AnalysisFeature is one performance feature φ_i. Impact selects the
// family ("" defaults to linear); exactly the fields of that family are
// read. All block-shaped fields are indexed [param][elem] and must align
// with the document's parameters. Omitted min/max mean one-sided bounds.
type AnalysisFeature struct {
	Name   string   `json:"name"`
	Impact string   `json:"impact,omitempty"`
	Min    *float64 `json:"min,omitempty"`
	Max    *float64 `json:"max,omitempty"`

	// Linear: φ = Const + Σ_j Coeffs[j]·π_j.
	Coeffs [][]float64 `json:"coeffs,omitempty"`
	Const  float64     `json:"const,omitempty"`

	// Quadratic: φ = Const + Σ_j Σ_e Curv[j][e]·(π_je − Center[j][e])².
	Curv   [][]float64 `json:"curv,omitempty"`
	Center [][]float64 `json:"center,omitempty"`

	// Multiplicative: φ = Const + Scale·Π_j Π_e |π_je|^Pows[j][e].
	Scale float64     `json:"scale,omitempty"`
	Pows  [][]float64 `json:"pows,omitempty"`

	// Queueing: φ = Σ_j Σ_e Wgts[j][e] / max(Caps[j][e] − π_je, Eps).
	Wgts [][]float64 `json:"wgts,omitempty"`
	Caps [][]float64 `json:"caps,omitempty"`
	Eps  float64     `json:"eps,omitempty"`
}

// Fingerprint returns a stable content hash of the document: two documents
// fingerprint equally iff their canonical JSON forms are byte-identical
// (encoding/json emits struct fields in declaration order, so the encoding
// is deterministic). The daemon's cross-request scenario cache and the
// cluster coordinator's provenance both key on it. The hash is not
// cryptographic — it identifies, it does not authenticate.
func (d AnalysisDoc) Fingerprint() (string, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return "", fmt.Errorf("scenario: fingerprint: %w", err)
	}
	h := fnv.New64a()
	h.Write(b)
	return strconv.FormatUint(h.Sum64(), 16), nil
}

// family resolves the impact family, defaulting to linear.
func (f AnalysisFeature) family() string {
	if f.Impact == "" {
		return ImpactLinear
	}
	return f.Impact
}

// NumericTier reports whether the feature has no closed-form tier and every
// radius involving it runs the numeric level-set search — the expensive
// path the daemon's admission costing and circuit breaker care about.
func (f AnalysisFeature) NumericTier() bool {
	switch f.family() {
	case ImpactMultiplicative, ImpactQueueing:
		return true
	}
	return false
}

// SaveAnalysis writes the document as indented JSON (stamping version and
// kind) after checking that it builds.
func SaveAnalysis(w io.Writer, doc AnalysisDoc) error {
	if _, err := doc.Build(); err != nil {
		return fmt.Errorf("scenario: refusing to save invalid analysis: %w", err)
	}
	doc.Version = Version
	doc.Kind = "fepia"
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadAnalysis reads a document saved by SaveAnalysis (validation happens
// in Build).
func LoadAnalysis(r io.Reader) (AnalysisDoc, error) {
	var doc AnalysisDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return AnalysisDoc{}, fmt.Errorf("scenario: %w", err)
	}
	if doc.Version != Version {
		return AnalysisDoc{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, doc.Version, Version)
	}
	if doc.Kind != "fepia" {
		return AnalysisDoc{}, fmt.Errorf("scenario: document kind %q, want %q", doc.Kind, "fepia")
	}
	return doc, nil
}

// Validate checks the document's shape — finite values, coefficient blocks
// aligned with the parameters — without building. Build calls it first;
// servers call it to reject malformed requests with a useful message
// before spending anything on them.
func (d AnalysisDoc) Validate() error {
	if len(d.Params) == 0 {
		return fmt.Errorf("scenario: analysis has no params")
	}
	if len(d.Features) == 0 {
		return fmt.Errorf("scenario: analysis has no features")
	}
	for j, p := range d.Params {
		if len(p.Orig) == 0 {
			return fmt.Errorf("scenario: param %d (%q) has empty orig", j, p.Name)
		}
		for e, x := range p.Orig {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("scenario: param %d (%q) orig[%d] is not finite", j, p.Name, e)
			}
		}
	}
	for i, f := range d.Features {
		if err := d.validateFeature(i, f); err != nil {
			return err
		}
	}
	return nil
}

// validateFeature checks one feature's family fields against the params.
func (d AnalysisDoc) validateFeature(i int, f AnalysisFeature) error {
	checkBlocks := func(field string, blocks [][]float64) error {
		if len(blocks) != len(d.Params) {
			return fmt.Errorf("scenario: feature %d (%q): %s has %d blocks, want %d (one per param)",
				i, f.Name, field, len(blocks), len(d.Params))
		}
		for j, b := range blocks {
			if len(b) != len(d.Params[j].Orig) {
				return fmt.Errorf("scenario: feature %d (%q): %s[%d] has %d elements, want %d",
					i, f.Name, field, j, len(b), len(d.Params[j].Orig))
			}
			for e, x := range b {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return fmt.Errorf("scenario: feature %d (%q): %s[%d][%d] is not finite", i, f.Name, field, j, e)
				}
			}
		}
		return nil
	}
	switch f.family() {
	case ImpactLinear:
		return checkBlocks("coeffs", f.Coeffs)
	case ImpactQuadratic:
		if err := checkBlocks("curv", f.Curv); err != nil {
			return err
		}
		for j, b := range f.Curv {
			for e, x := range b {
				if x < 0 {
					return fmt.Errorf("scenario: feature %d (%q): curv[%d][%d] negative (quadratic curvature must be >= 0)", i, f.Name, j, e)
				}
			}
		}
		return checkBlocks("center", f.Center)
	case ImpactMultiplicative:
		return checkBlocks("pows", f.Pows)
	case ImpactQueueing:
		if err := checkBlocks("wgts", f.Wgts); err != nil {
			return err
		}
		if err := checkBlocks("caps", f.Caps); err != nil {
			return err
		}
		if !(f.Eps > 0) || math.IsInf(f.Eps, 0) {
			return fmt.Errorf("scenario: feature %d (%q): queueing eps must be finite and > 0", i, f.Name)
		}
		return nil
	default:
		return fmt.Errorf("scenario: feature %d (%q): unknown impact family %q", i, f.Name, f.Impact)
	}
}

// bounds converts the pointer bounds to core.Bounds.
func (f AnalysisFeature) bounds() core.Bounds {
	b := core.Bounds{Min: math.Inf(-1), Max: math.Inf(1)}
	if f.Min != nil {
		b.Min = *f.Min
	}
	if f.Max != nil {
		b.Max = *f.Max
	}
	return b
}

// Build validates the document and assembles the core.Analysis: linear and
// quadratic features carry their closed-form declarations, multiplicative
// and queueing features their numeric impact closures. Every family also
// attaches its vectorized k-probe kernel (internal/vec) as
// core.Feature.ImpactK, so evaluations opted into EvalOptions.KProbe batch
// whole probe blocks per call — the kernels replicate the scalar
// accumulation order exactly, keeping radii bit-identical. The closures and
// kernels copy the document's blocks, so the returned analysis never
// aliases caller memory.
func (d AnalysisDoc) Build() (*core.Analysis, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	params := make([]core.Perturbation, len(d.Params))
	for j, p := range d.Params {
		params[j] = core.Perturbation{
			Name: p.Name,
			Unit: p.Unit,
			Orig: vec.V(append([]float64(nil), p.Orig...)),
		}
	}
	features := make([]core.Feature, len(d.Features))
	for i, f := range d.Features {
		cf := core.Feature{Name: f.Name, Bounds: f.bounds()}
		switch f.family() {
		case ImpactLinear:
			coeffs := copyBlocks(f.Coeffs)
			cf.Linear = &core.LinearImpact{Coeffs: coeffs, Const: f.Const}
			c := f.Const
			cf.ImpactK = func(probes []vec.V, out []float64) {
				vec.LinearK(out, c, coeffs, probes)
			}
		case ImpactQuadratic:
			q := &core.QuadImpact{Const: f.Const,
				A: copyBlocks(f.Curv), C: copyBlocks(f.Center)}
			cf.Quad = q
			c := f.Const
			cf.ImpactK = func(probes []vec.V, out []float64) {
				vec.QuadK(out, c, q.A, q.C, probes)
			}
		case ImpactMultiplicative:
			pows := copyBlocks(f.Pows)
			c, scale := f.Const, f.Scale
			cf.Impact = func(vs []vec.V) float64 {
				p := scale
				for j := range pows {
					for e, pw := range pows[j] {
						p *= math.Pow(math.Abs(vs[j][e]), pw)
					}
				}
				return c + p
			}
			cf.ImpactK = func(probes []vec.V, out []float64) {
				vec.PowProdK(out, c, scale, pows, probes)
			}
		case ImpactQueueing:
			wgts, caps := copyBlocks(f.Wgts), copyBlocks(f.Caps)
			eps := f.Eps
			cf.Impact = func(vs []vec.V) float64 {
				s := 0.0
				for j := range wgts {
					for e, w := range wgts[j] {
						gap := caps[j][e] - vs[j][e]
						if gap < eps {
							gap = eps
						}
						s += w / gap
					}
				}
				return s
			}
			cf.ImpactK = func(probes []vec.V, out []float64) {
				vec.QueueK(out, wgts, caps, eps, probes)
			}
		}
		features[i] = cf
	}
	a, err := core.NewAnalysis(features, params)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return a, nil
}

func copyBlocks(blocks [][]float64) []vec.V {
	out := make([]vec.V, len(blocks))
	for i, b := range blocks {
		out[i] = vec.V(append([]float64(nil), b...))
	}
	return out
}
