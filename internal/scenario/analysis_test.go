package scenario

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"fepia/internal/core"
	"fepia/internal/vec"
)

type vecV = vec.V

func f64(v float64) *float64 { return &v }

// testDoc builds a two-parameter document with one feature per family.
func testDoc() AnalysisDoc {
	return AnalysisDoc{
		Params: []AnalysisParam{
			{Name: "exec", Unit: "s", Orig: []float64{1, 2}},
			{Name: "msg", Unit: "bytes", Orig: []float64{4}},
		},
		Features: []AnalysisFeature{
			{Name: "lat", Max: f64(42), Coeffs: [][]float64{{2, 3}, {5}}},
			{Name: "quad", Impact: ImpactQuadratic, Max: f64(50),
				Curv: [][]float64{{1, 1}, {0.5}}, Center: [][]float64{{0, 0}, {0}}},
			{Name: "mult", Impact: ImpactMultiplicative, Max: f64(100),
				Scale: 1, Pows: [][]float64{{1, 1}, {0.5}}},
			{Name: "mm1", Impact: ImpactQueueing, Max: f64(10),
				Wgts: [][]float64{{1, 1}, {1}}, Caps: [][]float64{{5, 5}, {8}}, Eps: 1e-6},
		},
	}
}

func TestAnalysisRoundTrip(t *testing.T) {
	doc := testDoc()
	var buf bytes.Buffer
	if err := SaveAnalysis(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAnalysis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version || got.Kind != "fepia" {
		t.Fatalf("version/kind = %d/%q", got.Version, got.Kind)
	}
	a, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Features) != 4 || len(a.Params) != 2 {
		t.Fatalf("built %d features, %d params", len(a.Features), len(a.Params))
	}
	// Linear and quadratic carry closed-form declarations; the numeric
	// families carry only impact closures.
	if a.Features[0].Linear == nil || a.Features[1].Quad == nil {
		t.Fatal("analytic declarations missing")
	}
	if a.Features[2].Impact == nil || a.Features[3].Impact == nil {
		t.Fatal("numeric impact closures missing")
	}
	rho, err := a.RobustnessWith(context.Background(), core.Normalized{}, core.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) || math.IsInf(rho.Value, 0) {
		t.Fatalf("rho = %g, want finite positive", rho.Value)
	}
}

func TestAnalysisBuildMatchesDirectConstruction(t *testing.T) {
	doc := AnalysisDoc{
		Params: []AnalysisParam{
			{Name: "t", Unit: "s", Orig: []float64{1, 2}},
			{Name: "m", Unit: "b", Orig: []float64{4}},
		},
		Features: []AnalysisFeature{
			{Name: "lat", Max: f64(42), Coeffs: [][]float64{{2, 3}, {5}}},
		},
	}
	a, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.NewAnalysis(
		[]core.Feature{{Name: "lat", Bounds: core.MaxOnly(42),
			Linear: &core.LinearImpact{Coeffs: []vecV{{2, 3}, {5}}}}},
		[]core.Perturbation{
			{Name: "t", Unit: "s", Orig: vecV{1, 2}},
			{Name: "m", Unit: "b", Orig: vecV{4}},
		})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Fatalf("doc-built rho = %v, direct rho = %v", got.Value, want.Value)
	}
}

func TestAnalysisValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*AnalysisDoc)
		frag   string
	}{
		{"no params", func(d *AnalysisDoc) { d.Params = nil }, "no params"},
		{"no features", func(d *AnalysisDoc) { d.Features = nil }, "no features"},
		{"empty orig", func(d *AnalysisDoc) { d.Params[0].Orig = nil }, "empty orig"},
		{"nan orig", func(d *AnalysisDoc) { d.Params[0].Orig[0] = math.NaN() }, "not finite"},
		{"block count", func(d *AnalysisDoc) { d.Features[0].Coeffs = d.Features[0].Coeffs[:1] }, "blocks"},
		{"block shape", func(d *AnalysisDoc) { d.Features[0].Coeffs[0] = []float64{1} }, "elements"},
		{"bad family", func(d *AnalysisDoc) { d.Features[0].Impact = "cubic" }, "unknown impact family"},
		{"neg curv", func(d *AnalysisDoc) { d.Features[1].Curv[0][0] = -1 }, "negative"},
		{"bad eps", func(d *AnalysisDoc) { d.Features[3].Eps = 0 }, "eps"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc := testDoc()
			c.mutate(&doc)
			err := doc.Validate()
			if err == nil {
				t.Fatal("malformed document validated")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("err = %v, want fragment %q", err, c.frag)
			}
			if _, berr := doc.Build(); berr == nil {
				t.Fatal("malformed document built")
			}
		})
	}
}

func TestAnalysisNumericTier(t *testing.T) {
	doc := testDoc()
	want := []bool{false, false, true, true}
	for i, f := range doc.Features {
		if got := f.NumericTier(); got != want[i] {
			t.Fatalf("feature %d NumericTier = %v, want %v", i, got, want[i])
		}
	}
}

func TestLoadAnalysisRejectsWrongKindAndVersion(t *testing.T) {
	if _, err := LoadAnalysis(strings.NewReader(`{"version": 99, "kind": "fepia"}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := LoadAnalysis(strings.NewReader(`{"version": 1, "kind": "hiperd"}`)); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := LoadAnalysis(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
