package exper

import (
	"errors"
	"math"

	"fepia/internal/core"
	"fepia/internal/hiperd"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

// RunE12 injects the remaining uncertainty the paper's introduction names —
// "sudden machine or link failures" — into the HiPer-D substrate: every
// machine of a shared-machine system is failed in turn, the orphaned
// applications are remapped by (a) classical load-balancing and (b) the
// robustness-aware remapper, and the combined normalized robustness before
// and after quantifies both the cost of the failure and the value of
// robustness-aware recovery.
func RunE12(cfg Config) (*Result, error) {
	res := &Result{ID: "E12", Title: "Machine-failure injection and robust recovery"}

	p := workload.DefaultHiPerD()
	p.DedicatedMachines = false
	p.Machines = 5
	p.Rate = 2
	sys, err := workload.HiPerD(p, stats.Named(cfg.Seed, "e12-system"))
	if err != nil {
		return nil, err
	}
	a0, err := sys.Analysis()
	if err != nil {
		return nil, err
	}
	rho0, err := a0.Robustness(core.Normalized{})
	if err != nil {
		return nil, err
	}

	rhoOf := func(s *hiperd.System) (float64, error) {
		a, err := s.Analysis()
		if err != nil {
			return 0, err
		}
		rho, err := a.Robustness(core.Normalized{})
		if err != nil {
			return 0, err
		}
		return rho.Value, nil
	}

	tb := report.NewTable("E12: robustness before/after each single-machine failure (rho_0 = pre-failure)",
		"failed machine", "apps orphaned", "rho greedy remap", "rho robust remap", "robust/greedy", "recoverable")
	tb.AddRow("(none)", 0, rho0.Value, rho0.Value, 1.0, true)

	neverWorse := true
	increased := 0
	recovered := 0
	improvedCases := 0
	for j := 0; j < len(sys.Machines); j++ {
		orphans := 0
		for _, m := range sys.Alloc {
			if m == j {
				orphans++
			}
		}
		greedy, errG := sys.FailMachine(j, hiperd.GreedyUtilRemap)
		robust, errR := sys.FailMachine(j, hiperd.RobustRemap)
		if errG != nil || errR != nil {
			if !errors.Is(errG, hiperd.ErrNoCapacity) && errG != nil {
				return nil, errG
			}
			tb.AddRow(j, orphans, "-", "-", "-", false)
			continue
		}
		recovered++
		rg, err := rhoOf(greedy)
		if err != nil {
			return nil, err
		}
		rr, err := rhoOf(robust)
		if err != nil {
			return nil, err
		}
		ratio := math.Inf(1)
		if rg > 0 {
			ratio = rr / rg
		}
		tb.AddRow(j, orphans, rg, rr, ratio, true)
		if rr < rg-1e-9 {
			neverWorse = false
		}
		if rr > rg+1e-9 {
			improvedCases++
		}
		if rr > rho0.Value+1e-9 {
			increased++
		}
	}
	res.Tables = append(res.Tables, tb)

	res.check("at least one failure is recoverable", recovered > 0,
		"%d of %d failures recovered", recovered, len(sys.Machines))
	res.check("robust remap never loses to greedy remap", neverWorse,
		"compared across %d recoverable failures", recovered)
	if increased > 0 {
		res.note("Counter-intuitive but correct: %d failures INCREASED the combined robustness. Consolidating orphans onto survivors removes cross-machine edges, and with them the link-utilization constraints and communication latency terms that were the robustness bottleneck. Losing hardware can relax the constraint set even as it concentrates load.", increased)
	}

	// DES sanity on one recovered configuration: it must still run.
	if recovered > 0 {
		for j := 0; j < len(sys.Machines); j++ {
			failed, err := sys.FailMachine(j, hiperd.RobustRemap)
			if err != nil {
				continue
			}
			sim, err := failed.Simulate(failed.OrigExecTimes(), failed.OrigMsgSizes(),
				cfg.size(200, 40), cfg.size(20, 4))
			if err != nil {
				return nil, err
			}
			res.check("remapped system completes all data sets in simulation",
				sim.DataSets == cfg.size(200, 40),
				"machine %d failed: %d data sets completed", j, sim.DataSets)
			break
		}
	}
	if improvedCases > 0 {
		res.note("Robustness-aware recovery strictly improved on load balancing in %d of %d recoverable failures: where the orphan lands determines how close the surviving machines sit to their throughput boundaries.", improvedCases, recovered)
	} else {
		res.note("On this draw greedy and robust recovery coincide; the robust remapper's value shows on tighter systems (see the hiperd package tests).")
	}
	return res, nil
}
