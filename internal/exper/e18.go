package exper

import (
	"fmt"
	"math"
	"time"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/scenario"
	"fepia/internal/stats"
)

// e18Doc generates one deterministic numeric-tier scenario: multiplicative
// and queueing features over multi-element parameters, the workload the
// hardware-limited accelerations (sharded impact cache, warm-started
// boundary search, k-probe kernels) target. Built through the scenario
// layer so every feature carries its vectorized ImpactK kernel.
func e18Doc(seed int64, i int) scenario.AnalysisDoc {
	src := stats.Named(seed, fmt.Sprintf("e18-%d", i))
	dims := []int{2, 3}
	params := make([]scenario.AnalysisParam, len(dims))
	for j, d := range dims {
		orig := make([]float64, d)
		for e := range orig {
			orig[e] = src.Uniform(0.5, 2)
		}
		params[j] = scenario.AnalysisParam{Name: fmt.Sprintf("p%d", j), Orig: orig}
	}
	block := func(lo, hi float64) [][]float64 {
		out := make([][]float64, len(dims))
		for j, d := range dims {
			out[j] = make([]float64, d)
			for e := range out[j] {
				out[j][e] = src.Uniform(lo, hi)
			}
		}
		return out
	}
	caps := block(4, 8)
	mx1, mx2 := 20+src.Uniform(0, 30), 4+src.Uniform(0, 4)
	return scenario.AnalysisDoc{
		Params: params,
		Features: []scenario.AnalysisFeature{
			{Name: "prod", Impact: scenario.ImpactMultiplicative, Max: &mx1,
				Scale: src.Uniform(0.5, 2), Pows: block(0.3, 1.2)},
			{Name: "queue", Impact: scenario.ImpactQueueing, Max: &mx2,
				Wgts: block(0.5, 2), Caps: caps, Eps: 1e-6},
		},
	}
}

// RunE18 measures the hardware-limited numeric tier: the same stream of
// robustness evaluations under (a) the plain scalar search, (b) the sharded
// impact cache, (c) cache + warm-started boundary search, and (d) cache +
// warm start + k-probe kernels — checking along the way that the
// accelerations never move a radius: uncached warm/k-probe runs must be
// bit-identical to the scalar baseline, cached runs agree to the cache's
// documented 1e-9 quantization bound.
func RunE18(cfg Config) (*Result, error) {
	res := &Result{ID: "E18", Title: "Hardware-limited numeric tier: sharded cache, warm start, k-probe"}

	nDocs := cfg.size(6, 3)
	repeats := cfg.size(8, 3)
	docs := make([]scenario.AnalysisDoc, nDocs)
	for i := range docs {
		docs[i] = e18Doc(cfg.Seed+1800, i)
	}

	// Scalar reference radii, one cold evaluation per scenario.
	want := make([]core.Robustness, nDocs)
	for i, doc := range docs {
		a, err := doc.Build()
		if err != nil {
			return nil, err
		}
		r, err := a.RobustnessCtx(cfg.Context(), core.Normalized{})
		if err != nil {
			return nil, err
		}
		want[i] = r
	}

	// --- Part 1: acceleration must not move radii --------------------------
	// Uncached warm + k-probe repeats are bit-identical to the scalar
	// reference; this is the same contract the internal/oracle differential
	// enforces, demonstrated here on the experiment workload.
	bitIdentical := true
	for i, doc := range docs {
		a, err := doc.Build()
		if err != nil {
			return nil, err
		}
		a.EnableWarmStart()
		for rep := 0; rep < 2 && bitIdentical; rep++ {
			r, err := a.RobustnessWith(cfg.Context(), core.Normalized{}, core.EvalOptions{KProbe: 8})
			if err != nil {
				return nil, err
			}
			for f := range r.PerFeature {
				if math.Float64bits(r.PerFeature[f].Value) != math.Float64bits(want[i].PerFeature[f].Value) {
					bitIdentical = false
					res.check("warm+k-probe radii are bit-identical to the scalar search", false,
						"doc %d rep %d feature %d: %.17g != %.17g",
						i, rep, f, r.PerFeature[f].Value, want[i].PerFeature[f].Value)
				}
			}
		}
	}
	if bitIdentical {
		res.check("warm+k-probe radii are bit-identical to the scalar search", true,
			"%d scenarios, 2 warm repeats each, KProbe=8", nDocs)
	}

	// --- Part 2: repeated-stream timing per setup ---------------------------
	// The service regime: each scenario evaluated `repeats` times (service
	// loops, candidate ranking, sweeps). Warm stats and cache stats verify
	// the accelerations actually engaged.
	type setup struct {
		name  string
		opt   core.EvalOptions
		cache bool
		warm  bool
	}
	setups := []setup{
		{"scalar", core.EvalOptions{}, false, false},
		{"warm", core.EvalOptions{}, false, true},
		{"warm+kprobe", core.EvalOptions{KProbe: 8}, false, true},
		{"cache+warm+kprobe", core.EvalOptions{KProbe: 8}, true, true},
	}
	tb := report.NewTable("E18: wall time for the repeated evaluation stream per setup",
		"setup", "evaluations", "total (ms)", "vs scalar", "max |dev| vs scalar")
	var scalarWall time.Duration
	var warmReuse int
	var cacheHits uint64
	for _, s := range setups {
		analyses := make([]*core.Analysis, nDocs)
		for i, doc := range docs {
			a, err := doc.Build()
			if err != nil {
				return nil, err
			}
			if s.cache {
				a.EnableImpactCacheWith(core.CacheOptions{Capacity: 1 << 14, Shards: 4})
			}
			if s.warm {
				a.EnableWarmStart()
			}
			analyses[i] = a
		}
		maxDev := 0.0
		start := time.Now()
		for rep := 0; rep < repeats; rep++ {
			for i, a := range analyses {
				r, err := a.RobustnessWith(cfg.Context(), core.Normalized{}, s.opt)
				if err != nil {
					return nil, err
				}
				for f := range r.PerFeature {
					if d := math.Abs(r.PerFeature[f].Value - want[i].PerFeature[f].Value); d > maxDev {
						maxDev = d
					}
				}
			}
		}
		wall := time.Since(start)
		if s.name == "scalar" {
			scalarWall = wall
		}
		ratio := "1.00x"
		if scalarWall > 0 && s.name != "scalar" {
			ratio = fmt.Sprintf("%.2fx", float64(wall)/float64(scalarWall))
		}
		tb.AddRow(s.name, nDocs*repeats, float64(wall.Milliseconds()), ratio, maxDev)
		if !s.cache && maxDev != 0 {
			res.check(fmt.Sprintf("%s radii are bit-exact over the stream", s.name),
				false, "max deviation %.3g", maxDev)
		}
		if s.cache && maxDev > 1e-9 {
			res.check(fmt.Sprintf("%s radii stay within the cache's 1e-9 agreement", s.name),
				false, "max deviation %.3g", maxDev)
		}
		if s.warm {
			for _, a := range analyses {
				ws := a.WarmStats()
				warmReuse += ws.RayReuses + ws.MemoHits
				// Invalidations are legitimate only when the quantized cache
				// composes with warm replay (a cache hit can perturb the
				// replayed objective); uncached warm runs must never reset.
				if !s.cache && ws.Invalidations != 0 {
					res.check("no warm-state invalidations on uncached frozen analyses", false,
						"%s: %+v", s.name, ws)
				}
			}
		}
		if s.cache {
			for _, a := range analyses {
				cacheHits += a.CacheStats().Hits
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	res.check("the sharded cache served repeat evaluations", cacheHits > 0,
		"%d hits across cached setups", cacheHits)
	res.check("warm starts reused recorded search state", warmReuse > 0,
		"%d ray reuses + memo hits across warm setups", warmReuse)
	res.note("Reading the table: the stream repeats each scenario, so warm starts replay converged brackets instead of re-searching and k-probe batching amortizes per-call overhead across whole probe blocks — both bit-exact (middle rows, deviation 0). The cached row trades exactness for memoization within the documented 1e-9 quantization bound; on the cheap analytic kernels of this workload the cache's keying overhead can outweigh its hits (it targets expensive impact functions — see BenchmarkRadiusNumericCached and docs/performance.md). Absolute ratios vary with the host.")
	return res, nil
}
