package exper

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"fepia/internal/report"
	"fepia/internal/scenario"
	"fepia/internal/server"
)

// RunE17 measures the persistent scenario store's restart warm-start: a
// daemon serves a scenario stream cold (populating the store), a
// "restarted" daemon reloads the store into its scenario cache before
// serving, and a control restart serves the same stream with no store. The
// experiment's checks are correctness gates — the warm start must load the
// whole store, the post-restart bodies must be bit-identical to the
// pre-restart ones (the store round-trip may not perturb a single float
// bit), and the warm daemon must actually serve from warm-started entries —
// while the timings are recorded as a table plus an advisory note
// (wall-clock on shared CI runners is not asserted; docs/performance.md).
func RunE17(cfg Config) (*Result, error) {
	res := &Result{ID: "E17", Title: "Scenario store: restart warm-start timing and bit-stability"}

	// The E16 workload generator already produces a deterministic mix of
	// analytic and numeric scenarios; reuse it under E17's own seed space.
	nDocs := cfg.size(12, 4)
	docs := make([]scenario.AnalysisDoc, nDocs)
	for i := range docs {
		docs[i] = e16Doc(cfg.Seed+1000, i)
	}

	dir, err := os.MkdirTemp("", "fepia-e17-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	storeCfg := server.Config{ScenarioCacheCap: nDocs, StoreDir: dir}

	serveAll := func(url string) ([]string, time.Duration, error) {
		bodies := make([]string, nDocs)
		start := time.Now()
		for i, doc := range docs {
			body, err := e16Eval(url, doc)
			if err != nil {
				return nil, 0, err
			}
			bodies[i] = body
		}
		return bodies, time.Since(start), nil
	}

	// --- Phase 1: cold daemon, store filling as it serves ------------------
	s1 := server.New(storeCfg)
	ts1 := httptest.NewServer(s1.Handler())
	refBodies, coldServe, err := serveAll(ts1.URL)
	ts1.Close()
	if err != nil {
		return nil, err
	}

	// --- Phase 2: restart over the same store, warm-started ----------------
	s2 := server.New(storeCfg)
	warmStart := time.Now()
	loaded, skipped := s2.WarmStart()
	warmLoad := time.Since(warmStart)
	res.check("warm start reloads the whole store", loaded == nDocs && skipped == 0,
		"loaded %d, skipped %d (want %d, 0)", loaded, skipped, nDocs)

	ts2 := httptest.NewServer(s2.Handler())
	warmBodies, warmServe, err := serveAll(ts2.URL)
	if err != nil {
		ts2.Close()
		return nil, err
	}
	identical := true
	for i := range refBodies {
		if warmBodies[i] != refBodies[i] {
			identical = false
			res.check("post-restart bodies are bit-identical to pre-restart", false,
				"doc %d:\n  got  %s\n  want %s", i, warmBodies[i], refBodies[i])
			break
		}
	}
	if identical {
		res.check("post-restart bodies are bit-identical to pre-restart", true,
			"%d scenarios round-tripped through the store", nDocs)
	}
	warmHits, err := e17WarmHits(ts2.URL)
	ts2.Close()
	if err != nil {
		return nil, err
	}
	res.check("post-restart requests hit warm-started cache entries",
		warmHits == uint64(nDocs), "warm hits %d, want %d", warmHits, nDocs)

	// --- Phase 3: control restart without a store (cold rebuild) -----------
	s3 := server.New(server.Config{ScenarioCacheCap: nDocs})
	ts3 := httptest.NewServer(s3.Handler())
	_, coldRestart, err := serveAll(ts3.URL)
	ts3.Close()
	if err != nil {
		return nil, err
	}

	tb := report.NewTable("E17: first-touch serve time per restart strategy",
		"phase", "requests", "total (ms)", "per request (ms)")
	perReq := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1000 / float64(nDocs)
	}
	tb.AddRow("cold start, store filling", nDocs, float64(coldServe.Milliseconds()), perReq(coldServe))
	tb.AddRow("warm-start load (no serving)", nDocs, float64(warmLoad.Milliseconds()), perReq(warmLoad))
	tb.AddRow("restart + warm start, first serve", nDocs, float64(warmServe.Milliseconds()), perReq(warmServe))
	tb.AddRow("restart without store, first serve", nDocs, float64(coldRestart.Milliseconds()), perReq(coldRestart))
	res.Tables = append(res.Tables, tb)

	if coldRestart > 0 {
		res.note("Warm-start payoff (advisory, not asserted): reloading the store took %.1fms and made the first post-restart pass %.2fx the storeless restart's first pass. The warm entries skip the per-scenario rebuild; evaluation work itself is unchanged.",
			float64(warmLoad.Microseconds())/1000, float64(warmServe)/float64(coldRestart))
	}
	return res, nil
}

// e17WarmHits reads the warm-started scenario-cache hit counter from /statz.
func e17WarmHits(base string) (uint64, error) {
	resp, err := http.Get(base + "/statz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st server.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Store == nil {
		return 0, nil
	}
	return st.Store.WarmHits, nil
}
