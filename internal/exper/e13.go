package exper

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/makespan"
	"fepia/internal/report"
	"fepia/internal/sched"
	"fepia/internal/stats"
	"fepia/internal/vec"
	"fepia/internal/workload"
)

// RunE13 applies the paper's multiple-kinds machinery to the TPDS 2004
// substrate itself: tasks stage their input data (bytes, π_2) over each
// machine's ingest link before executing (seconds, π_1), so the per-machine
// finish times — and the makespan requirement — depend on two perturbation
// kinds at once. The experiment verifies the per-kind radii against
// hand-derivable hyperplane distances, checks the DES agrees with the
// analytic finish times exactly, validates the combined certified ball
// empirically, and contrasts the naive "concatenate raw units" radius with
// the normalized one — the paper's core warning made concrete.
func RunE13(cfg Config) (*Result, error) {
	res := &Result{ID: "E13", Title: "Mixed-kind makespan: execution times + input sizes"}
	const tau = 1.3
	instances := cfg.size(15, 3)

	type row struct {
		rhoExec, rhoSize, rhoComb float64
		simErr                    float64
		ballViol                  int
		err                       error
	}
	rows := make([]row, instances)
	parallelFor(instances, func(inst int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e13-%d", inst))
		m, err := workload.Makespan(workload.MakespanParams{
			Tasks: 24, Machines: 4, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4,
		}, src)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		alloc, err := sched.MinMin(m)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		sizes := make(vec.V, m.Tasks)
		for t := range sizes {
			sizes[t] = src.Uniform(1000, 50000)
		}
		bws := make(vec.V, m.Machines)
		for j := range bws {
			bws[j] = src.Uniform(5000, 20000)
		}
		sys, err := makespan.NewMixed(m, alloc, sizes, bws)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		a, err := sys.MixedAnalysis(tau)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		rE, err := a.RobustnessSingle(0)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		rS, err := a.RobustnessSingle(1)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		rho, err := a.Robustness(core.Normalized{})
		if err != nil {
			rows[inst] = row{err: err}
			return
		}

		// DES cross-validation at a perturbed point.
		c := sys.OrigTimes().Scale(1.07)
		sz := sizes.Scale(0.93)
		sim, err := sys.SimulateMixed(c, sz)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		ana, err := sys.MixedFinishTimes(c, sz)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		simErr := 0.0
		for j := range ana {
			if d := math.Abs(sim[j] - ana[j]); d > simErr {
				simErr = d
			}
		}

		// Certified-ball soundness.
		bound := tau * sys.OrigMixedMakespan()
		nt := m.Tasks
		origC := sys.OrigTimes()
		viol := 0
		for trial := 0; trial < cfg.size(100, 20); trial++ {
			d := make(vec.V, 2*nt)
			for i := range d {
				d[i] = src.Normal(0, 1)
			}
			dd := d.Normalize().Scale(rho.Value * 0.999 * src.Float64())
			cT := origC.Mul(vec.Ones(nt).Add(dd[:nt]))
			szT := sizes.Mul(vec.Ones(nt).Add(dd[nt:]))
			ms, err := sys.MixedMakespan(cT, szT)
			if err != nil {
				rows[inst] = row{err: err}
				return
			}
			if ms > bound+1e-9 {
				viol++
			}
		}
		rows[inst] = row{rhoExec: rE.Value, rhoSize: rS.Value, rhoComb: rho.Value, simErr: simErr, ballViol: viol}
	})

	tb := report.NewTable("E13: mixed-kind min-min allocations (tau=1.3)",
		"instance", "rho vs exec (s)", "rho vs sizes (bytes)", "combined rho (dimensionless)", "max |DES - analytic|")
	var worstSim float64
	totalViol := 0
	for i, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		if r.simErr > worstSim {
			worstSim = r.simErr
		}
		totalViol += r.ballViol
		if i < 8 {
			tb.AddRow(i, r.rhoExec, r.rhoSize, r.rhoComb, r.simErr)
		}
	}
	res.Tables = append(res.Tables, tb)

	res.check("DES finish times equal the analytic model exactly",
		worstSim < 1e-9, "max deviation %.3g over %d instances", worstSim, instances)
	res.check("no violation inside the mixed certified ball",
		totalViol == 0, "%d violations across all instances", totalViol)
	res.check("per-kind radii carry incomparable magnitudes (units matter)",
		func() bool {
			for _, r := range rows {
				if r.rhoSize < 10*r.rhoExec {
					return false // byte-scale radii dwarf second-scale ones
				}
			}
			return true
		}(), "size radii are orders of magnitude above exec radii — naive concatenation would be dominated by bytes")
	res.note("The same allocation owns two radii in incompatible units; only the dimensionless combined rho supports cross-allocation comparison. This is the paper's Section 3 scenario realized on the substrate its predecessor paper evaluated.")
	return res, nil
}
