package exper

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// RunE2 verifies the paper's Step-1 closed form (Section 3.1): for linear
// features φ = Σ k_m π_m over one-element parameters with requirement
// β^max = β·φ^orig, the single-parameter robustness radius is
// (β−1)/k_j · Σ k_m π_m^orig. The experiment sweeps randomized
// (n, k, β, π^orig) instances and compares three values per instance and
// parameter: the paper formula, the engine's analytic hyperplane tier, and
// the engine's numeric level-set tier (same system declared without the
// Linear hint).
func RunE2(cfg Config) (*Result, error) {
	res := &Result{ID: "E2", Title: "Single-parameter radius closed form"}
	trials := cfg.size(200, 20)

	type row struct {
		n                    int
		relErrAna, relErrNum float64
		err                  error
	}
	rows := make([]row, trials)
	parallelFor(trials, func(i int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e2-%d", i))
		n := src.Intn(7) + 2
		k := make(vec.V, n)
		orig := make(vec.V, n)
		for j := range k {
			k[j] = src.Uniform(0.1, 10)
			orig[j] = src.Uniform(0.1, 10)
		}
		beta := src.Uniform(1.05, 3)

		// Analytic-tier system.
		a, err := core.LinearOneElemAnalysis(k, orig, beta)
		if err != nil {
			rows[i] = row{err: err}
			return
		}
		// Numeric-tier system: same feature as an opaque Impact.
		params := make([]core.Perturbation, n)
		for j := 0; j < n; j++ {
			params[j] = core.Perturbation{Name: fmt.Sprintf("pi_%d", j), Orig: vec.Of(orig[j])}
		}
		phiOrig := k.Dot(orig)
		kk := k.Clone()
		aNum, err := core.NewAnalysis([]core.Feature{{
			Name:   "phi",
			Bounds: core.MaxOnly(beta * phiOrig),
			Impact: func(vs []vec.V) float64 {
				var s float64
				for j := range vs {
					s += kk[j] * vs[j][0]
				}
				return s
			},
		}}, params)
		if err != nil {
			rows[i] = row{err: err}
			return
		}

		var worstAna, worstNum float64
		for j := 0; j < n; j++ {
			want, err := core.SingleParamRadiusLinear(k, orig, j, beta)
			if err != nil {
				rows[i] = row{err: err}
				return
			}
			ra, err := a.RadiusSingle(0, j)
			if err != nil {
				rows[i] = row{err: err}
				return
			}
			rn, err := aNum.RadiusSingle(0, j)
			if err != nil {
				rows[i] = row{err: err}
				return
			}
			if d := math.Abs(ra.Value-want) / want; d > worstAna {
				worstAna = d
			}
			if d := math.Abs(rn.Value-want) / want; d > worstNum {
				worstNum = d
			}
		}
		rows[i] = row{n: n, relErrAna: worstAna, relErrNum: worstNum}
	})

	// Aggregate per dimension count.
	perN := map[int][]row{}
	var maxAna, maxNum float64
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		perN[r.n] = append(perN[r.n], r)
		if r.relErrAna > maxAna {
			maxAna = r.relErrAna
		}
		if r.relErrNum > maxNum {
			maxNum = r.relErrNum
		}
	}
	tb := report.NewTable("E2: engine vs paper closed form, max relative error by n",
		"n", "instances", "max relerr analytic tier", "max relerr numeric tier")
	for n := 2; n <= 8; n++ {
		rs := perN[n]
		if len(rs) == 0 {
			continue
		}
		var a, b float64
		for _, r := range rs {
			if r.relErrAna > a {
				a = r.relErrAna
			}
			if r.relErrNum > b {
				b = r.relErrNum
			}
		}
		tb.AddRow(n, len(rs), a, b)
	}
	res.Tables = append(res.Tables, tb)

	res.check("analytic tier reproduces the paper formula to 1e-9", maxAna < 1e-9,
		"max relative error %.3g over %d instances", maxAna, trials)
	res.check("numeric tier agrees to 1e-4", maxNum < 1e-4,
		"max relative error %.3g over %d instances", maxNum, trials)
	res.note("Both computation tiers reproduce r_mu(phi, pi_j) = (beta-1)/k_j * sum_m k_m pi_m_orig across randomized instances.")
	return res, nil
}
