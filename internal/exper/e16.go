package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/report"
	"fepia/internal/scenario"
	"fepia/internal/server"
	"fepia/internal/stats"
)

// RunE16 measures the scatter-gather overhead of the cluster coordinator:
// the same request stream is pushed through a coordinator fronting one
// in-process worker and through one fronting three, and through a bare
// single-node daemon as the reference. The experiment's checks are equality
// checks — every setup must return bit-identical robustness bodies (the
// exact-decomposition contract of internal/cluster) — and the timings are
// recorded as a table plus notes, not asserted: wall-clock on shared CI
// runners is advisory (docs/performance.md).
func RunE16(cfg Config) (*Result, error) {
	res := &Result{ID: "E16", Title: "Cluster scatter-gather overhead: 1 vs 3 in-process workers"}

	// --- Workload: a deterministic mix of analytic and numeric scenarios ---
	nDocs := cfg.size(12, 4)
	rounds := cfg.size(4, 2)
	docs := make([]scenario.AnalysisDoc, nDocs)
	for i := range docs {
		docs[i] = e16Doc(cfg.Seed, i)
	}

	// --- Fixtures ---------------------------------------------------------
	newWorker := func() *httptest.Server {
		return httptest.NewServer(server.New(server.Config{}).Handler())
	}
	workers := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range workers {
		workers[i] = newWorker()
		defer workers[i].Close()
		urls[i] = workers[i].URL
	}
	single := newWorker()
	defer single.Close()

	newCoord := func(ws []string) (*httptest.Server, func(), error) {
		c, err := cluster.New(cluster.Config{Workers: ws, HealthInterval: 100 * time.Millisecond})
		if err != nil {
			return nil, nil, err
		}
		front := httptest.NewServer(c.Handler())
		return front, func() { front.Close(); c.Close() }, nil
	}
	coord1, close1, err := newCoord(urls[:1])
	if err != nil {
		return nil, err
	}
	defer close1()
	coord3, close3, err := newCoord(urls)
	if err != nil {
		return nil, err
	}
	defer close3()

	// --- Equality: every setup returns the same bodies --------------------
	// (Run before the timed rounds; this also warms connections so the
	// timings compare steady-state scatter cost, not TCP setup.)
	refBodies := make([]string, nDocs)
	for i, doc := range docs {
		ref, err := e16Eval(single.URL, doc)
		if err != nil {
			return nil, err
		}
		refBodies[i] = ref
		for _, front := range []struct {
			name string
			url  string
		}{{"coordinator/1", coord1.URL}, {"coordinator/3", coord3.URL}} {
			got, err := e16Eval(front.url, doc)
			if err != nil {
				return nil, err
			}
			if got != ref {
				res.check("every coordinator setup is bit-identical to the single node", false,
					"doc %d via %s:\n  got  %s\n  want %s", i, front.name, got, ref)
				return res, nil
			}
		}
	}
	res.check("every coordinator setup is bit-identical to the single node",
		true, "%d scenarios x {single, coordinator/1, coordinator/3}", nDocs)

	// --- Timed rounds ------------------------------------------------------
	run := func(url string) (time.Duration, error) {
		start := time.Now()
		var firstErr error
		var mu sync.Mutex
		for r := 0; r < rounds; r++ {
			parallelFor(nDocs, func(i int) {
				if _, err := e16Eval(url, docs[i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			})
		}
		return time.Since(start), firstErr
	}
	setups := []struct {
		name string
		url  string
	}{
		{"single node", single.URL},
		{"coordinator, 1 worker", coord1.URL},
		{"coordinator, 3 workers", coord3.URL},
	}
	total := rounds * nDocs
	tb := report.NewTable("E16: wall time for the same request stream per setup",
		"setup", "requests", "total (ms)", "per request (ms)")
	durs := make([]time.Duration, len(setups))
	for s, setup := range setups {
		d, err := run(setup.url)
		if err != nil {
			return nil, err
		}
		durs[s] = d
		tb.AddRow(setup.name, total, float64(d.Milliseconds()),
			float64(d.Microseconds())/1000/float64(total))
	}
	res.Tables = append(res.Tables, tb)
	res.check("all timed rounds completed", true, "%d requests per setup", total)
	if durs[0] > 0 {
		res.note("Scatter-gather overhead (advisory, not asserted): coordinator/1 is %.2fx and coordinator/3 is %.2fx the single-node wall time on this run. The 1-worker coordinator isolates the pure HTTP+merge tax; the 3-worker ratio additionally reflects parallel shard wins on multi-feature scenarios minus the extra hop.",
			float64(durs[1])/float64(durs[0]), float64(durs[2])/float64(durs[0]))
	}
	return res, nil
}

// e16Doc builds the i-th workload scenario: alternating analytic (linear +
// quadratic, exercising the closed-form tiers end to end) and numeric
// (multiplicative) features over one or two parameter kinds, with sizes
// varied by index so the three-worker setup genuinely spreads classes.
func e16Doc(seed int64, i int) scenario.AnalysisDoc {
	src := stats.Named(seed, fmt.Sprintf("e16-doc-%d", i))
	nParams := 1 + i%2
	doc := scenario.AnalysisDoc{Version: scenario.Version, Kind: "fepia"}
	for j := 0; j < nParams; j++ {
		dim := 1 + (i+j)%2
		orig := make([]float64, dim)
		for e := range orig {
			orig[e] = src.Uniform(1, 4)
		}
		doc.Params = append(doc.Params, scenario.AnalysisParam{
			Name: fmt.Sprintf("pi_%d", j+1), Orig: orig,
		})
	}
	blocks := func(draw func() float64) [][]float64 {
		out := make([][]float64, len(doc.Params))
		for j, p := range doc.Params {
			out[j] = make([]float64, len(p.Orig))
			for e := range out[j] {
				out[j][e] = draw()
			}
		}
		return out
	}
	lin := scenario.AnalysisFeature{
		Name: "lat", Coeffs: blocks(func() float64 { return src.Uniform(0.5, 2) }),
	}
	linMax := 20 + src.Uniform(5, 20)
	lin.Max = &linMax
	quad := scenario.AnalysisFeature{
		Name: "jitter", Impact: "quadratic",
		Curv:   blocks(func() float64 { return src.Uniform(0.2, 1) }),
		Center: blocks(func() float64 { return src.Uniform(0, 1) }),
	}
	quadMax := 30 + src.Uniform(5, 15)
	quad.Max = &quadMax
	doc.Features = append(doc.Features, lin, quad)
	if i%2 == 0 {
		mult := scenario.AnalysisFeature{
			Name: "tput", Impact: "multiplicative", Scale: 1,
			Pows: blocks(func() float64 { return []float64{0.5, 1}[src.Intn(2)] }),
		}
		multMax := 50 + src.Uniform(10, 50)
		mult.Max = &multMax
		doc.Features = append(doc.Features, mult)
	}
	return doc
}

// e16Eval posts one robustness evaluation and returns the response body
// normalized for comparison (requestId, elapsedMs, and cluster provenance
// stripped — everything else must match bit for bit).
func e16Eval(base string, doc scenario.AnalysisDoc) (string, error) {
	body, err := json.Marshal(server.EvalRequest{Scenario: doc})
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/robustness", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("e16: %s: status %d: %s", base, resp.StatusCode, data)
	}
	var full struct {
		Robustness json.RawMessage `json:"robustness"`
		Class      string          `json:"class"`
		Breaker    string          `json:"breaker"`
	}
	if err := json.Unmarshal(data, &full); err != nil {
		return "", err
	}
	norm, err := json.Marshal(full)
	if err != nil {
		return "", err
	}
	return string(norm), nil
}
