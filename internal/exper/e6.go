package exper

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
	"fepia/internal/workload"
)

// RunE6 exercises the full mixed-kind pipeline on the HiPer-D substrate —
// the paper's motivating system: perturbations in application execution
// times (seconds) and message lengths (bytes) against throughput and latency
// features. It reports per-kind robustness (Eq. 1), the combined normalized
// robustness ρ (Eq. 2 in P-space), and cross-validates the analytic impact
// functions with the discrete-event simulator: points certified inside the
// radius must simulate within QoS, and the critical boundary point pushed
// beyond must violate.
func RunE6(cfg Config) (*Result, error) {
	res := &Result{ID: "E6", Title: "HiPer-D mixed-kind robustness"}

	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.Named(cfg.Seed, "e6-system"))
	if err != nil {
		return nil, err
	}
	a, err := sys.Analysis()
	if err != nil {
		return nil, err
	}

	ctx := cfg.Context()

	// Per-kind robustness.
	tb := report.NewTable("E6: per-kind robustness (Eq. 1)", "perturbation", "unit", "rho", "critical feature")
	for j, p := range a.Params {
		r, err := a.RobustnessSingleCtx(ctx, j)
		if err != nil {
			return nil, err
		}
		tb.AddRow(p.Name, p.Unit, r.Value, a.Features[r.Feature].Name)
	}
	res.Tables = append(res.Tables, tb)

	// Combined dimensionless robustness.
	rho, err := a.RobustnessCtx(ctx, core.Normalized{})
	if err != nil {
		return nil, err
	}
	tb2 := report.NewTable("E6: combined normalized robustness (Eq. 2)", "quantity", "value")
	tb2.AddRow("rho_mu(Phi, P)", rho.Value)
	tb2.AddRow("critical feature", a.Features[rho.Critical].Name)
	tb2.AddRow("P-space dimension", a.TotalDim())
	tb2.AddRow("features analyzed", len(a.Features))
	res.Tables = append(res.Tables, tb2)
	res.check("combined robustness is positive and finite",
		rho.Value > 0 && !math.IsInf(rho.Value, 1), "rho = %v", rho.Value)

	// DES cross-validation at the nominal point.
	e0 := sys.OrigExecTimes()
	m0 := sys.OrigMsgSizes()
	nomLat, err := sys.WorstLatency(e0, m0)
	if err != nil {
		return nil, err
	}
	sim0, err := sys.Simulate(e0, m0, cfg.size(300, 60), cfg.size(30, 6))
	if err != nil {
		return nil, err
	}
	tb3 := report.NewTable("E6: analytic model vs discrete-event simulation",
		"operating point", "analytic latency", "simulated mean", "simulated max", "QoS analytic", "QoS simulated")
	tb3.AddRow("nominal", nomLat, sim0.MeanLatency, sim0.MaxLatency, true, sim0.MaxLatency <= sys.LatencyMax)
	res.check("DES matches analytic latency at the nominal point",
		math.Abs(sim0.MeanLatency-nomLat) < 1e-6*(1+nomLat),
		"analytic %.6g vs simulated %.6g", nomLat, sim0.MeanLatency)

	// Certified interior points simulate within QoS.
	src := stats.Named(cfg.Seed, "e6-mc")
	pOrig := vec.Ones(a.TotalDim())
	nA := len(e0)
	interior := cfg.size(12, 4)
	allInsideOK := true
	for trial := 0; trial < interior; trial++ {
		d := make(vec.V, a.TotalDim())
		for i := range d {
			d[i] = src.Normal(0, 1)
		}
		d = d.Normalize().Scale(rho.Value * src.Uniform(0.2, 0.95))
		p := pOrig.Add(d)
		e := e0.Mul(p[:nA])
		m := m0.Mul(p[nA:])
		if !e.AllPositive() || !m.AllPositive() {
			continue
		}
		anaLat, err := sys.WorstLatency(e, m)
		if err != nil {
			return nil, err
		}
		sim, err := sys.Simulate(e, m, cfg.size(200, 50), cfg.size(20, 5))
		if err != nil {
			return nil, err
		}
		okSim := sim.MaxLatency <= sys.LatencyMax+1e-9
		okAna, err := sys.QoSOK(e, m)
		if err != nil {
			return nil, err
		}
		if trial < 4 {
			tb3.AddRow(fmt.Sprintf("inside radius #%d (‖ΔP‖=%.3f)", trial, d.Norm2()),
				anaLat, sim.MeanLatency, sim.MaxLatency, okAna, okSim)
		}
		if !okAna || !okSim {
			allInsideOK = false
		}
	}
	res.check("every point inside rho meets QoS analytically and in simulation",
		allInsideOK, "%d interior samples validated", interior)

	// Beyond the critical boundary: violation expected.
	crit := rho.PerFeature[rho.Critical]
	pBeyond := pOrig.Add(crit.Point.Sub(pOrig).Scale(1.10))
	eB := e0.Mul(pBeyond[:nA])
	mB := m0.Mul(pBeyond[nA:])
	okBeyond, err := sys.QoSOK(eB, mB)
	if err != nil {
		return nil, err
	}
	anaB, err := sys.WorstLatency(eB, mB)
	if err != nil {
		return nil, err
	}
	simB, err := sys.Simulate(eB, mB, cfg.size(200, 50), cfg.size(20, 5))
	if err != nil {
		return nil, err
	}
	simViolates := simB.MaxLatency > sys.LatencyMax
	tb3.AddRow("10% beyond critical boundary", anaB, simB.MeanLatency, simB.MaxLatency, okBeyond, !simViolates)
	res.Tables = append(res.Tables, tb3)
	res.check("crossing the critical boundary violates QoS analytically",
		!okBeyond, "QoSOK = %v beyond the boundary", okBeyond)

	res.note("The critical feature is %q: the robustness bottleneck of this allocation under simultaneous execution-time and message-length perturbations. The DES run confirms the analytic impact functions (contention-free configuration: one app per machine).",
		a.Features[rho.Critical].Name)
	return res, nil
}
