package exper

import (
	"fmt"
	"math"

	"fepia/internal/etc"
	"fepia/internal/report"
	"fepia/internal/sched"
	"fepia/internal/stats"
)

// RunE19 closes the loop the ranking experiments (E7, E13) leave open:
// instead of scoring allocations that makespan heuristics produced, the
// robustness metric drives the allocation search itself. On CVB instances,
// annealing and GA searches run under both objectives — maximize ρ, and
// minimize makespan subject to ρ ≥ ρ_min — with every generation scored
// through the batch engine, and the results are compared against the
// min-min baseline. Along the way the experiment verifies the service
// contract: the closed-form fast path, the serial engine, and the batch
// engine return bit-identical trajectories for the same seed.
func RunE19(cfg Config) (*Result, error) {
	res := &Result{ID: "E19", Title: "Robustness-aware allocation search vs heuristic baselines"}
	const tau = 1.4
	instances := cfg.size(6, 2)
	tasks := cfg.size(36, 16)
	machines := cfg.size(8, 4)
	gens := cfg.size(24, 6)
	pop := cfg.size(32, 12)
	steps := cfg.size(1200, 200)

	type row struct {
		algo, objective                string
		rho, baseRho, makespan, baseMS float64
		candidates                     int
		radiusEvals                    int64
	}
	var rows []row
	bitIdentical := true
	searchBeatsBaseline := true
	constraintHeld := true
	var totalEvals int64

	for inst := 0; inst < instances; inst++ {
		src := stats.Named(cfg.Seed+1900, fmt.Sprintf("e19-instance-%d", inst))
		m, err := etc.CVB(etc.CVBParams{Tasks: tasks, Machines: machines, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, src)
		if err != nil {
			return nil, err
		}
		mm, err := sched.MinMin(m)
		if err != nil {
			return nil, err
		}
		baseMS := allocMakespan(m, mm)

		for _, opt := range []sched.SearchOptions{
			{Algo: sched.AlgoAnneal, Objective: sched.ObjectiveMaxRho, Tau: tau, Seed: int64(inst + 1), Steps: steps},
			{Algo: sched.AlgoGA, Objective: sched.ObjectiveMaxRho, Tau: tau, Seed: int64(inst + 1), Population: pop, Generations: gens},
			{Algo: sched.AlgoGA, Objective: sched.ObjectiveMinMakespan, Tau: tau, RhoMin: 0.5, Seed: int64(inst + 1), Population: pop, Generations: gens},
		} {
			bound, err := sched.ResolveBound(m, opt)
			if err != nil {
				return nil, err
			}
			baseRho := sched.ClosedFormScore(m, mm, bound)
			ctx := cfg.Context()

			// The deliverable path: generations scored through the batch
			// engine.
			batch, err := sched.Search(ctx, m, &sched.EngineEvaluator{M: m, Bound: bound}, opt, nil)
			if err != nil {
				return nil, err
			}
			totalEvals += batch.RadiusEvals

			// Differential legs on the first instance only (they re-run the
			// whole search): closed-form fast path and serial engine must be
			// bit-identical to the batch trajectory.
			if inst == 0 {
				fast, err := sched.Search(ctx, m, nil, opt, nil)
				if err != nil {
					return nil, err
				}
				serial, err := sched.Search(ctx, m, &sched.EngineEvaluator{M: m, Bound: bound, Serial: true}, opt, nil)
				if err != nil {
					return nil, err
				}
				for _, other := range []*sched.SearchResult{fast, serial} {
					if !sameAlloc(batch.Best, other.Best) ||
						math.Float64bits(batch.BestRho) != math.Float64bits(other.BestRho) {
						bitIdentical = false
					}
				}
			}

			switch opt.Objective {
			case sched.ObjectiveMaxRho:
				if batch.BestRho < baseRho {
					searchBeatsBaseline = false
				}
			case sched.ObjectiveMinMakespan:
				if batch.BestFeasible && batch.BestRho >= opt.RhoMin && batch.BestMakespan > bound {
					constraintHeld = false
				}
			}
			rows = append(rows, row{
				algo: opt.Algo, objective: opt.Objective,
				rho: batch.BestRho, baseRho: baseRho,
				makespan: batch.BestMakespan, baseMS: baseMS,
				candidates: batch.Candidates, radiusEvals: batch.RadiusEvals,
			})
		}
	}

	tb := report.NewTable("E19: search outcomes vs min-min baseline (tau=1.40, per instance x algo x objective)",
		"algo", "objective", "best rho", "min-min rho", "best makespan", "min-min makespan", "candidates", "radius evals")
	for _, r := range rows {
		tb.AddRow(r.algo, r.objective, r.rho, r.baseRho, r.makespan, r.baseMS, r.candidates, r.radiusEvals)
	}
	res.Tables = append(res.Tables, tb)

	res.check("backends-bit-identical", bitIdentical,
		"fast/serial/batch trajectories agree bitwise on instance 0")
	res.check("search-beats-min-min", searchBeatsBaseline,
		"max-rho search never falls below the min-min baseline rho (heuristic seeds + elitism guarantee it)")
	res.check("min-makespan-respects-bound", constraintHeld,
		"feasible min-makespan winners stay within the requirement bound")
	res.check("radius-evals-batched", totalEvals >= int64(cfg.size(10000, 1000)),
		"%d per-feature radius evaluations went through the batch engine", totalEvals)
	res.note("one /v1/search request on the full-size configuration drives the same pipeline: see BenchmarkAllocationSearch")
	return res, nil
}

// allocMakespan is the max machine load of an allocation.
func allocMakespan(m *etc.Matrix, alloc []int) float64 {
	loads := make([]float64, m.Machines)
	for t, j := range alloc {
		loads[j] += m.At(t, j)
	}
	ms := 0.0
	for _, l := range loads {
		if l > ms {
			ms = l
		}
	}
	return ms
}

func sameAlloc(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
