package exper

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// RunE8 is the weighting ablation: pairs of systems with the same number of
// perturbation parameters but different coefficients, requirements, and
// original values. A usable robustness metric must separate them. The
// sensitivity weighting scores every pair identically (Section 3.1); the
// normalized weighting separates them (Section 3.2). This is the paper's
// argument rendered as a measurement.
func RunE8(cfg Config) (*Result, error) {
	res := &Result{ID: "E8", Title: "Weighting ablation"}
	pairs := cfg.size(50, 8)

	type outcome struct {
		n                int
		sensA, sensB     float64
		normA, normB     float64
		sensGap, normGap float64
		err              error
	}
	outs := make([]outcome, pairs)
	parallelFor(pairs, func(i int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e8-%d", i))
		n := src.Intn(5) + 2
		mk := func() (*core.Analysis, error) {
			k := make(vec.V, n)
			orig := make(vec.V, n)
			for j := range k {
				k[j] = src.Uniform(0.1, 10)
				orig[j] = src.Uniform(0.1, 10)
			}
			return core.LinearOneElemAnalysis(k, orig, src.Uniform(1.05, 3))
		}
		aA, err := mk()
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		aB, err := mk()
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		read := func(a *core.Analysis, w core.Weighting) (float64, error) {
			r, err := a.CombinedRadius(0, w)
			if err != nil {
				return 0, err
			}
			return r.Value, nil
		}
		sA, err := read(aA, core.Sensitivity{})
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		sB, err := read(aB, core.Sensitivity{})
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		nA, err := read(aA, core.Normalized{})
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		nB, err := read(aB, core.Normalized{})
		if err != nil {
			outs[i] = outcome{err: err}
			return
		}
		outs[i] = outcome{
			n:     n,
			sensA: sA, sensB: sB, normA: nA, normB: nB,
			sensGap: math.Abs(sA - sB),
			normGap: math.Abs(nA - nB),
		}
	})

	tb := report.NewTable("E8: independently drawn system pairs with equal n",
		"pair", "n", "sens A", "sens B", "|gap|", "norm A", "norm B", "|gap|")
	var maxSensGap float64
	separated := 0
	for i, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		if o.sensGap > maxSensGap {
			maxSensGap = o.sensGap
		}
		if o.normGap > 1e-6 {
			separated++
		}
		if i < 10 {
			tb.AddRow(i, o.n, o.sensA, o.sensB, o.sensGap, o.normA, o.normB, o.normGap)
		}
	}
	res.Tables = append(res.Tables, tb)

	res.check("sensitivity weighting cannot separate any pair", maxSensGap < 1e-9,
		"max |gap| = %.3g over %d pairs", maxSensGap, pairs)
	res.check("normalized weighting separates (almost) every pair",
		separated >= pairs*9/10,
		"%d of %d pairs separated", separated, pairs)
	res.note("Two allocations that differ in every input the metric should reflect are indistinguishable under sensitivity weighting; the normalized metric orders them. This is the paper's case for Section 3.2 made operational.")
	return res, nil
}
