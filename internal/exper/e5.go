package exper

import (
	"fmt"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// RunE5 validates the paper's operating-point recipe: to decide whether the
// system tolerates a given set of π_j values, (a) convert them to P-space,
// (b) measure ‖P − P^orig‖₂, (c) compare with the robustness radius. The
// check must be *sound* (never declares a violating point tolerable) and its
// conservatism (feasible points it declines to certify) is quantified — the
// radius is a worst-case-direction guarantee, so some slack is inherent.
func RunE5(cfg Config) (*Result, error) {
	res := &Result{ID: "E5", Title: "Operating-point recipe"}

	// Mixed-kind linear system: two execution times (seconds) and two
	// message lengths (bytes) feeding two features with different bounds.
	params := []core.Perturbation{
		{Name: "exec-times", Unit: "s", Orig: vec.Of(1, 2)},
		{Name: "msg-lengths", Unit: "bytes", Orig: vec.Of(1000, 3000)},
	}
	f1 := &core.LinearImpact{Coeffs: []vec.V{vec.Of(2, 3), vec.Of(0.001, 0.002)}}
	f2 := &core.LinearImpact{Coeffs: []vec.V{vec.Of(1, 0), vec.Of(0.004, 0)}}
	origVals := []vec.V{vec.Of(1, 2), vec.Of(1000, 3000)}
	a, err := core.NewAnalysis([]core.Feature{
		{Name: "latency", Bounds: core.MaxOnly(1.4 * f1.Eval(origVals)), Linear: f1},
		{Name: "util", Bounds: core.MaxOnly(1.6 * f2.Eval(origVals)), Linear: f2},
	}, params)
	if err != nil {
		return nil, err
	}

	trials := cfg.size(4000, 400)
	type verdict struct {
		tolerable, violates bool
		err                 error
	}
	verdicts := make([]verdict, trials)
	parallelFor(trials, func(i int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e5-%d", i))
		// Sample relative perturbations up to ±60% per element.
		vals := []vec.V{
			vec.Of(1*src.Uniform(0.4, 1.6), 2*src.Uniform(0.4, 1.6)),
			vec.Of(1000*src.Uniform(0.4, 1.6), 3000*src.Uniform(0.4, 1.6)),
		}
		tol, err := a.Tolerable(vals, core.Normalized{})
		if err != nil {
			verdicts[i] = verdict{err: err}
			return
		}
		verdicts[i] = verdict{tolerable: tol, violates: a.Violates(vals)}
	})

	var certOK, certBad, declinedOK, declinedBad int
	for _, v := range verdicts {
		if v.err != nil {
			return nil, v.err
		}
		switch {
		case v.tolerable && !v.violates:
			certOK++
		case v.tolerable && v.violates:
			certBad++ // unsound — must never happen
		case !v.tolerable && !v.violates:
			declinedOK++
		default:
			declinedBad++
		}
	}
	tb := report.NewTable("E5: recipe verdict vs ground truth over random operating points",
		"verdict", "feasible (ground truth)", "violating (ground truth)")
	tb.AddRow("certified tolerable", certOK, certBad)
	tb.AddRow("not certified", declinedOK, declinedBad)
	res.Tables = append(res.Tables, tb)

	res.check("soundness: no violating point is certified", certBad == 0,
		"%d unsound certifications out of %d points", certBad, trials)
	feasible := certOK + declinedOK
	if feasible > 0 {
		res.note("Conservatism: %d of %d feasible points (%.1f%%) were certified; the rest lie outside the worst-case radius but happen to be feasible in their particular direction.",
			certOK, feasible, 100*float64(certOK)/float64(feasible))
	}
	res.check("recipe certifies a nontrivial region", certOK > 0,
		"%d points certified", certOK)
	res.check("recipe rejects all actual violations", declinedBad+certBad == declinedBad,
		"all %d violating samples were declined", declinedBad)
	return res, nil
}
