package exper

import (
	"fmt"

	"fepia/internal/etc"
	"fepia/internal/makespan"
	"fepia/internal/report"
	"fepia/internal/sched"
	"fepia/internal/stats"
)

// RunE14 sweeps the two workload knobs of the heterogeneous-computing
// evaluation methodology — the requirement tightness τ and the ETC
// heterogeneity/consistency class — and reports how the robustness metric
// responds on min-min allocations. The τ sweep has an analytic ground truth
// (ρ = (τ·M − F_j)/√n_j is affine and increasing in τ per machine, hence ρ
// is increasing and piecewise affine), which the experiment verifies
// exactly; the heterogeneity cross-table is the descriptive landscape the
// TPDS 2004 evaluation reports for its systems.
func RunE14(cfg Config) (*Result, error) {
	res := &Result{ID: "E14", Title: "Robustness vs requirement tightness and workload heterogeneity"}
	instances := cfg.size(20, 4)

	// --- Part 1: tau sweep --------------------------------------------
	taus := []float64{1.05, 1.1, 1.2, 1.3, 1.5, 2.0}
	type tauRow struct {
		rhos []float64
		err  error
	}
	rows := make([]tauRow, instances)
	parallelFor(instances, func(inst int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e14-tau-%d", inst))
		m, err := etc.CVB(etc.CVBParams{Tasks: 48, Machines: 6, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, src)
		if err != nil {
			rows[inst] = tauRow{err: err}
			return
		}
		alloc, err := sched.MinMin(m)
		if err != nil {
			rows[inst] = tauRow{err: err}
			return
		}
		s, err := makespan.New(m, alloc)
		if err != nil {
			rows[inst] = tauRow{err: err}
			return
		}
		rhos := make([]float64, len(taus))
		for i, tau := range taus {
			_, rho, err := s.ClosedFormRadii(tau)
			if err != nil {
				rows[inst] = tauRow{err: err}
				return
			}
			rhos[i] = rho
		}
		rows[inst] = tauRow{rhos: rhos}
	})
	tb := report.NewTable("E14: rho of min-min allocations vs requirement tightness tau (mean over instances)",
		"tau", "mean rho", "min rho", "max rho")
	monotone := true
	for i, tau := range taus {
		var vals []float64
		for _, r := range rows {
			if r.err != nil {
				return nil, r.err
			}
			vals = append(vals, r.rhos[i])
		}
		sm := stats.Summarize(vals)
		tb.AddRow(tau, sm.Mean, sm.Min, sm.Max)
	}
	for _, r := range rows {
		for i := 1; i < len(taus); i++ {
			if r.rhos[i] <= r.rhos[i-1] {
				monotone = false
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	res.check("rho is strictly increasing in the requirement tau on every instance",
		monotone, "%d instances x %d tau values", instances, len(taus))

	// --- Part 2: heterogeneity x consistency cross-table ----------------
	type cell struct {
		rho, ms float64
		err     error
	}
	hets := []struct {
		label string
		cv    float64
	}{{"low (CV 0.1)", 0.1}, {"mid (CV 0.35)", 0.35}, {"high (CV 0.7)", 0.7}}
	classes := []string{"inconsistent", "partially-consistent", "consistent"}
	grid := make([][]cell, len(hets))
	for hi := range grid {
		grid[hi] = make([]cell, len(classes))
	}
	const tau = 1.3
	parallelFor(len(hets)*len(classes), func(idx int) {
		hi, ci := idx/len(classes), idx%len(classes)
		var rhoSum, msSum float64
		for inst := 0; inst < instances; inst++ {
			src := stats.Named(cfg.Seed, fmt.Sprintf("e14-het-%d-%d-%d", hi, ci, inst))
			p := etc.CVBParams{Tasks: 48, Machines: 6, MeanTask: 10,
				TaskCV: hets[hi].cv, MachineCV: hets[hi].cv}
			var m *etc.Matrix
			var err error
			switch classes[ci] {
			case "consistent":
				p.Consistent = true
				m, err = etc.CVB(p, src)
			case "partially-consistent":
				m, err = etc.PartiallyConsistent(p, src)
			default:
				m, err = etc.CVB(p, src)
			}
			if err != nil {
				grid[hi][ci] = cell{err: err}
				return
			}
			alloc, err := sched.MinMin(m)
			if err != nil {
				grid[hi][ci] = cell{err: err}
				return
			}
			s, err := makespan.New(m, alloc)
			if err != nil {
				grid[hi][ci] = cell{err: err}
				return
			}
			_, rho, err := s.ClosedFormRadii(tau)
			if err != nil {
				grid[hi][ci] = cell{err: err}
				return
			}
			rhoSum += rho
			msSum += s.OrigMakespan()
		}
		grid[hi][ci] = cell{rho: rhoSum / float64(instances), ms: msSum / float64(instances)}
	})
	tb2 := report.NewTable(fmt.Sprintf("E14: mean rho (and makespan) of min-min by heterogeneity x consistency (tau=%.2f)", tau),
		"heterogeneity", "inconsistent", "partially-consistent", "consistent")
	allPositive := true
	for hi, h := range hets {
		cells := make([]interface{}, 0, 4)
		cells = append(cells, h.label)
		for ci := range classes {
			c := grid[hi][ci]
			if c.err != nil {
				return nil, c.err
			}
			if !(c.rho > 0) {
				allPositive = false
			}
			cells = append(cells, fmt.Sprintf("%.3f (ms %.1f)", c.rho, c.ms))
		}
		tb2.AddRow(cells...)
	}
	res.Tables = append(res.Tables, tb2)
	res.check("every workload class yields a positive robustness radius",
		allPositive, "%d cells, %d instances each", len(hets)*len(classes), instances)
	res.note("The tau sweep is the knob a system owner controls: relaxing the promise buys tolerance linearly (the closed form is affine in tau). The heterogeneity landscape shows the workload's influence at fixed tau: what changes across classes is dominated by the achievable makespan level that sets the bound.")
	return res, nil
}
