package exper

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// RunE4 verifies the paper's Section 3.2 proposal: with normalization by
// original values (P_j = π_j/π_j^orig), the combined radius has the closed
// form (β−1)·|Σ k_j π_j^orig| / √(Σ (k_m π_m^orig)²) and — unlike the
// sensitivity weighting — moves when the requirement, the coefficients, or
// the original values change. Three sub-sweeps isolate each dependence.
func RunE4(cfg Config) (*Result, error) {
	res := &Result{ID: "E4", Title: "Normalized-weighting radius"}

	// --- Part 1: closed form vs engine over random instances -------------
	trials := cfg.size(200, 20)
	devs := make([]float64, trials)
	errs := make([]error, trials)
	parallelFor(trials, func(i int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e4-%d", i))
		n := src.Intn(7) + 2
		k := make(vec.V, n)
		orig := make(vec.V, n)
		for j := range k {
			k[j] = src.Uniform(0.05, 10)
			orig[j] = src.Uniform(0.05, 10)
		}
		beta := src.Uniform(1.05, 4)
		a, err := core.LinearOneElemAnalysis(k, orig, beta)
		if err != nil {
			errs[i] = err
			return
		}
		r, err := a.CombinedRadius(0, core.Normalized{})
		if err != nil {
			errs[i] = err
			return
		}
		want, err := core.NormalizedRadiusLinear(k, orig, beta)
		if err != nil {
			errs[i] = err
			return
		}
		devs[i] = math.Abs(r.Value-want) / want
	})
	var maxDev float64
	for i := range devs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if devs[i] > maxDev {
			maxDev = devs[i]
		}
	}
	res.check("engine matches the Section 3.2 closed form", maxDev < 1e-9,
		"max relative error %.3g over %d instances", maxDev, trials)

	// --- Part 2: dependence on beta (contrast with E3) -------------------
	k := vec.Of(2, 3, 5)
	orig := vec.Of(1, 2, 4)
	tb := report.NewTable("E4: radius vs requirement beta (k=[2 3 5], orig=[1 2 4])",
		"beta", "normalized r_mu(phi, P)", "sensitivity r_mu(phi, P)")
	prev := -1.0
	monotone := true
	sensConst := true
	for _, beta := range []float64{1.1, 1.2, 1.5, 2.0, 3.0} {
		a, err := core.LinearOneElemAnalysis(k, orig, beta)
		if err != nil {
			return nil, err
		}
		rn, err := a.CombinedRadius(0, core.Normalized{})
		if err != nil {
			return nil, err
		}
		rs, err := a.CombinedRadius(0, core.Sensitivity{})
		if err != nil {
			return nil, err
		}
		tb.AddRow(beta, rn.Value, rs.Value)
		if rn.Value <= prev {
			monotone = false
		}
		prev = rn.Value
		if math.Abs(rs.Value-1/math.Sqrt(3)) > 1e-9 {
			sensConst = false
		}
	}
	res.Tables = append(res.Tables, tb)
	res.check("normalized radius grows with beta", monotone, "radius strictly increases over the beta sweep")
	res.check("sensitivity radius stays frozen at 1/sqrt(3)", sensConst, "constant across the same sweep")

	// --- Part 3: dependence on the original values -----------------------
	tb2 := report.NewTable("E4: radius vs original values (k=[1 1], beta=1.3)",
		"pi_orig", "normalized r_mu(phi, P)")
	varies := false
	var first float64
	for i, origs := range []vec.V{
		vec.Of(1, 1), vec.Of(1, 4), vec.Of(1, 16), vec.Of(5, 5),
	} {
		a, err := core.LinearOneElemAnalysis(vec.Of(1, 1), origs, 1.3)
		if err != nil {
			return nil, err
		}
		r, err := a.CombinedRadius(0, core.Normalized{})
		if err != nil {
			return nil, err
		}
		tb2.AddRow(origs.String(), r.Value)
		if i == 0 {
			first = r.Value
		} else if math.Abs(r.Value-first) > 1e-6 {
			varies = true
		}
	}
	res.Tables = append(res.Tables, tb2)
	res.check("normalized radius depends on the original values", varies,
		"distinct originals yield distinct radii (balanced originals are the most robust)")

	res.note("The normalized P-space restores exactly the dependencies the sensitivity weighting destroys: the radius tracks beta, the coefficients, and the original operating point, while remaining dimensionless.")
	return res, nil
}
