// Package exper implements the reproduction experiments E1–E8 indexed in
// DESIGN.md: each regenerates one artifact of the paper (the Figure-1
// geometry, the Section 3.1 closed forms and degeneracy, the Section 3.2
// normalized metric, the operating-point recipe) or exercises the metric on
// the substrate systems (HiPer-D with DES cross-validation, heuristic
// ranking on the makespan system, the weighting ablation).
//
// Every experiment returns tables, optional plots, and named pass/fail
// checks; EXPERIMENTS.md records the expected outcomes. Sweeps are
// parallelized over a bounded worker pool and are deterministic for a fixed
// Config.Seed.
package exper

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"fepia/internal/report"
)

// Config controls experiment size and reproducibility.
type Config struct {
	// Seed drives every random stream (streams are derived per experiment
	// and sub-sweep via stats.Named).
	Seed int64
	// Quick shrinks sweep sizes for unit tests and smoke runs.
	Quick bool
	// Ctx, if non-nil, bounds the experiment: long-running evaluations
	// (robustness sweeps, Monte-Carlo estimation) abort once it is
	// cancelled. Nil means no deadline.
	Ctx context.Context
}

// Context returns cfg.Ctx, defaulting to context.Background().
func (cfg Config) Context() context.Context {
	if cfg.Ctx != nil {
		return cfg.Ctx
	}
	return context.Background()
}

// Check is a named pass/fail assertion an experiment verified.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is everything an experiment produced.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	Plots  []*report.Plot
	Notes  []string
	Checks []Check
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// check appends an assertion to the result.
func (r *Result) check(name string, pass bool, detailFmt string, args ...interface{}) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(detailFmt, args...)})
}

// note appends a free-form observation.
func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	// Artifact names the paper artifact this experiment regenerates.
	Artifact string
	Run      func(cfg Config) (*Result, error)
}

// All returns the experiments in report order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 1: boundary curve, nearest boundary point, robustness radius", "Figure 1", RunE1},
		{"E2", "Single-parameter radius closed form vs engine (Section 3.1, step 1)", "Section 3.1 Eq. (3)", RunE2},
		{"E3", "Sensitivity-weighting degeneracy: r = 1/sqrt(n) always", "Section 3.1 result", RunE3},
		{"E4", "Normalized-weighting radius: closed form and input dependence", "Section 3.2 result", RunE4},
		{"E5", "Operating-point recipe: soundness and conservatism", "Section 3 usage recipe", RunE5},
		{"E6", "HiPer-D mixed-kind robustness with DES cross-validation", "Section 1+3 motivating system", RunE6},
		{"E7", "Heuristic ranking: makespan vs robustness", "metric-in-use (extends TPDS'04)", RunE7},
		{"E8", "Weighting ablation: sensitivity cannot separate systems, normalized can", "Sections 3.1 vs 3.2", RunE8},
		{"E9", "Three-kind analysis: sensor load joins execution times and message lengths", "Section 1 lead uncertainty (extension)", RunE9},
		{"E10", "Norm ablation: l1 / l2 / l-inf robustness radii", "Eq. 1 norm choice (extension)", RunE10},
		{"E11", "Worst-case radius vs Monte-Carlo violation probability", "metric interpretation (extension)", RunE11},
		{"E12", "Machine-failure injection and robustness-aware recovery", "Section 1 failure uncertainty (extension)", RunE12},
		{"E13", "Mixed-kind makespan: execution times + input sizes on the TPDS substrate", "Section 3 scenario on the TPDS'04 system (extension)", RunE13},
		{"E14", "Robustness vs requirement tightness and workload heterogeneity", "evaluation-methodology sweep (extension)", RunE14},
		{"E15", "Queueing tier: demand and capacity as perturbation kinds", "nonlinear-impact validation + capacity planning (extension)", RunE15},
		{"E16", "Cluster scatter-gather overhead: 1 vs 3 in-process workers", "distributed-evaluation equivalence + overhead (extension)", RunE16},
		{"E17", "Scenario store: restart warm-start timing and bit-stability", "persistent-store equivalence + restart cost (extension)", RunE17},
		{"E18", "Hardware-limited numeric tier: sharded cache, warm start, k-probe", "numeric-tier acceleration equivalence + throughput (extension)", RunE18},
		{"E19", "Robustness-aware allocation search vs heuristic baselines", "metric-driven allocation search, closing the TPDS'04 loop (extension)", RunE19},
		{"E20", "Incremental re-evaluation: dirty-subset deltas vs cold full evaluations", "streaming watch equivalence + update throughput (extension)", RunE20},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// parallelFor runs fn(0…n−1) over a bounded worker pool. Workers write only
// to disjoint indices of caller-owned slices, keeping results order-stable.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// sizes picks a sweep size by mode.
func (c Config) size(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}
