package exper

import (
	"math"

	"fepia/internal/core"
	"fepia/internal/geom"
	"fepia/internal/report"
	"fepia/internal/vec"
)

// RunE1 regenerates the geometry of the paper's Figure 1: a single
// performance feature over a two-element perturbation vector, the boundary
// curve {π : f(π) = β^max}, the β^min boundary on the axes, the original
// operating point π^orig, the nearest boundary point π*(φ), and the
// robustness radius as their Euclidean distance.
//
// The feature is φ = π₁·π₂ — a sensor-load × per-object-time computation
// cost, the canonical reason Figure 1's boundary is a convex curve rather
// than a line — with bounds ⟨0, β^max⟩. The β^min = 0 boundary is exactly
// the coordinate axes, matching the figure's caption.
func RunE1(cfg Config) (*Result, error) {
	res := &Result{ID: "E1", Title: "Figure 1 regeneration"}

	const (
		orig1   = 1.0 // objects per data set (π_j1^orig)
		orig2   = 1.0 // seconds per object   (π_j2^orig)
		betaMax = 4.0 // tolerable bound on φ = π1·π2
	)
	feature := func(x, y float64) float64 { return x * y }

	// FePIA analysis: one feature, one two-element perturbation parameter.
	a, err := core.NewAnalysis(
		[]core.Feature{{
			Name:   "comp-time",
			Bounds: core.Band(0, betaMax),
			Impact: func(vs []vec.V) float64 { return feature(vs[0][0], vs[0][1]) },
		}},
		[]core.Perturbation{{Name: "pi_j", Unit: "mixed", Orig: vec.Of(orig1, orig2)}},
	)
	if err != nil {
		return nil, err
	}
	rad, err := a.RadiusSingle(0, 0)
	if err != nil {
		return nil, err
	}

	// Analytic ground truth: the nearest point on the hyperbola x·y = 4
	// from (1, 1) is (2, 2) at distance √2, while the axes (β^min = 0
	// boundary) are at distance min(1, 1) = 1. Eq. 1 takes the minimum over
	// both boundaries, so the Band radius is 1 with the nearest point on an
	// axis; the distance the figure draws (to the β^max curve) is measured
	// separately below with one-sided bounds.
	distAxes := math.Min(orig1, orig2)
	distCurve := math.Sqrt2 // nearest point (2,2) from (1,1)

	res.check("radius equals min over both boundaries",
		math.Abs(rad.Value-math.Min(distAxes, distCurve)) < 1e-6,
		"engine radius %.9f, expected min(%g, %.9f)", rad.Value, distAxes, distCurve)

	// The Figure-1 configuration proper: measure the distance to the β^max
	// curve alone (one-sided bounds), as the figure draws it.
	aMax, err := core.NewAnalysis(
		[]core.Feature{{
			Name:   "comp-time",
			Bounds: core.MaxOnly(betaMax),
			Impact: func(vs []vec.V) float64 { return feature(vs[0][0], vs[0][1]) },
		}},
		[]core.Perturbation{{Name: "pi_j", Unit: "mixed", Orig: vec.Of(orig1, orig2)}},
	)
	if err != nil {
		return nil, err
	}
	radMax, err := aMax.RadiusSingle(0, 0)
	if err != nil {
		return nil, err
	}
	res.check("distance to beta-max curve matches analytic sqrt(2)",
		math.Abs(radMax.Value-distCurve) < 1e-5,
		"engine %.9f vs sqrt(2) = %.9f", radMax.Value, distCurve)

	// Trace the boundary curve for the plot and cross-check the radius
	// against the polyline.
	pts, err := geom.TraceCurve2D(feature, betaMax, 0.4, 6, geom.TraceOptions{Samples: cfg.size(400, 80), YMax: 12})
	if err != nil {
		return nil, err
	}
	_, polyDist := geom.NearestOnPolyline(pts, vec.Of(orig1, orig2))
	res.check("traced polyline agrees with the engine radius",
		math.Abs(polyDist-radMax.Value) < 5e-3,
		"polyline %.6f vs engine %.6f", polyDist, radMax.Value)

	// Table: sampled boundary points (decimated for readability).
	tb := report.NewTable("E1: boundary points of {pi : f(pi) = beta-max} (decimated)",
		"pi_j1", "pi_j2", "f(pi)")
	step := len(pts) / cfg.size(20, 10)
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		tb.AddRow(pts[i].X, pts[i].Y, feature(pts[i].X, pts[i].Y))
	}
	res.Tables = append(res.Tables, tb)

	sum := report.NewTable("E1: radius summary", "quantity", "value")
	sum.AddRow("pi_orig", vec.Of(orig1, orig2).String())
	sum.AddRow("beta-max", betaMax)
	sum.AddRow("nearest point on beta-max curve", radMax.Point.String())
	sum.AddRow("r_mu(phi, pi) to beta-max curve", radMax.Value)
	sum.AddRow("distance to beta-min (axes)", distAxes)
	sum.AddRow("r_mu(phi, pi), Eq. 1 (min of both)", rad.Value)
	sum.AddRow("critical boundary", rad.Side.String())
	res.Tables = append(res.Tables, sum)

	// The figure itself.
	plot := &report.Plot{
		Title:  "E1 — Figure 1: boundary curve, pi_orig (+), nearest boundary point (x)",
		XLabel: "pi_j1",
		YLabel: "pi_j2",
		Width:  64, Height: 20,
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	plot.Add(report.Series{Name: "f=beta-max", X: xs, Y: ys, Mark: 'o'})
	plot.Add(report.Series{Name: "pi_orig", X: []float64{orig1}, Y: []float64{orig2}, Mark: '+'})
	plot.Add(report.Series{Name: "pi*", X: []float64{radMax.Point[0]}, Y: []float64{radMax.Point[1]}, Mark: 'x'})
	res.Plots = append(res.Plots, plot)

	res.note("Figure 1 semantics reproduced: the robust region is bounded by the axes (beta-min) and the convex beta-max curve; the radius is the smallest Euclidean distance from pi_orig to either boundary.")
	return res, nil
}
