package exper

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func TestAllRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("experiment count = %d, want 20", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Artifact == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Error("E3 must exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 must not exist")
	}
}

// runAndRequirePass runs one experiment in quick mode and demands that every
// check passes — these are the reproduction claims of EXPERIMENTS.md.
func runAndRequirePass(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %s", id)
	}
	res, err := e.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Errorf("result id %q", res.ID)
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("%s check failed: %s (%s)", id, c.Name, c.Detail)
		}
	}
	if !res.Passed() {
		t.Errorf("%s did not pass", id)
	}
	if len(res.Tables) == 0 {
		t.Errorf("%s produced no tables", id)
	}
	return res
}

func TestE1(t *testing.T) {
	res := runAndRequirePass(t, "E1")
	if len(res.Plots) == 0 {
		t.Error("E1 must render the figure")
	}
	out := res.Plots[0].String()
	if !strings.Contains(out, "pi_orig") || !strings.Contains(out, "pi*") {
		t.Error("figure must mark pi_orig and pi*")
	}
}

func TestE2(t *testing.T)  { runAndRequirePass(t, "E2") }
func TestE3(t *testing.T)  { runAndRequirePass(t, "E3") }
func TestE4(t *testing.T)  { runAndRequirePass(t, "E4") }
func TestE5(t *testing.T)  { runAndRequirePass(t, "E5") }
func TestE6(t *testing.T)  { runAndRequirePass(t, "E6") }
func TestE7(t *testing.T)  { runAndRequirePass(t, "E7") }
func TestE8(t *testing.T)  { runAndRequirePass(t, "E8") }
func TestE9(t *testing.T)  { runAndRequirePass(t, "E9") }
func TestE10(t *testing.T) { runAndRequirePass(t, "E10") }
func TestE11(t *testing.T) { runAndRequirePass(t, "E11") }
func TestE12(t *testing.T) { runAndRequirePass(t, "E12") }
func TestE13(t *testing.T) { runAndRequirePass(t, "E13") }
func TestE14(t *testing.T) { runAndRequirePass(t, "E14") }
func TestE15(t *testing.T) { runAndRequirePass(t, "E15") }
func TestE16(t *testing.T) { runAndRequirePass(t, "E16") }
func TestE17(t *testing.T) { runAndRequirePass(t, "E17") }
func TestE18(t *testing.T) { runAndRequirePass(t, "E18") }
func TestE19(t *testing.T) { runAndRequirePass(t, "E19") }
func TestE20(t *testing.T) { runAndRequirePass(t, "E20") }

func TestDeterministicResults(t *testing.T) {
	// Same seed → identical tables (E3 exercises parallel sweeps).
	e, _ := ByID("E3")
	r1, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tables[0].String() != r2.Tables[0].String() {
		t.Error("same seed must reproduce the table exactly")
	}
}

func TestSeedChangesSweep(t *testing.T) {
	e, _ := ByID("E8")
	r1, err := e.Run(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(Config{Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tables[0].String() == r2.Tables[0].String() {
		t.Error("different seeds should draw different systems")
	}
}

func TestParallelFor(t *testing.T) {
	out := make([]int, 100)
	parallelFor(100, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("index %d = %d", i, v)
		}
	}
	// n smaller than worker count and n == 0 must not hang.
	parallelFor(1, func(i int) {})
	parallelFor(0, func(i int) { t.Fatal("must not be called") })
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "X"}
	r.check("ok", true, "fine")
	r.check("bad", false, "broken %d", 7)
	r.note("note %s", "here")
	if r.Passed() {
		t.Error("result with failing check must not pass")
	}
	if len(r.Notes) != 1 || !strings.Contains(r.Notes[0], "here") {
		t.Error("note not recorded")
	}
	if r.Checks[1].Detail != "broken 7" {
		t.Errorf("detail = %q", r.Checks[1].Detail)
	}
}
