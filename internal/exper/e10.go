package exper

import (
	"fmt"

	"fepia/internal/core"
	"fepia/internal/makespan"
	"fepia/internal/report"
	"fepia/internal/sched"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

// RunE10 is the norm ablation: the paper defines the robustness radius with
// the Euclidean norm, which encodes one specific model of how perturbations
// combine. The ℓ1 radius ("total drift budget, spent adversarially") and the
// ℓ∞ radius ("uniform per-element drift") answer different operational
// questions. The experiment computes all three on makespan allocations and
// verifies the dual-norm ordering r_ℓ1 ≥ r_ℓ2 ≥ r_ℓ∞, plus the practical
// observation that the choice changes which machine is critical — i.e. the
// norm is a modelling decision, not a cosmetic one.
func RunE10(cfg Config) (*Result, error) {
	res := &Result{ID: "E10", Title: "Norm ablation (l1 / l2 / l-inf radii)"}
	const tau = 1.3
	instances := cfg.size(20, 4)

	type row struct {
		r1, r2, rInf          float64
		crit1, crit2, critInf int
		err                   error
	}
	rows := make([]row, instances)
	parallelFor(instances, func(inst int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e10-%d", inst))
		m, err := workload.Makespan(workload.DefaultMakespan(), src)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		alloc, err := sched.MinMin(m)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		s, err := makespan.New(m, alloc)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		a, err := s.Analysis(tau)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		get := func(norm core.Norm) (float64, int, error) {
			r, err := a.RobustnessSingleNorm(0, norm)
			if err != nil {
				return 0, 0, err
			}
			return r.Value, r.Feature, nil
		}
		r1, c1, err := get(core.L1)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		r2, c2, err := get(core.L2)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		rInf, cInf, err := get(core.LInf)
		if err != nil {
			rows[inst] = row{err: err}
			return
		}
		rows[inst] = row{r1: r1, r2: r2, rInf: rInf, crit1: c1, crit2: c2, critInf: cInf}
	})

	tb := report.NewTable("E10: robustness of min-min allocations under three norms (tau=1.3)",
		"instance", "rho_l1", "rho_l2", "rho_linf", "critical feature (l1/l2/linf)")
	ordered := true
	critChanged := false
	for i, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		if !(r.r1 >= r.r2-1e-12 && r.r2 >= r.rInf-1e-12) {
			ordered = false
		}
		// Different norms may nominate different critical features across
		// the sweep (not necessarily within one instance).
		if r.crit1 != r.crit2 || r.crit2 != r.critInf {
			critChanged = true
		}
		if i < 10 {
			tb.AddRow(i, r.r1, r.r2, r.rInf,
				fmt.Sprintf("%d/%d/%d", r.crit1, r.crit2, r.critInf))
		}
	}
	res.Tables = append(res.Tables, tb)

	res.check("dual-norm ordering r_l1 >= r_l2 >= r_linf holds on every instance",
		ordered, "%d instances checked", instances)
	// The engine-level duality facts are verified in unit tests; here check
	// the interpretive claim on at least one instance.
	res.check("the l2 radius is reproduced by the default engine",
		func() bool {
			src := stats.Named(cfg.Seed, "e10-0")
			m, err := workload.Makespan(workload.DefaultMakespan(), src)
			if err != nil {
				return false
			}
			alloc, err := sched.MinMin(m)
			if err != nil {
				return false
			}
			s, err := makespan.New(m, alloc)
			if err != nil {
				return false
			}
			a, err := s.Analysis(tau)
			if err != nil {
				return false
			}
			rDefault, err := a.RobustnessSingle(0)
			if err != nil {
				return false
			}
			rL2, err := a.RobustnessSingleNorm(0, core.L2)
			if err != nil {
				return false
			}
			diff := rDefault.Value - rL2.Value
			return diff < 1e-9 && diff > -1e-9
		}(), "RadiusSingle and RadiusSingleNorm(L2) agree")
	if critChanged {
		res.note("On some instances different norms nominate different critical machines: the norm choice changes not just the number but the diagnosis.")
	} else {
		res.note("On this sweep the three norms agreed on the critical machine; the radii still differ by the dual-norm factors.")
	}
	res.note("Interpretation: rho_l1 bounds the total absolute drift (one bad estimate), rho_l2 the Euclidean drift (the paper's model), rho_linf the uniform per-task drift (systematic bias). All are exact closed forms for linear features.")
	return res, nil
}
