package exper

import (
	"math"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
	"fepia/internal/workload"
)

// RunE9 extends the mixed-kind analysis to THREE kinds including the
// paper's lead uncertainty, the sensor load λ: execution times (s), message
// lengths (bytes), and sensor load (data sets/s). The utilization features
// become bilinear (λ·e, λ·m/BW) — curved boundaries exactly like Figure 1 —
// so the numeric tier carries them while latency features stay exact.
// Verifies: internal consistency of the numeric tier against hand-derived
// radii, the subset property ρ(3 kinds) ≤ ρ(2 kinds), and the soundness of
// the certified ball under simultaneous three-kind drift.
func RunE9(cfg Config) (*Result, error) {
	res := &Result{ID: "E9", Title: "Three-kind analysis with sensor load"}

	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.Named(cfg.Seed, "e9-system"))
	if err != nil {
		return nil, err
	}
	a2, err := sys.Analysis()
	if err != nil {
		return nil, err
	}
	a3, err := sys.AnalysisWithLoad()
	if err != nil {
		return nil, err
	}

	tb := report.NewTable("E9: per-kind robustness with three kinds (Eq. 1)",
		"perturbation", "unit", "rho", "critical feature")
	for j, p := range a3.Params {
		r, err := a3.RobustnessSingle(j)
		if err != nil {
			return nil, err
		}
		crit := "-"
		if r.Feature >= 0 {
			crit = a3.Features[r.Feature].Name
		}
		tb.AddRow(p.Name, p.Unit, r.Value, crit)
	}
	res.Tables = append(res.Tables, tb)

	// Hand-derived check: the load radius is capacity/worst-util − λ.
	mu, err := sys.MachineUtil(sys.OrigExecTimes())
	if err != nil {
		return nil, err
	}
	lu, err := sys.LinkUtil(sys.OrigMsgSizes())
	if err != nil {
		return nil, err
	}
	worstUtil := math.Max(mu.Max(), lu.Max())
	wantLoadRadius := sys.Rate/worstUtil - sys.Rate
	rLoad, err := a3.RobustnessSingle(2)
	if err != nil {
		return nil, err
	}
	res.check("sensor-load radius matches the capacity closed form",
		math.Abs(rLoad.Value-wantLoadRadius) < 1e-3*(1+wantLoadRadius),
		"engine %.6g vs lambda/worst-util - lambda = %.6g", rLoad.Value, wantLoadRadius)

	rho2, err := a2.Robustness(core.Normalized{})
	if err != nil {
		return nil, err
	}
	rho3, err := a3.Robustness(core.Normalized{})
	if err != nil {
		return nil, err
	}
	tb2 := report.NewTable("E9: combined normalized robustness, 2 kinds vs 3 kinds",
		"analysis", "P dimension", "rho", "critical feature")
	tb2.AddRow("exec+msg", a2.TotalDim(), rho2.Value, a2.Features[rho2.Critical].Name)
	tb2.AddRow("exec+msg+load", a3.TotalDim(), rho3.Value, a3.Features[rho3.Critical].Name)
	res.Tables = append(res.Tables, tb2)

	res.check("adding a kind cannot increase the combined radius",
		rho3.Value <= rho2.Value+1e-3,
		"rho3 %.6g vs rho2 %.6g (the 2-kind space is the lambda=orig slice of the 3-kind space)", rho3.Value, rho2.Value)
	res.check("three-kind robustness is positive and finite",
		rho3.Value > 0 && !math.IsInf(rho3.Value, 1), "rho3 = %v", rho3.Value)

	// Certified-ball soundness under three-kind drift.
	src := stats.Named(cfg.Seed, "e9-mc")
	e0 := sys.OrigExecTimes()
	m0 := sys.OrigMsgSizes()
	nA, nE := len(e0), len(m0)
	pOrig := vec.Ones(a3.TotalDim())
	trials := cfg.size(300, 60)
	unsound := 0
	for trial := 0; trial < trials; trial++ {
		d := make(vec.V, a3.TotalDim())
		for i := range d {
			d[i] = src.Normal(0, 1)
		}
		d = d.Normalize().Scale(rho3.Value * 0.995 * src.Float64())
		p := pOrig.Add(d)
		vals := []vec.V{
			e0.Mul(p[:nA]),
			m0.Mul(p[nA : nA+nE]),
			vec.Of(sys.Rate * p[nA+nE]),
		}
		if a3.Violates(vals) {
			unsound++
		}
	}
	res.check("no violation inside the three-kind certified ball",
		unsound == 0, "%d violations over %d samples", unsound, trials)

	res.note("The bilinear utilization boundaries are the curved Figure-1 geometry realized in a full system: with sensor load as a third kind, the robust region is no longer a polytope, and the numeric tier supplies the radii the closed forms cannot.")
	return res, nil
}
