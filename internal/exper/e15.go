package exper

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/mm1"
	"fepia/internal/report"
	"fepia/internal/stats"
)

// RunE15 applies FePIA to an M/M/1 queueing tier — demand (arrival rates)
// and capacity (service rates) as the two perturbation kinds, steady-state
// latency and utilization as the features. The latency impact 1/(μ−λ) is
// nonlinear, so the engine uses its numeric tier — but the level sets are
// exact lines, giving every radius a closed-form ground truth. The
// experiment verifies the agreement across randomized tiers and then runs
// the capacity-planning sweep a service owner would: how does the
// robustness radius shrink as nominal demand approaches capacity?
func RunE15(cfg Config) (*Result, error) {
	res := &Result{ID: "E15", Title: "Queueing tier: demand/capacity robustness"}

	// --- Part 1: numeric tier vs closed forms over random tiers ----------
	trials := cfg.size(30, 6)
	devs := make([]float64, trials)
	errs := make([]error, trials)
	identity := core.Custom{Alphas: []float64{1, 1}, Label: "identity"}
	parallelFor(trials, func(i int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e15-%d", i))
		mu := src.Uniform(50, 300)
		lam := mu * src.Uniform(0.2, 0.7)
		tier := &mm1.Tier{
			Stations:   []mm1.Station{{Name: "svc", Lambda: lam, Mu: mu}},
			MaxLatency: mm1.Latency(lam, mu) * src.Uniform(2, 8),
			MaxUtil:    src.Uniform(lam/mu+0.1, 0.97),
		}
		if err := tier.Validate(); err != nil {
			errs[i] = err
			return
		}
		a, err := tier.Analysis()
		if err != nil {
			errs[i] = err
			return
		}
		rho, err := a.Robustness(identity)
		if err != nil {
			errs[i] = err
			return
		}
		want, err := tier.JointRadius(0)
		if err != nil {
			errs[i] = err
			return
		}
		devs[i] = math.Abs(rho.Value-want) / (1 + want)
	})
	var maxDev float64
	for i := range devs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if devs[i] > maxDev {
			maxDev = devs[i]
		}
	}
	res.check("numeric tier reproduces the exact line-distance radii",
		maxDev < 1e-3, "max relative deviation %.3g over %d random tiers", maxDev, trials)

	// --- Part 2: capacity-planning sweep --------------------------------
	tb := report.NewTable("E15: robustness vs nominal demand (mu=100 req/s, W<=100ms, util<=0.9)",
		"lambda (req/s)", "nominal W (ms)", "rho (joint, req/s)", "critical bound")
	prev := math.Inf(1)
	monotone := true
	for _, lam := range []float64{20, 40, 60, 75, 85} {
		tier := &mm1.Tier{
			Stations:   []mm1.Station{{Name: "svc", Lambda: lam, Mu: 100}},
			MaxLatency: 0.1,
			MaxUtil:    0.9,
		}
		if err := tier.Validate(); err != nil {
			return nil, err
		}
		l, err := tier.LatencyRadius(0)
		if err != nil {
			return nil, err
		}
		u, err := tier.UtilRadius(0)
		if err != nil {
			return nil, err
		}
		j := math.Min(l, u)
		crit := "latency"
		if u < l {
			crit = "utilization"
		}
		tb.AddRow(lam, 1000*mm1.Latency(lam, 100), j, crit)
		if j >= prev {
			monotone = false
		}
		prev = j
	}
	res.Tables = append(res.Tables, tb)
	res.check("the radius shrinks monotonically as demand approaches capacity",
		monotone, "lambda sweep 20..85 at mu=100")
	res.note("Reading the sweep as a capacity planner: the joint radius is how many req/s of simultaneous adverse drift (demand up, capacity down, worst split) the tier absorbs before an SLO breaks; at 85%% of the utilization bound the tier has almost no slack even though its nominal latency still looks healthy.")
	return res, nil
}
