package exper

import (
	"fmt"
	"math"
	"sort"

	"fepia/internal/makespan"
	"fepia/internal/report"
	"fepia/internal/sched"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

// RunE7 puts the metric to its intended use: ranking resource allocations.
// Ten mapping heuristics run on randomized ETC instances, and every
// allocation is scored two ways:
//
//   - rho-own: the FePIA closed form against the allocation's OWN
//     requirement τ·M^orig — "this deployment promises τ× its estimate; how
//     much execution-time perturbation can it absorb?" This is the ranking
//     question of the TPDS 2004 evaluation, and it disagrees with the
//     makespan ranking: balanced-but-slower allocations (e.g. max-min)
//     tolerate more than tightly packed minimum-makespan ones.
//   - rho-common: the same closed form against a SHARED per-instance bound
//     τ·M(min-min) — "all allocations must meet one fixed QoS contract" —
//     under which robustness is dominated by slack to the common bound.
//
// The contrast between the two columns is itself the finding: which mapping
// is "most robust" depends on whose requirement you hold fixed, and neither
// ranking is the makespan ranking.
func RunE7(cfg Config) (*Result, error) {
	res := &Result{ID: "E7", Title: "Heuristic ranking: makespan vs robustness"}
	const tau = 1.3
	instances := cfg.size(30, 5)

	reg := sched.Registry(tau, stats.Named(cfg.Seed, "e7-random-heuristic"))
	type agg struct {
		ms, rhoOwn, rhoCommon []float64
	}
	aggs := make([]agg, len(reg))
	for i := range aggs {
		aggs[i] = agg{
			ms:        make([]float64, instances),
			rhoOwn:    make([]float64, instances),
			rhoCommon: make([]float64, instances),
		}
	}
	errs := make([]error, instances)
	parallelFor(instances, func(inst int) {
		src := stats.Named(cfg.Seed, fmt.Sprintf("e7-inst-%d", inst))
		m, err := workload.Makespan(workload.DefaultMakespan(), src)
		if err != nil {
			errs[inst] = err
			return
		}
		mmAlloc, err := sched.MinMin(m)
		if err != nil {
			errs[inst] = err
			return
		}
		mmSys, err := makespan.New(m, mmAlloc)
		if err != nil {
			errs[inst] = err
			return
		}
		commonBound := tau * mmSys.OrigMakespan()
		for hi, h := range reg {
			alloc, err := h.Fn(m)
			if err != nil {
				errs[inst] = err
				return
			}
			s, err := makespan.New(m, alloc)
			if err != nil {
				errs[inst] = err
				return
			}
			_, rhoOwn, err := s.ClosedFormRadii(tau)
			if err != nil {
				errs[inst] = err
				return
			}
			_, rhoCommon, err := s.RadiiWithBound(commonBound)
			if err != nil {
				errs[inst] = err
				return
			}
			aggs[hi].ms[inst] = s.OrigMakespan()
			aggs[hi].rhoOwn[inst] = rhoOwn
			aggs[hi].rhoCommon[inst] = rhoCommon
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rows := make([]e7Row, len(reg))
	for hi, h := range reg {
		rows[hi] = e7Row{
			name:    h.Name,
			meanMS:  stats.Mean(aggs[hi].ms),
			meanOwn: stats.Mean(aggs[hi].rhoOwn),
			meanCom: stats.Mean(aggs[hi].rhoCommon),
		}
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rows[order[a]].meanMS < rows[order[b]].meanMS })
	rankByOwn := rankOf(rows, func(r e7Row) float64 { return r.meanOwn })

	tb := report.NewTable(fmt.Sprintf("E7: %d heuristics x %d CVB instances (tau=%.2f), sorted by makespan",
		len(reg), instances, tau),
		"heuristic", "mean makespan", "mean rho (own req.)", "mean rho (common req.)", "rank by ms", "rank by rho-own")
	for rank, hi := range order {
		r := rows[hi]
		tb.AddRow(r.name, r.meanMS, r.meanOwn, r.meanCom, rank+1, rankByOwn[hi])
	}
	res.Tables = append(res.Tables, tb)

	byName := map[string]e7Row{}
	for _, r := range rows {
		byName[r.name] = r
	}
	minMS, bestMSName := math.Inf(1), ""
	for _, r := range rows {
		if r.meanMS < minMS {
			minMS, bestMSName = r.meanMS, r.name
		}
	}
	res.check("min-min family wins on makespan",
		bestMSName == "min-min" || bestMSName == "sufferage" || bestMSName == "MCT" || bestMSName == "hillclimb-robust",
		"best makespan: %s (%.4g)", bestMSName, minMS)

	// The headline disagreement: under own requirements, the makespan
	// ranking and the robustness ranking differ.
	rankingsDiffer := false
	for pos, hi := range order {
		if rankByOwn[hi] != pos+1 {
			rankingsDiffer = true
			break
		}
	}
	res.check("own-requirement robustness ranking disagrees with makespan ranking",
		rankingsDiffer, "a makespan-optimal mapper does not maximize tolerance to its own promise")

	res.check("hillclimb-robust matches or beats min-min under the common requirement",
		byName["hillclimb-robust"].meanCom >= byName["min-min"].meanCom-1e-12,
		"hillclimb %.4g vs min-min %.4g", byName["hillclimb-robust"].meanCom, byName["min-min"].meanCom)
	res.check("structured heuristics beat random on makespan",
		byName["min-min"].meanMS < byName["random"].meanMS,
		"min-min %.4g vs random %.4g", byName["min-min"].meanMS, byName["random"].meanMS)

	// Quantify the disagreement: Spearman correlation between makespan and
	// rho-own across heuristics (negative or low = the rankings diverge).
	msVals := make([]float64, len(rows))
	ownVals := make([]float64, len(rows))
	for i, r := range rows {
		msVals[i] = r.meanMS
		ownVals[i] = r.meanOwn
	}
	res.note("Spearman rank correlation (makespan vs rho-own): %.3f — the orderings are far from aligned.",
		stats.SpearmanRank(msVals, ownVals))
	res.note("rho-own ranks balanced allocations (max-min, even round-robin) above tightly packed minimum-makespan ones: their own bound sits proportionally higher and the load is spread over machines. rho-common inverts this: with one fixed contract, slack to the bound dominates. Both orderings differ from the makespan ordering — the metric adds information a makespan-only resource manager lacks.")
	return res, nil
}

// e7Row aggregates one heuristic's scores across instances.
type e7Row struct {
	name                     string
	meanMS, meanOwn, meanCom float64
}

// rankOf returns 1-based descending ranks of rows under key.
func rankOf(rows []e7Row, key func(e7Row) float64) []int {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return key(rows[idx[a]]) > key(rows[idx[b]]) })
	ranks := make([]int, len(rows))
	for pos, hi := range idx {
		ranks[hi] = pos + 1
	}
	return ranks
}
