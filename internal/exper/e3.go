package exper

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// RunE3 reproduces the paper's central negative result (Section 3.1): under
// sensitivity-based weighting α_j = 1/r_μ(φ, π_j), the combined-space
// robustness radius of a linear feature over n one-element parameters is
// 1/√n for EVERY choice of coefficients, requirement β, and original
// values. The sweep varies all of them wildly; the radius column must not
// move.
func RunE3(cfg Config) (*Result, error) {
	res := &Result{ID: "E3", Title: "Sensitivity-weighting degeneracy"}
	perN := cfg.size(40, 6)

	tb := report.NewTable("E3: sensitivity-weighted combined radius across wildly different systems",
		"n", "beta", "k (first 3)", "pi_orig (first 3)", "r_mu(phi, P)", "1/sqrt(n)", "deviation")

	type outcome struct {
		radius, expect, dev float64
		beta                float64
		k, orig             vec.V
		err                 error
	}
	var worstDev float64
	for n := 2; n <= 8; n++ {
		outs := make([]outcome, perN)
		nn := n
		parallelFor(perN, func(i int) {
			src := stats.Named(cfg.Seed, fmt.Sprintf("e3-%d-%d", nn, i))
			k := make(vec.V, nn)
			orig := make(vec.V, nn)
			for j := range k {
				k[j] = src.Uniform(0.05, 20)
				orig[j] = src.Uniform(0.05, 20)
			}
			beta := src.Uniform(1.01, 5)
			a, err := core.LinearOneElemAnalysis(k, orig, beta)
			if err != nil {
				outs[i] = outcome{err: err}
				return
			}
			r, err := a.CombinedRadius(0, core.Sensitivity{})
			if err != nil {
				outs[i] = outcome{err: err}
				return
			}
			expect := core.SensitivityRadiusLinear(nn)
			outs[i] = outcome{
				radius: r.Value, expect: expect,
				dev:  math.Abs(r.Value - expect),
				beta: beta, k: k, orig: orig,
			}
		})
		for i, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			if o.dev > worstDev {
				worstDev = o.dev
			}
			// Table keeps a few representative rows per n.
			if i < 3 {
				tb.AddRow(n, trunc(o.beta), headOf(o.k), headOf(o.orig), o.radius, o.expect, o.dev)
			}
		}
	}
	res.Tables = append(res.Tables, tb)

	res.check("radius is 1/sqrt(n) regardless of k, beta, origins", worstDev < 1e-9,
		"max |r - 1/sqrt(n)| = %.3g", worstDev)
	res.note("The sensitivity weighting collapses every linear system with the same parameter count onto the same robustness value — the flaw the paper identifies: raising the requirement beta-max does not change the reported robustness.")
	return res, nil
}

// headOf renders the first three elements of a vector for table rows.
func headOf(v vec.V) string {
	if len(v) <= 3 {
		return v.String()
	}
	return v[:3].String() + "..."
}

// trunc rounds for display.
func trunc(x float64) float64 { return math.Round(x*1000) / 1000 }
