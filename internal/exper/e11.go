package exper

import (
	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

// RunE11 contrasts the paper's worst-case robustness radius with a
// probabilistic view: if the parameters drift randomly rather than
// adversarially, how likely is a violation at a given drift magnitude? The
// experiment runs Monte-Carlo estimation on the HiPer-D analysis at spreads
// below, at, and above the radius, verifying the defining relationship
// (zero violations inside the certified ball) and quantifying how much
// random-drift headroom the worst-case number leaves on the table.
func RunE11(cfg Config) (*Result, error) {
	res := &Result{ID: "E11", Title: "Worst-case radius vs Monte-Carlo violation probability"}

	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.Named(cfg.Seed, "e11-system"))
	if err != nil {
		return nil, err
	}
	a, err := sys.Analysis()
	if err != nil {
		return nil, err
	}
	ctx := cfg.Context()
	rho, err := a.RobustnessCtx(ctx, core.Normalized{})
	if err != nil {
		return nil, err
	}

	samples := cfg.size(20000, 2000)
	tb := report.NewTable("E11: violation probability under uniform drift in the P-ball of radius c*rho",
		"c (ball radius / rho)", "violation rate", "mean ||P-P_orig||", "max ||P-P_orig||")
	var atRadius, far float64
	insideViol := 0
	for _, c := range []float64{0.5, 0.9, 0.999, 1.5, 2.5, 4.0} {
		mc, err := a.MonteCarloCtx(ctx, core.MCOptions{
			Model:   core.MCUniformBall,
			Spread:  c * rho.Value,
			Samples: samples,
			Seed:    cfg.Seed + int64(c*1000),
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(c, mc.ViolationRate, mc.MeanPDist, mc.MaxPDist)
		if c <= 1 {
			insideViol += mc.Violations
		}
		if c == 1.5 {
			atRadius = mc.ViolationRate
		}
		if c == 4.0 {
			far = mc.ViolationRate
		}
	}
	res.Tables = append(res.Tables, tb)

	res.check("zero violations inside the certified ball (c <= 1)",
		insideViol == 0, "%d violations across the c = 0.5/0.9/0.999 sweeps", insideViol)
	res.check("violation probability grows with drift beyond the radius",
		far >= atRadius && far > 0,
		"rate %.4g at c=1.5 vs %.4g at c=4.0", atRadius, far)

	// Gaussian relative drift: report the sigma at which violations first
	// appear, relative to rho (per-dimension scale).
	tb2 := report.NewTable("E11: violation rate under relative-normal drift (sigma per element)",
		"sigma", "violation rate", "critical feature")
	for _, sigma := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
		mc, err := a.MonteCarloCtx(ctx, core.MCOptions{
			Model:   core.MCRelativeNormal,
			Spread:  sigma,
			Samples: samples,
			Seed:    cfg.Seed + int64(sigma*10000),
		})
		if err != nil {
			return nil, err
		}
		crit := "-"
		if mc.CriticalFeature >= 0 {
			crit = a.Features[mc.CriticalFeature].Name
		}
		tb2.AddRow(sigma, mc.ViolationRate, crit)
	}
	res.Tables = append(res.Tables, tb2)

	res.note("The radius is a guarantee, not a forecast: random drift of substantial magnitude usually misses the worst-case direction, so violation rates just beyond rho stay small and climb smoothly. Use rho for promises, Monte-Carlo for expectations.")
	return res, nil
}
