package exper

import (
	"fmt"
	"math"
	"time"

	"fepia/internal/core"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

// RunE20 measures streaming incremental re-evaluation on the three-kind
// HiPer-D analysis (E9's instance): a watch that re-searches only the k
// features a parameter update dirtied and splices the ancestor's radii for
// the rest (core.RobustnessDelta, the primitive behind /v1/watch). The
// min-fold structure of rho_mu makes the splice exact, so the experiment
// checks two things: every delta result is bit-identical to the cold full
// evaluation, and a stream of small updates (k <= n/8 dirty) runs at least
// 5x faster than re-evaluating cold each time. The dirty window rotates
// through all n features so the timing ratio reflects the average feature
// cost, not a lucky cheap subset.
func RunE20(cfg Config) (*Result, error) {
	res := &Result{ID: "E20", Title: "Incremental re-evaluation: dirty-subset deltas vs cold full evaluations"}

	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.Named(cfg.Seed, "e20-system"))
	if err != nil {
		return nil, err
	}
	a, err := sys.AnalysisWithLoad()
	if err != nil {
		return nil, err
	}
	n := len(a.Features)
	k := n / 8
	if k < 1 {
		k = 1
	}

	// The ancestor: one cold full evaluation supplies the prior radii every
	// delta splices from.
	opt := core.EvalOptions{}
	prior, err := a.RobustnessWith(cfg.Context(), core.Normalized{}, opt)
	if err != nil {
		return nil, err
	}

	// One rotation cycle visits every feature once across ceil(n/k) windows;
	// cycles repeats the whole rotation.
	cycles := cfg.size(3, 1)
	windows := (n + k - 1) / k
	updates := cycles * windows
	window := func(u int) []int {
		dirty := make([]int, 0, k)
		for j := 0; j < k; j++ {
			dirty = append(dirty, (u*k+j)%n)
		}
		return dirty
	}

	// --- Part 1: deltas never move a radius -------------------------------
	bitIdentical := true
	for u := 0; u < updates && bitIdentical; u++ {
		r, err := a.RobustnessDelta(cfg.Context(), core.Normalized{}, opt, prior.PerFeature, window(u))
		if err != nil {
			return nil, err
		}
		if math.Float64bits(r.Value) != math.Float64bits(prior.Value) || r.Critical != prior.Critical {
			bitIdentical = false
			res.check("delta results are bit-identical to the cold evaluation", false,
				"update %d: value %.17g (critical %d) != %.17g (critical %d)",
				u, r.Value, r.Critical, prior.Value, prior.Critical)
		}
		for f := range r.PerFeature {
			if math.Float64bits(r.PerFeature[f].Value) != math.Float64bits(prior.PerFeature[f].Value) {
				bitIdentical = false
				res.check("delta results are bit-identical to the cold evaluation", false,
					"update %d feature %d: %.17g != %.17g",
					u, f, r.PerFeature[f].Value, prior.PerFeature[f].Value)
				break
			}
		}
	}
	if bitIdentical {
		res.check("delta results are bit-identical to the cold evaluation", true,
			"%d rotating windows of %d dirty features over %d", updates, k, n)
	}

	// --- Part 2: the update stream timing ---------------------------------
	// The same number of evaluations cold and incremental; the delta side
	// re-searches k of n features per update and folds spliced radii for
	// the rest, so the aggregate ratio over full rotations approaches n/k
	// regardless of how unevenly the per-feature costs are distributed.
	coldStart := time.Now()
	for u := 0; u < updates; u++ {
		if _, err := a.RobustnessWith(cfg.Context(), core.Normalized{}, opt); err != nil {
			return nil, err
		}
	}
	coldWall := time.Since(coldStart)

	deltaStart := time.Now()
	for u := 0; u < updates; u++ {
		if _, err := a.RobustnessDelta(cfg.Context(), core.Normalized{}, opt, prior.PerFeature, window(u)); err != nil {
			return nil, err
		}
	}
	deltaWall := time.Since(deltaStart)

	speedup := math.Inf(1)
	if deltaWall > 0 {
		speedup = float64(coldWall) / float64(deltaWall)
	}
	tb := report.NewTable("E20: cold vs incremental evaluation of the same update stream",
		"stream", "evaluations", "dirty/update", "total (ms)", "speedup")
	tb.AddRow("cold full", updates, n, float64(coldWall.Milliseconds()), "1.00x")
	tb.AddRow("delta", updates, k, float64(deltaWall.Milliseconds()), fmt.Sprintf("%.2fx", speedup))
	res.Tables = append(res.Tables, tb)

	res.check(fmt.Sprintf("delta updates with %d/%d dirty features are >= 5x faster than cold", k, n),
		speedup >= 5,
		"cold %v vs delta %v over %d updates (%.2fx)", coldWall, deltaWall, updates, speedup)
	res.note("Reading the table: each delta re-searches only its k dirty features at their global indices and min-folds the ancestor's radii for the other n-k, so the work ratio is k/n (~1/8 here) and the measured speedup tracks n/k minus the fold overhead. The rotation makes the comparison cost-fair: every feature is re-searched equally often, so expensive numeric-tier features cannot hide in the clean set. Bit-identity is the same splice contract the watch subsystem's differential (internal/oracle/delta_test.go) enforces end to end over HTTP.")
	return res, nil
}
