package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("long-name-here", 42)
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.5") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count = %d: %q", len(lines), out)
	}
	// Alignment: both data rows start their second column at the same rune
	// offset.
	idx1 := strings.Index(lines[3], "1.5")
	idx2 := strings.Index(lines[4], "42")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %d vs %d", idx1, idx2)
	}
}

func TestTableCellFormats(t *testing.T) {
	tb := NewTable("", "c")
	tb.AddRow(int64(7))
	tb.AddRow(uint64(8))
	tb.AddRow(true)
	tb.AddRow(float32(2.5))
	tb.AddRow([]int{1, 2})
	out := tb.String()
	for _, want := range []string{"7", "8", "true", "2.5", "[1 2]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	tb.AddRow("plain", 3)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Error("comma cell must be quoted")
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Error("quote cell must be escaped")
	}
	if !strings.Contains(out, "plain,3\n") {
		t.Error("plain row wrong")
	}
}

func TestPlotBasic(t *testing.T) {
	p := &Plot{Title: "curve", XLabel: "pi1", YLabel: "pi2", Width: 40, Height: 10}
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i * i)
	}
	p.Add(Series{Name: "boundary", X: xs, Y: ys, Mark: 'o'})
	p.Add(Series{Name: "orig", X: []float64{5}, Y: []float64{100}, Mark: '+'})
	out := p.String()
	if out == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(out, "curve") || !strings.Contains(out, "o=boundary") || !strings.Contains(out, "+=orig") {
		t.Errorf("plot chrome missing: %q", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Error("marks missing from canvas")
	}
	if !strings.Contains(out, "pi1") || !strings.Contains(out, "pi2") {
		t.Error("axis labels missing")
	}
}

func TestPlotEmptyErrors(t *testing.T) {
	p := &Plot{Title: "empty"}
	var b strings.Builder
	if err := p.WriteText(&b); err == nil {
		t.Error("plot with no points must error")
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := &Plot{Width: 10, Height: 5}
	p.Add(Series{Name: "pt", X: []float64{1, 1}, Y: []float64{2, 2}})
	if p.String() == "" {
		t.Error("degenerate-range plot should still render")
	}
}

func TestPlotSkipsNaN(t *testing.T) {
	p := &Plot{Width: 10, Height: 5}
	nan := 0.0
	nan = nan / nan
	p.Add(Series{Name: "s", X: []float64{nan, 1, 2}, Y: []float64{1, nan, 2}})
	out := p.String()
	if out == "" {
		t.Error("plot with some NaNs should render the finite points")
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("Cap", "a", "b|c")
	tb.AddRow("x|y", 2)
	out := tb.Markdown()
	if !strings.Contains(out, "**Cap**") {
		t.Error("caption missing")
	}
	if !strings.Contains(out, `| a | b\|c |`) {
		t.Errorf("header wrong: %q", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Error("separator missing")
	}
	if !strings.Contains(out, `| x\|y | 2 |`) {
		t.Errorf("row wrong: %q", out)
	}
}

func TestMarkdownNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	out := tb.Markdown()
	if strings.Contains(out, "**") {
		t.Error("empty title must not render a caption")
	}
}
