// Package report renders experiment results: aligned text tables for the
// terminal, CSV for downstream tooling, and ASCII scatter/curve plots that
// regenerate the paper's figure in a text environment. Keeping the
// formatting in one place makes every experiment's output uniform.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-ordered result table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold the cells; each row must have len(Columns) entries.
	Rows [][]string
}

// NewTable creates a titled table with the given columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of stringable cells. Numeric values are formatted
// with %g; everything else with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'g', 6, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'g', 6, 64)
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case uint64:
		return strconv.FormatUint(v, 10)
	case bool:
		return strconv.FormatBool(v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteText(&b)
	return b.String()
}
