package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is a named set of (x, y) points for the ASCII plot.
type Series struct {
	Name string
	X, Y []float64
	// Mark is the rune plotted for this series ('*' default).
	Mark rune
}

// Plot renders one or more series on a shared-axis ASCII canvas. It is used
// to regenerate the paper's Figure 1 (the boundary curve, the original
// operating point, and the nearest boundary point) in a terminal.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // canvas columns (default 64)
	Height int // canvas rows (default 20)
	Series []Series
}

// Add appends a series.
func (p *Plot) Add(s Series) { p.Series = append(p.Series, s) }

// WriteText renders the plot.
func (p *Plot) WriteText(w io.Writer) error {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	// Bounds over all series.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	var points int
	for _, s := range p.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return fmt.Errorf("report: plot %q has no points", p.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	canvas := make([][]rune, height)
	for r := range canvas {
		canvas[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range p.Series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				canvas[row][col] = mark
			}
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	legend := make([]string, 0, len(p.Series))
	for _, s := range p.Series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "  "))
	}
	fmt.Fprintf(&b, "%s: [%.4g, %.4g]\n", labelOr(p.YLabel, "y"), ymin, ymax)
	for _, row := range canvas {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s: [%.4g, %.4g]\n", labelOr(p.XLabel, "x"), xmin, xmax)
	_, err := io.WriteString(w, b.String())
	return err
}

func labelOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// String renders the plot to a string (empty on error).
func (p *Plot) String() string {
	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		return ""
	}
	return b.String()
}
