package report

import (
	"fmt"
	"io"
	"strings"
)

// WriteMarkdown renders the table as GitHub-flavored Markdown, with the
// title as a bold caption line. Pipes inside cells are escaped.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, cell := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(cell, "|", `\|`))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	b.WriteByte('|')
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the Markdown form as a string.
func (t *Table) Markdown() string {
	var b strings.Builder
	t.WriteMarkdown(&b)
	return b.String()
}
