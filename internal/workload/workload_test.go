package workload

import (
	"testing"

	"fepia/internal/stats"
)

func TestHiPerDDefaultValidates(t *testing.T) {
	s, err := HiPerD(DefaultHiPerD(), stats.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 sensors + 2×3 + 2 actuators = 10 apps.
	if len(s.Apps) != 10 {
		t.Errorf("apps = %d, want 10", len(s.Apps))
	}
	ok, err := s.QoSOK(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("generated system must satisfy its own QoS")
	}
}

func TestHiPerDConnectivity(t *testing.T) {
	p := DefaultHiPerD()
	p.Layers, p.Width = 3, 4
	s, err := HiPerD(p, stats.NewSource(7))
	if err != nil {
		t.Fatal(err)
	}
	// Every intermediate app must be on some sensor→actuator path: it has
	// at least one predecessor and one successor by construction.
	for v := 0; v < s.Graph.N(); v++ {
		isSource := len(s.Graph.Pred(v)) == 0
		isSink := len(s.Graph.Succ(v)) == 0
		if isSource && v >= p.Sensors {
			t.Errorf("non-sensor node %d has no predecessors", v)
		}
		if isSink && v < s.Graph.N()-p.Actuators {
			t.Errorf("non-actuator node %d has no successors", v)
		}
	}
	paths, err := s.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Error("no sensor→actuator paths")
	}
}

func TestHiPerDNoLayers(t *testing.T) {
	p := DefaultHiPerD()
	p.Layers, p.Width = 0, 0
	s, err := HiPerD(p, stats.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	// Sensors connect straight to actuators.
	if len(s.Apps) != p.Sensors+p.Actuators {
		t.Errorf("apps = %d", len(s.Apps))
	}
}

func TestHiPerDSharedMachines(t *testing.T) {
	p := DefaultHiPerD()
	p.DedicatedMachines = false
	p.Machines = 3
	s, err := HiPerD(p, stats.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Machines) != 3 {
		t.Errorf("machines = %d", len(s.Machines))
	}
	ok, err := s.QoSOK(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("shared-machine system must still satisfy QoS (rate rescaled)")
	}
}

func TestHiPerDDeterminism(t *testing.T) {
	a, err := HiPerD(DefaultHiPerD(), stats.NewSource(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HiPerD(DefaultHiPerD(), stats.NewSource(11))
	if err != nil {
		t.Fatal(err)
	}
	if !a.MsgSizes.EqualApprox(b.MsgSizes, 0) {
		t.Error("same seed must reproduce message sizes")
	}
	ea, eb := a.OrigExecTimes(), b.OrigExecTimes()
	if !ea.EqualApprox(eb, 0) {
		t.Error("same seed must reproduce exec times")
	}
}

func TestHiPerDAnalysisWorks(t *testing.T) {
	s, err := HiPerD(DefaultHiPerD(), stats.NewSource(13))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Features) == 0 || a.TotalDim() == 0 {
		t.Error("analysis must have features and dimensions")
	}
}

func TestHiPerDParamErrors(t *testing.T) {
	src := stats.NewSource(1)
	bad := []func(*HiPerDParams){
		func(p *HiPerDParams) { p.Sensors = 0 },
		func(p *HiPerDParams) { p.Actuators = 0 },
		func(p *HiPerDParams) { p.Layers = 2; p.Width = 0 },
		func(p *HiPerDParams) { p.ExecLo = 0 },
		func(p *HiPerDParams) { p.ExecHi = p.ExecLo / 2 },
		func(p *HiPerDParams) { p.MsgLo = -1 },
		func(p *HiPerDParams) { p.Bandwidth = 0 },
		func(p *HiPerDParams) { p.Rate = 0 },
		func(p *HiPerDParams) { p.LatencySlack = 1 },
		func(p *HiPerDParams) { p.DedicatedMachines = false; p.Machines = 0 },
	}
	for i, mut := range bad {
		p := DefaultHiPerD()
		mut(&p)
		if _, err := HiPerD(p, src); err == nil {
			t.Errorf("case %d: expected parameter error", i)
		}
	}
}

func TestMakespanGenerator(t *testing.T) {
	m, err := Makespan(DefaultMakespan(), stats.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks != 64 || m.Machines != 8 {
		t.Errorf("shape %dx%d", m.Tasks, m.Machines)
	}
}
