// Package workload generates the randomized but reproducible scenarios the
// experiments run on: layered HiPer-D application graphs with sensors,
// processing stages and actuators, and makespan problem instances built on
// ETC matrices. All randomness flows through named stats.Source streams, so
// every experiment table is bit-reproducible.
package workload

import (
	"errors"
	"fmt"

	"fepia/internal/dag"
	"fepia/internal/etc"
	"fepia/internal/hiperd"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// HiPerDParams shape a random streaming scenario.
type HiPerDParams struct {
	// Sensors is the number of source applications.
	Sensors int
	// Layers is the number of intermediate processing layers.
	Layers int
	// Width is the number of applications per intermediate layer.
	Width int
	// Actuators is the number of sink applications.
	Actuators int
	// ExecLo/ExecHi bound base execution times (seconds).
	ExecLo, ExecHi float64
	// MsgLo/MsgHi bound message sizes (bytes).
	MsgLo, MsgHi float64
	// Bandwidth of inter-machine links (bytes/second).
	Bandwidth float64
	// Rate λ of the sensors (data sets per second).
	Rate float64
	// LatencySlack multiplies the nominal worst latency to produce the
	// deadline (> 1 keeps the initial allocation feasible).
	LatencySlack float64
	// DedicatedMachines allocates one application per machine when true
	// (the contention-free configuration the DES validation uses);
	// otherwise Machines machines are used round-robin.
	DedicatedMachines bool
	// Machines is the machine count when DedicatedMachines is false.
	Machines int
}

// DefaultHiPerD returns a mid-sized scenario: 2 sensors, 2×3 processing
// apps, 2 actuators, dedicated machines.
func DefaultHiPerD() HiPerDParams {
	return HiPerDParams{
		Sensors: 2, Layers: 2, Width: 3, Actuators: 2,
		ExecLo: 0.01, ExecHi: 0.05,
		MsgLo: 500, MsgHi: 5000,
		Bandwidth: 1e6, Rate: 4, LatencySlack: 1.5,
		DedicatedMachines: true,
	}
}

// ErrBadParams reports inconsistent generator parameters.
var ErrBadParams = errors.New("workload: invalid parameters")

// HiPerD generates a random layered streaming system: every sensor feeds
// every first-layer application, consecutive layers are connected with a
// random bipartite pattern (each app gets at least one predecessor and each
// feeds at least one successor), and the last layer feeds every actuator.
// The returned system validates and satisfies its own QoS at the nominal
// operating point.
func HiPerD(p HiPerDParams, src *stats.Source) (*hiperd.System, error) {
	if p.Sensors < 1 || p.Layers < 0 || p.Actuators < 1 || (p.Layers > 0 && p.Width < 1) {
		return nil, fmt.Errorf("%w: sensors=%d layers=%d width=%d actuators=%d",
			ErrBadParams, p.Sensors, p.Layers, p.Width, p.Actuators)
	}
	if p.ExecLo <= 0 || p.ExecHi < p.ExecLo || p.MsgLo <= 0 || p.MsgHi < p.MsgLo {
		return nil, fmt.Errorf("%w: exec [%g,%g], msg [%g,%g]", ErrBadParams, p.ExecLo, p.ExecHi, p.MsgLo, p.MsgHi)
	}
	if p.Bandwidth <= 0 || p.Rate <= 0 || p.LatencySlack <= 1 {
		return nil, fmt.Errorf("%w: bandwidth=%g rate=%g slack=%g", ErrBadParams, p.Bandwidth, p.Rate, p.LatencySlack)
	}
	if !p.DedicatedMachines && p.Machines < 1 {
		return nil, fmt.Errorf("%w: need Machines >= 1 without dedicated machines", ErrBadParams)
	}

	// Node layout: [sensors][layer 0]…[layer L-1][actuators].
	nApps := p.Sensors + p.Layers*p.Width + p.Actuators
	g, err := dag.New(nApps)
	if err != nil {
		return nil, err
	}
	layerNodes := func(layer int) []int {
		// layer −1 = sensors, 0…Layers−1 = processing, Layers = actuators.
		switch {
		case layer < 0:
			return seq(0, p.Sensors)
		case layer < p.Layers:
			start := p.Sensors + layer*p.Width
			return seq(start, p.Width)
		default:
			return seq(p.Sensors+p.Layers*p.Width, p.Actuators)
		}
	}
	for layer := -1; layer < p.Layers; layer++ {
		from := layerNodes(layer)
		to := layerNodes(layer + 1)
		if layer == -1 || layer == p.Layers-1 {
			// Full bipartite at the boundaries: sensors feed the whole
			// first layer; the last layer feeds every actuator.
			for _, u := range from {
				for _, v := range to {
					if err := g.AddEdge(u, v); err != nil {
						return nil, err
					}
				}
			}
			continue
		}
		// Random interior wiring with coverage guarantees.
		connectedTo := make(map[int]bool)
		for _, u := range from {
			v := to[src.Intn(len(to))]
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			connectedTo[v] = true
			// Extra random edges.
			for _, w := range to {
				if w != v && src.Float64() < 0.3 {
					if err := g.AddEdge(u, w); err != nil {
						return nil, err
					}
					connectedTo[w] = true
				}
			}
		}
		for _, v := range to {
			if !connectedTo[v] {
				u := from[src.Intn(len(from))]
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}

	apps := make([]hiperd.App, nApps)
	for i := range apps {
		apps[i] = hiperd.App{
			Name:     fmt.Sprintf("app-%d", i),
			BaseExec: src.Uniform(p.ExecLo, p.ExecHi),
		}
	}
	edges := g.Edges()
	msgs := make(vec.V, len(edges))
	for k := range msgs {
		msgs[k] = src.Uniform(p.MsgLo, p.MsgHi)
	}

	var machines []hiperd.Machine
	alloc := make([]int, nApps)
	if p.DedicatedMachines {
		machines = make([]hiperd.Machine, nApps)
		for j := range machines {
			machines[j] = hiperd.Machine{Name: fmt.Sprintf("m%d", j), Speed: 1}
			alloc[j] = j
		}
	} else {
		machines = make([]hiperd.Machine, p.Machines)
		for j := range machines {
			machines[j] = hiperd.Machine{Name: fmt.Sprintf("m%d", j), Speed: 1}
		}
		for i := range alloc {
			alloc[i] = i % p.Machines
		}
	}

	s := &hiperd.System{
		Apps:      apps,
		Graph:     g,
		MsgSizes:  msgs,
		Machines:  machines,
		Bandwidth: p.Bandwidth,
		Alloc:     alloc,
		Rate:      p.Rate,
		// Placeholder; set from the nominal latency below.
		LatencyMax: 1,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nominal, err := s.WorstLatency(s.OrigExecTimes(), s.OrigMsgSizes())
	if err != nil {
		return nil, err
	}
	s.LatencyMax = p.LatencySlack * nominal

	// The QoS must hold at the nominal point; if the draw produced an
	// overloaded machine, scale the rate down to 80% of capacity.
	mu, err := s.MachineUtil(s.OrigExecTimes())
	if err != nil {
		return nil, err
	}
	if worst := mu.Max(); worst >= 1 {
		s.Rate = s.Rate / worst * 0.8
	}
	if ok, err := s.QoSOK(s.OrigExecTimes(), s.OrigMsgSizes()); err != nil || !ok {
		return nil, fmt.Errorf("workload: generated system violates its own QoS (err=%v)", err)
	}
	return s, nil
}

func seq(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// MakespanParams shape a random independent-task instance.
type MakespanParams struct {
	Tasks, Machines   int
	MeanTask          float64
	TaskCV, MachineCV float64
	Consistent        bool
}

// DefaultMakespan returns the mid-heterogeneity instance family used by the
// ranking experiment.
func DefaultMakespan() MakespanParams {
	return MakespanParams{Tasks: 64, Machines: 8, MeanTask: 10, TaskCV: 0.35, MachineCV: 0.35}
}

// Makespan draws an ETC matrix with the CVB method.
func Makespan(p MakespanParams, src *stats.Source) (*etc.Matrix, error) {
	return etc.CVB(etc.CVBParams{
		Tasks: p.Tasks, Machines: p.Machines,
		MeanTask: p.MeanTask, TaskCV: p.TaskCV, MachineCV: p.MachineCV,
		Consistent: p.Consistent,
	}, src)
}
