// Package durable provides the shared durability primitives the
// repository's persistent pieces build on: atomic file replacement and a
// cheap payload checksum. The scenario store, the coordinator's ring
// journal, and the search checkpoint store all follow the same two rules —
// a file under a final name is always complete (same-directory temp file +
// fsync + rename), and every payload carries a checksum so a torn or
// bit-rotted file is detected at read time instead of trusted. Corruption
// handling stays with the callers (each quarantines and counts in its own
// way); this package only guarantees writes land whole and reads can tell.
package durable

import (
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
)

// Checksum is FNV-1a/64 over the bytes, hex-encoded. Not cryptographic —
// it detects truncation and bit rot, which is the threat model for files
// only the daemon itself writes.
func Checksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return strconv.FormatUint(h.Sum64(), 16)
}

// WriteFileAtomic writes data to path via a temp file in path's directory,
// fsync, and rename, so a reader never observes a half-written file under
// the final name. tmpPattern names the temp files (os.CreateTemp pattern,
// e.g. ".put-*"); dot-prefix it so directory scans skip leftovers from a
// crash mid-write.
func WriteFileAtomic(path string, data []byte, tmpPattern string) error {
	f, err := os.CreateTemp(filepath.Dir(path), tmpPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
