package des

import (
	"math"
	"testing"
)

func TestScheduleAndRunOrder(t *testing.T) {
	sim := NewSimulator()
	var fired []int
	sim.Schedule(2, func(*Simulator) { fired = append(fired, 2) })
	sim.Schedule(1, func(*Simulator) { fired = append(fired, 1) })
	sim.Schedule(3, func(*Simulator) { fired = append(fired, 3) })
	n := sim.RunAll()
	if n != 3 {
		t.Fatalf("processed %d events", n)
	}
	if fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Errorf("firing order %v", fired)
	}
	if sim.Now() != 3 {
		t.Errorf("clock = %v, want 3", sim.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	sim := NewSimulator()
	var fired []string
	sim.Schedule(1, func(*Simulator) { fired = append(fired, "a") })
	sim.Schedule(1, func(*Simulator) { fired = append(fired, "b") })
	sim.Schedule(1, func(*Simulator) { fired = append(fired, "c") })
	sim.RunAll()
	if fired[0] != "a" || fired[1] != "b" || fired[2] != "c" {
		t.Errorf("tie order %v, want FIFO", fired)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	sim := NewSimulator()
	sim.Schedule(5, func(*Simulator) {})
	sim.RunAll()
	if err := sim.Schedule(1, func(*Simulator) {}); err == nil {
		t.Error("scheduling in the past must error")
	}
	if err := sim.Schedule(math.NaN(), func(*Simulator) {}); err == nil {
		t.Error("NaN time must error")
	}
}

func TestScheduleInCascade(t *testing.T) {
	sim := NewSimulator()
	depth := 0
	var step Handler
	step = func(s *Simulator) {
		depth++
		if depth < 5 {
			s.ScheduleIn(1, step)
		}
	}
	sim.ScheduleIn(1, step)
	sim.RunAll()
	if depth != 5 {
		t.Errorf("cascade depth = %d, want 5", depth)
	}
	if sim.Now() != 5 {
		t.Errorf("clock = %v, want 5", sim.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	sim := NewSimulator()
	var fired int
	for i := 1; i <= 10; i++ {
		sim.Schedule(float64(i), func(*Simulator) { fired++ })
	}
	n := sim.Run(5)
	if n != 5 || fired != 5 {
		t.Errorf("processed %d fired %d, want 5", n, fired)
	}
	if sim.Now() != 5 {
		t.Errorf("clock = %v, want horizon 5", sim.Now())
	}
	if sim.Pending() != 5 {
		t.Errorf("pending = %d, want 5", sim.Pending())
	}
	// Resume to completion.
	sim.RunAll()
	if fired != 10 {
		t.Errorf("after resume fired = %d", fired)
	}
}

func TestRunHorizonAdvancesIdleClock(t *testing.T) {
	sim := NewSimulator()
	sim.Run(42)
	if sim.Now() != 42 {
		t.Errorf("idle clock = %v, want 42", sim.Now())
	}
}

func TestStop(t *testing.T) {
	sim := NewSimulator()
	var fired int
	for i := 1; i <= 10; i++ {
		sim.Schedule(float64(i), func(s *Simulator) {
			fired++
			if fired == 3 {
				s.Stop()
			}
		})
	}
	sim.RunAll()
	if fired != 3 {
		t.Errorf("fired = %d after Stop, want 3", fired)
	}
	if sim.Pending() != 7 {
		t.Errorf("pending = %d", sim.Pending())
	}
}

func TestProcessedCounter(t *testing.T) {
	sim := NewSimulator()
	sim.Schedule(1, func(*Simulator) {})
	sim.Schedule(2, func(*Simulator) {})
	sim.RunAll()
	if sim.Processed() != 2 {
		t.Errorf("Processed = %d", sim.Processed())
	}
}

func TestStationSequentialService(t *testing.T) {
	sim := NewSimulator()
	st := NewStation(sim, "m1")
	var finishTimes []float64
	done := func(s *Simulator) { finishTimes = append(finishTimes, s.Now()) }
	// Three jobs submitted at t=0 with service 2 each: finish 2, 4, 6.
	st.Submit(2, done)
	st.Submit(2, done)
	st.Submit(2, done)
	sim.RunAll()
	want := []float64{2, 4, 6}
	for i, w := range want {
		if finishTimes[i] != w {
			t.Errorf("finish[%d] = %v, want %v", i, finishTimes[i], w)
		}
	}
	if st.Completed() != 3 {
		t.Errorf("completed = %d", st.Completed())
	}
	// Waits: 0, 2, 4 → mean 2. System: 2, 4, 6 → mean 4.
	if st.MeanWait() != 2 {
		t.Errorf("mean wait = %v, want 2", st.MeanWait())
	}
	if st.MeanSystemTime() != 4 {
		t.Errorf("mean system = %v, want 4", st.MeanSystemTime())
	}
	if st.Utilization() != 1 {
		t.Errorf("utilization = %v, want 1 (always busy)", st.Utilization())
	}
}

func TestStationIdleGaps(t *testing.T) {
	sim := NewSimulator()
	st := NewStation(sim, "m1")
	sim.Schedule(0, func(*Simulator) { st.Submit(1, nil) })
	sim.Schedule(5, func(*Simulator) { st.Submit(1, nil) })
	sim.RunAll()
	// Busy 2 of 6 time units.
	if got := st.Utilization(); math.Abs(got-2.0/6.0) > 1e-12 {
		t.Errorf("utilization = %v, want 1/3", got)
	}
	if st.MeanWait() != 0 {
		t.Errorf("no queueing expected, wait = %v", st.MeanWait())
	}
}

func TestStationRejectsBadService(t *testing.T) {
	sim := NewSimulator()
	st := NewStation(sim, "m1")
	if err := st.Submit(-1, nil); err == nil {
		t.Error("negative service must error")
	}
	if err := st.Submit(math.NaN(), nil); err == nil {
		t.Error("NaN service must error")
	}
}

func TestStationQueueLenAndBusy(t *testing.T) {
	sim := NewSimulator()
	st := NewStation(sim, "m1")
	st.Submit(10, nil)
	st.Submit(10, nil)
	st.Submit(10, nil)
	if !st.Busy() || st.QueueLen() != 2 {
		t.Errorf("busy=%v queue=%d, want busy with 2 queued", st.Busy(), st.QueueLen())
	}
	sim.RunAll()
	if st.Busy() || st.QueueLen() != 0 {
		t.Error("station should drain")
	}
}

func TestStationZeroService(t *testing.T) {
	sim := NewSimulator()
	st := NewStation(sim, "m1")
	fired := false
	st.Submit(0, func(*Simulator) { fired = true })
	sim.RunAll()
	if !fired || st.Completed() != 1 {
		t.Error("zero-service job must complete")
	}
}

func TestMMQueueSanity(t *testing.T) {
	// Deterministic arrivals every 2, service 1: utilization 0.5 and no
	// queueing in steady state.
	sim := NewSimulator()
	st := NewStation(sim, "m1")
	const n = 1000
	for i := 0; i < n; i++ {
		sim.Schedule(float64(i)*2, func(*Simulator) { st.Submit(1, nil) })
	}
	sim.RunAll()
	if math.Abs(st.Utilization()-0.5) > 0.01 {
		t.Errorf("utilization = %v, want ≈0.5", st.Utilization())
	}
	if st.MeanWait() != 0 {
		t.Errorf("wait = %v, want 0", st.MeanWait())
	}
}
