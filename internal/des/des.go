// Package des is a compact discrete-event simulation kernel: a priority
// queue of timestamped events with deterministic tie-breaking, a simulation
// clock, and run controls. The HiPer-D substrate uses it to validate its
// analytic computation/communication models against an actually running
// system — the cross-check behind experiment E6.
package des

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
)

// Handler is the action executed when an event fires. It may schedule
// further events on the simulator.
type Handler func(sim *Simulator)

// event is a scheduled occurrence. seq breaks time ties FIFO so that runs
// are deterministic regardless of heap internals.
type event struct {
	at      float64
	seq     uint64
	handler Handler
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the event queue and the clock. The zero value is not ready;
// use NewSimulator.
type Simulator struct {
	now     float64
	queue   eventHeap
	seq     uint64
	stopped bool
	events  uint64 // processed-event counter
}

// NewSimulator returns a simulator with the clock at zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Simulation errors.
var (
	ErrPastEvent = errors.New("des: event scheduled in the past")
)

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Processed returns how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.events }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule enqueues h to fire at absolute time at. Events scheduled for the
// current instant are allowed and fire after already-queued events at that
// instant (FIFO).
func (s *Simulator) Schedule(at float64, h Handler) error {
	if math.IsNaN(at) || at < s.now {
		return fmt.Errorf("%w: at=%g, now=%g", ErrPastEvent, at, s.now)
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, handler: h})
	return nil
}

// ScheduleIn enqueues h to fire delay time units from now.
func (s *Simulator) ScheduleIn(delay float64, h Handler) error {
	return s.Schedule(s.now+delay, h)
}

// Stop makes the current Run return after the in-flight event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events until the queue drains, the clock passes until, or
// Stop is called, whichever comes first. It returns the number of events
// processed by this call. Events scheduled exactly at the horizon still fire.
func (s *Simulator) Run(until float64) uint64 {
	s.stopped = false
	var processed uint64
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.handler(s)
		processed++
		s.events++
	}
	// Advance the clock to the horizon when it was reached without events.
	if !s.stopped && (len(s.queue) == 0 || s.queue[0].at > until) && until > s.now && !math.IsInf(until, 1) {
		s.now = until
	}
	return processed
}

// RunAll processes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() uint64 { return s.Run(math.Inf(1)) }

// ErrHandlerPanic is returned (wrapped) by RunCtx when an event handler
// panics; the simulation stops at the offending event instead of taking
// down the process.
var ErrHandlerPanic = errors.New("des: event handler panicked")

// RunCtx is the hardened run loop: it processes events like Run, but ctx is
// checked before every event (a cancelled or expired context stops the run
// with a wrapped ctx.Err()) and a panicking Handler is contained as a typed
// ErrHandlerPanic. Long-running or user-extended simulations should prefer
// it over Run.
func (s *Simulator) RunCtx(ctx context.Context, until float64) (uint64, error) {
	s.stopped = false
	var processed uint64
	for len(s.queue) > 0 && !s.stopped {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return processed, fmt.Errorf("des: run cancelled at t=%g after %d events: %w", s.now, processed, err)
			}
		}
		next := s.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		if err := s.fire(next.handler); err != nil {
			return processed, err
		}
		processed++
		s.events++
	}
	if !s.stopped && (len(s.queue) == 0 || s.queue[0].at > until) && until > s.now && !math.IsInf(until, 1) {
		s.now = until
	}
	return processed, nil
}

// fire runs one handler with panic containment.
func (s *Simulator) fire(h Handler) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w at t=%g: %v", ErrHandlerPanic, s.now, r)
		}
	}()
	h(s)
	return nil
}
