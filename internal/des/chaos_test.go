package des

// Fault-injection tests: the simulation kernel must survive the faults the
// analyzer measures — corrupt numeric inputs, panicking user handlers, and
// runs that must respect deadlines.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"fepia/internal/chaos"
)

func TestSubmitRejectsCorruptServiceTimes(t *testing.T) {
	sim := NewSimulator()
	st := NewStation(sim, "cpu")
	for _, bad := range []float64{math.NaN(), math.Inf(1), -1} {
		o := chaos.Probe(time.Second, time.Second, func(context.Context) error {
			return st.Submit(bad, nil)
		})
		if o.Panicked() {
			t.Fatalf("Submit(%g) panicked: %v", bad, o.Panic)
		}
		if !errors.Is(o.Err, ErrBadService) {
			t.Fatalf("Submit(%g) err = %v, want ErrBadService", bad, o.Err)
		}
	}
}

func TestScheduleRejectsCorruptTimes(t *testing.T) {
	sim := NewSimulator()
	if err := sim.Schedule(math.NaN(), func(*Simulator) {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("Schedule(NaN) err = %v, want ErrPastEvent", err)
	}
}

func TestRunCtxContainsHandlerPanic(t *testing.T) {
	sim := NewSimulator()
	fired := 0
	if err := sim.Schedule(1, func(*Simulator) { fired++ }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Schedule(2, func(*Simulator) { panic("bad handler") }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Schedule(3, func(*Simulator) { fired++ }); err != nil {
		t.Fatal(err)
	}
	o := chaos.Probe(time.Second, time.Second, func(ctx context.Context) error {
		_, err := sim.RunCtx(ctx, math.Inf(1))
		return err
	})
	if o.Panicked() {
		t.Fatalf("RunCtx let a handler panic escape: %v", o.Panic)
	}
	if !errors.Is(o.Err, ErrHandlerPanic) {
		t.Fatalf("err = %v, want ErrHandlerPanic", o.Err)
	}
	if fired != 1 {
		t.Fatalf("events after the panic ran anyway: fired = %d, want 1", fired)
	}
}

func TestRunCtxCancellationIsPrompt(t *testing.T) {
	// A self-perpetuating event stream (each event schedules the next and
	// burns wall-clock time) never drains; only cancellation stops it.
	sim := NewSimulator()
	var tick func(s *Simulator)
	tick = func(s *Simulator) {
		time.Sleep(2 * time.Millisecond)
		_ = s.ScheduleIn(1, tick)
	}
	if err := sim.Schedule(0, tick); err != nil {
		t.Fatal(err)
	}
	o := chaos.ProbeCancel(30*time.Millisecond, 100*time.Millisecond, func(ctx context.Context) error {
		_, err := sim.RunCtx(ctx, math.Inf(1))
		return err
	})
	if o.TimedOut {
		t.Fatalf("RunCtx did not return within 100ms of cancellation (elapsed %v)", o.Elapsed)
	}
	if !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.Err)
	}
}

func TestRunCtxMatchesRunOnCleanStream(t *testing.T) {
	build := func() *Simulator {
		sim := NewSimulator()
		for i := 1; i <= 5; i++ {
			at := float64(i)
			_ = sim.Schedule(at, func(s *Simulator) { _ = s.ScheduleIn(10, func(*Simulator) {}) })
		}
		return sim
	}
	s1, s2 := build(), build()
	n1 := s1.Run(7)
	n2, err := s2.RunCtx(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || s1.Now() != s2.Now() || s1.Pending() != s2.Pending() {
		t.Fatalf("RunCtx diverged from Run: (%d, %g, %d) vs (%d, %g, %d)",
			n2, s2.Now(), s2.Pending(), n1, s1.Now(), s1.Pending())
	}
}
