package des

import (
	"errors"
	"fmt"
	"math"
)

// Station is a single-server FIFO queueing resource: jobs are served one at
// a time in arrival order, each occupying the server for its service time.
// The HiPer-D simulator models every machine and every communication link as
// a Station — data-set computations and message transmissions are its jobs.
type Station struct {
	// Name identifies the station in reports.
	Name string

	sim   *Simulator
	busy  bool
	queue []job

	// Accumulated statistics.
	completed   uint64
	busyUntil   float64 // time the in-service job finishes
	busyTime    float64 // total server-occupied time
	totalWait   float64 // total time jobs spent queued (excludes service)
	totalSystem float64 // total time jobs spent in the station (wait+service)
}

type job struct {
	service float64
	arrived float64
	done    Handler
}

// NewStation attaches a station to a simulator.
func NewStation(sim *Simulator, name string) *Station {
	return &Station{Name: name, sim: sim}
}

// ErrBadService reports a negative or non-finite (NaN/Inf) service time.
var ErrBadService = errors.New("des: invalid service time")

// Submit enqueues a job with the given service time; done (optional) fires
// when the job completes. Non-finite service times are rejected — an Inf
// service time would wedge the station (and the clock) forever.
func (st *Station) Submit(service float64, done Handler) error {
	if service < 0 || service != service || service > math.MaxFloat64 {
		return fmt.Errorf("%w: %g at %q", ErrBadService, service, st.Name)
	}
	j := job{service: service, arrived: st.sim.Now(), done: done}
	if st.busy {
		st.queue = append(st.queue, j)
		return nil
	}
	return st.start(j)
}

func (st *Station) start(j job) error {
	st.busy = true
	start := st.sim.Now()
	finish := start + j.service
	st.busyUntil = finish
	return st.sim.Schedule(finish, func(sim *Simulator) {
		st.completed++
		st.busyTime += j.service
		st.totalWait += start - j.arrived
		st.totalSystem += sim.Now() - j.arrived
		if j.done != nil {
			j.done(sim)
		}
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			// start cannot fail here: service was validated at Submit.
			_ = st.start(next)
		} else {
			st.busy = false
		}
	})
}

// Completed returns the number of jobs fully served.
func (st *Station) Completed() uint64 { return st.completed }

// QueueLen returns the number of jobs waiting (excluding the one in
// service).
func (st *Station) QueueLen() int { return len(st.queue) }

// Busy reports whether the server is occupied right now.
func (st *Station) Busy() bool { return st.busy }

// Utilization returns completed busy time divided by elapsed time (0 before
// time advances). The in-service job contributes only once it completes, so
// read utilization at job boundaries or after the run drains.
func (st *Station) Utilization() float64 {
	now := st.sim.Now()
	if now <= 0 {
		return 0
	}
	return st.busyTime / now
}

// MeanWait returns the average queueing delay of completed jobs.
func (st *Station) MeanWait() float64 {
	if st.completed == 0 {
		return 0
	}
	return st.totalWait / float64(st.completed)
}

// MeanSystemTime returns the average total (wait + service) time of
// completed jobs — the per-stage latency the HiPer-D model compares against
// its analytic prediction.
func (st *Station) MeanSystemTime() float64 {
	if st.completed == 0 {
		return 0
	}
	return st.totalSystem / float64(st.completed)
}
