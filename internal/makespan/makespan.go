// Package makespan implements the independent-task resource-allocation
// system that the FePIA papers use as their canonical example: t tasks
// mapped onto m machines through an ETC matrix, with the makespan (latest
// machine finish time) as the performance requirement.
//
// In FePIA terms: the perturbation parameter is the vector C of actual task
// execution times (the estimates C^orig come from the ETC matrix); the
// performance features are the per-machine finish times F_j(C); and the
// robustness requirement is that the actual makespan not exceed τ times the
// estimated one. Because each finish time is a sum of the execution times of
// the tasks on that machine, every feature is linear and the analysis has
// the closed form
//
//	r_μ(F_j, C) = (τ·M^orig − F_j(C^orig)) / √(n_j),
//
// with n_j the number of tasks on machine j — Eq. (3)-style geometry from
// the TPDS 2004 paper. The package exposes both this closed form and an
// adapter producing a core.Analysis, so the generic engine can be
// cross-validated against it (experiment E7 and the Figure-1 regeneration).
package makespan

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/etc"
	"fepia/internal/scenario"
	"fepia/internal/vec"
)

// System is an allocation of independent tasks to machines.
type System struct {
	// ETC holds the estimated execution times (tasks × machines).
	ETC *etc.Matrix
	// Alloc maps each task to its machine: the resource allocation μ.
	Alloc []int
}

// Validation errors.
var (
	ErrNilETC   = errors.New("makespan: nil ETC matrix")
	ErrBadAlloc = errors.New("makespan: allocation shape mismatch")
)

// New constructs and validates a system.
func New(m *etc.Matrix, alloc []int) (*System, error) {
	s := &System{ETC: m, Alloc: alloc}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks allocation consistency.
func (s *System) Validate() error {
	if s.ETC == nil {
		return ErrNilETC
	}
	if len(s.Alloc) != s.ETC.Tasks {
		return fmt.Errorf("%w: %d assignments for %d tasks", ErrBadAlloc, len(s.Alloc), s.ETC.Tasks)
	}
	for t, m := range s.Alloc {
		if m < 0 || m >= s.ETC.Machines {
			return fmt.Errorf("%w: task %d on machine %d of %d", ErrBadAlloc, t, m, s.ETC.Machines)
		}
	}
	return nil
}

// Tasks returns the task count.
func (s *System) Tasks() int { return s.ETC.Tasks }

// Machines returns the machine count.
func (s *System) Machines() int { return s.ETC.Machines }

// TasksOn returns the tasks assigned to machine m, ascending.
func (s *System) TasksOn(m int) []int {
	var out []int
	for t, mm := range s.Alloc {
		if mm == m {
			out = append(out, t)
		}
	}
	return out
}

// OrigTimes returns C^orig: each task's estimated execution time on its
// assigned machine.
func (s *System) OrigTimes() vec.V {
	c := make(vec.V, s.ETC.Tasks)
	for t, m := range s.Alloc {
		c[t] = s.ETC.At(t, m)
	}
	return c
}

// FinishTimes computes the per-machine finish times F_j(C) for actual
// execution times c (len = tasks).
func (s *System) FinishTimes(c vec.V) (vec.V, error) {
	if len(c) != s.ETC.Tasks {
		return nil, fmt.Errorf("%w: %d times for %d tasks", ErrBadAlloc, len(c), s.ETC.Tasks)
	}
	f := make(vec.V, s.ETC.Machines)
	for t, m := range s.Alloc {
		f[m] += c[t]
	}
	return f, nil
}

// Makespan returns max_j F_j(C).
func (s *System) Makespan(c vec.V) (float64, error) {
	f, err := s.FinishTimes(c)
	if err != nil {
		return 0, err
	}
	return f.Max(), nil
}

// OrigMakespan returns M^orig, the estimated makespan of the allocation.
func (s *System) OrigMakespan() float64 {
	f, _ := s.FinishTimes(s.OrigTimes())
	return f.Max()
}

// ClosedFormRadii evaluates the TPDS 2004 closed form: for requirement
// makespan ≤ τ·M^orig, machine j's robustness radius is
// (τ·M^orig − F_j^orig)/√n_j (infinite for empty machines), and the system
// robustness ρ is their minimum. τ must exceed 1.
func (s *System) ClosedFormRadii(tau float64) (radii vec.V, rho float64, err error) {
	if tau <= 1 {
		return nil, 0, fmt.Errorf("makespan: tau = %g, want > 1", tau)
	}
	return s.RadiiWithBound(tau * s.OrigMakespan())
}

// RadiiWithBound evaluates the same closed form against an explicit makespan
// requirement (bound), independent of this allocation's own makespan. Use it
// to compare different allocations of the same instance under one shared
// requirement; a negative radius means the allocation already violates the
// bound.
func (s *System) RadiiWithBound(bound float64) (radii vec.V, rho float64, err error) {
	if bound <= 0 {
		return nil, 0, fmt.Errorf("makespan: bound = %g, want > 0", bound)
	}
	f, err := s.FinishTimes(s.OrigTimes())
	if err != nil {
		return nil, 0, err
	}
	radii = make(vec.V, s.ETC.Machines)
	rho = math.Inf(1)
	for j := 0; j < s.ETC.Machines; j++ {
		n := len(s.TasksOn(j))
		if n == 0 {
			radii[j] = math.Inf(1)
			continue
		}
		radii[j] = (bound - f[j]) / math.Sqrt(float64(n))
		if radii[j] < rho {
			rho = radii[j]
		}
	}
	return radii, rho, nil
}

// Analysis adapts the system to a core.Analysis with a single perturbation
// parameter (the actual execution times, one element per task) and one
// linear feature per non-empty machine, each bounded by τ·M^orig. The
// generic engine applied to this analysis must reproduce ClosedFormRadii —
// the cross-check used in tests and experiment E1.
func (s *System) Analysis(tau float64) (*core.Analysis, error) {
	if tau <= 1 {
		return nil, fmt.Errorf("makespan: tau = %g, want > 1", tau)
	}
	return s.AnalysisWithBound(tau * s.OrigMakespan())
}

// AnalysisWithBound is Analysis against an explicit makespan requirement,
// independent of this allocation's own makespan — the form the allocation
// search uses, where every candidate allocation of one instance is scored
// under a single shared bound. The allocation must be feasible in the weak
// sense that at least one machine is non-empty; the bound itself may already
// be violated (the engine then reports the distance to the requirement
// boundary, which search feasibility handling must interpret).
func (s *System) AnalysisWithBound(bound float64) (*core.Analysis, error) {
	if !(bound > 0) || math.IsInf(bound, 0) {
		return nil, fmt.Errorf("makespan: bound = %g, want finite > 0", bound)
	}
	orig := s.OrigTimes()
	param := core.Perturbation{Name: "exec-times", Unit: "s", Orig: orig}
	var features []core.Feature
	for j := 0; j < s.ETC.Machines; j++ {
		if len(s.TasksOn(j)) == 0 {
			continue
		}
		k := make(vec.V, s.ETC.Tasks)
		for _, t := range s.TasksOn(j) {
			k[t] = 1
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("finish(machine-%d)", j),
			Bounds: core.MaxOnly(bound),
			Linear: &core.LinearImpact{Coeffs: []vec.V{k}},
		})
	}
	if len(features) == 0 {
		return nil, errors.New("makespan: no machine has any task")
	}
	return core.NewAnalysis(features, []core.Perturbation{param})
}

// AnalysisDoc renders the same analysis as a versioned scenario document —
// the wire form the allocation-search service scatters to fepiad workers.
// A worker's scenario.Build of this document and a local AnalysisWithBound
// produce engines that agree bit-for-bit: the document carries the very
// float64 values (JSON round-trips them exactly), the features in the same
// machine order, and the same linear impact family.
func (s *System) AnalysisDoc(bound float64) (scenario.AnalysisDoc, error) {
	if !(bound > 0) || math.IsInf(bound, 0) {
		return scenario.AnalysisDoc{}, fmt.Errorf("makespan: bound = %g, want finite > 0", bound)
	}
	orig := s.OrigTimes()
	doc := scenario.AnalysisDoc{
		Version: scenario.Version,
		Kind:    "fepia",
		Params:  []scenario.AnalysisParam{{Name: "exec-times", Unit: "s", Orig: orig}},
	}
	for j := 0; j < s.ETC.Machines; j++ {
		if len(s.TasksOn(j)) == 0 {
			continue
		}
		k := make([]float64, s.ETC.Tasks)
		for _, t := range s.TasksOn(j) {
			k[t] = 1
		}
		b := bound
		doc.Features = append(doc.Features, scenario.AnalysisFeature{
			Name:   fmt.Sprintf("finish(machine-%d)", j),
			Impact: scenario.ImpactLinear,
			Max:    &b,
			Coeffs: [][]float64{k},
		})
	}
	if len(doc.Features) == 0 {
		return scenario.AnalysisDoc{}, errors.New("makespan: no machine has any task")
	}
	return doc, nil
}
