package makespan

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/etc"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// fixture: 4 tasks, 2 machines.
// ETC:
//
//	t0: [2, 9]   t1: [3, 9]   t2: [9, 4]   t3: [9, 1]
//
// Alloc t0,t1 → m0; t2,t3 → m1. Orig times (2, 3, 4, 1); finishes (5, 5);
// makespan 5.
func fixture(t *testing.T) *System {
	t.Helper()
	m := &etc.Matrix{Tasks: 4, Machines: 2, Data: [][]float64{
		{2, 9}, {3, 9}, {9, 4}, {9, 1},
	}}
	s, err := New(m, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidateErrors(t *testing.T) {
	m := &etc.Matrix{Tasks: 2, Machines: 2, Data: [][]float64{{1, 2}, {3, 4}}}
	if _, err := New(nil, []int{0}); err == nil {
		t.Error("nil ETC must error")
	}
	if _, err := New(m, []int{0}); err == nil {
		t.Error("short alloc must error")
	}
	if _, err := New(m, []int{0, 5}); err == nil {
		t.Error("machine index out of range must error")
	}
	if _, err := New(m, []int{0, -1}); err == nil {
		t.Error("negative machine must error")
	}
}

func TestBasics(t *testing.T) {
	s := fixture(t)
	if s.Tasks() != 4 || s.Machines() != 2 {
		t.Fatalf("shape %d/%d", s.Tasks(), s.Machines())
	}
	if got := s.TasksOn(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("TasksOn(0) = %v", got)
	}
	orig := s.OrigTimes()
	if !orig.EqualApprox(vec.Of(2, 3, 4, 1), 0) {
		t.Errorf("OrigTimes = %v", orig)
	}
	f, err := s.FinishTimes(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !f.EqualApprox(vec.Of(5, 5), 0) {
		t.Errorf("FinishTimes = %v", f)
	}
	if s.OrigMakespan() != 5 {
		t.Errorf("OrigMakespan = %v", s.OrigMakespan())
	}
	ms, err := s.Makespan(vec.Of(2, 3, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ms != 6 {
		t.Errorf("Makespan = %v, want 6", ms)
	}
	if _, err := s.FinishTimes(vec.Of(1)); err == nil {
		t.Error("short times must error")
	}
}

func TestClosedFormRadii(t *testing.T) {
	s := fixture(t)
	// τ = 1.4: bound = 7. Each machine: (7 − 5)/√2 = √2.
	radii, rho, err := s.ClosedFormRadii(1.4)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt2
	for j, r := range radii {
		if math.Abs(r-want) > 1e-12 {
			t.Errorf("radius[%d] = %v, want √2", j, r)
		}
	}
	if math.Abs(rho-want) > 1e-12 {
		t.Errorf("rho = %v, want √2", rho)
	}
}

func TestClosedFormUnbalanced(t *testing.T) {
	// Move t1 to machine 1: finishes (2, 8); makespan 8; τ=1.25 → bound 10.
	m := &etc.Matrix{Tasks: 4, Machines: 2, Data: [][]float64{
		{2, 9}, {3, 4}, {9, 4}, {9, 1},
	}}
	s, err := New(m, []int{0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Orig times: 2, 4, 4, 1 → finishes (2, 9), makespan 9, bound 11.25.
	radii, rho, err := s.ClosedFormRadii(1.25)
	if err != nil {
		t.Fatal(err)
	}
	want0 := (11.25 - 2.0) / 1.0
	want1 := (11.25 - 9.0) / math.Sqrt(3)
	if math.Abs(radii[0]-want0) > 1e-12 || math.Abs(radii[1]-want1) > 1e-12 {
		t.Errorf("radii = %v, want [%v %v]", radii, want0, want1)
	}
	if math.Abs(rho-want1) > 1e-12 {
		t.Errorf("rho = %v, want %v (the loaded machine)", rho, want1)
	}
}

func TestClosedFormEmptyMachine(t *testing.T) {
	m := &etc.Matrix{Tasks: 2, Machines: 3, Data: [][]float64{{1, 2, 3}, {1, 2, 3}}}
	s, err := New(m, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	radii, rho, err := s.ClosedFormRadii(2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(radii[1], 1) || !math.IsInf(radii[2], 1) {
		t.Errorf("empty machines must have infinite radius: %v", radii)
	}
	if math.IsInf(rho, 1) {
		t.Error("rho must come from the loaded machine")
	}
}

func TestClosedFormBadTau(t *testing.T) {
	s := fixture(t)
	if _, _, err := s.ClosedFormRadii(1); err == nil {
		t.Error("tau <= 1 must error")
	}
	if _, err := s.Analysis(0.9); err == nil {
		t.Error("Analysis with tau <= 1 must error")
	}
}

func TestAnalysisMatchesClosedForm(t *testing.T) {
	s := fixture(t)
	const tau = 1.4
	a, err := s.Analysis(tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Features) != 2 || len(a.Params) != 1 {
		t.Fatalf("analysis shape: %d features, %d params", len(a.Features), len(a.Params))
	}
	_, rhoCF, err := s.ClosedFormRadii(tau)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.RobustnessSingle(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho.Value-rhoCF) > 1e-10 {
		t.Errorf("engine rho = %v, closed form %v", rho.Value, rhoCF)
	}
}

func TestPropEngineMatchesClosedFormOnRandomAllocations(t *testing.T) {
	f := func(seed int64) bool {
		src := stats.NewSource(seed)
		nt := src.Intn(8) + 2
		nm := src.Intn(3) + 2
		m, err := etc.RangeBased(etc.RangeParams{Tasks: nt, Machines: nm, Rtask: 10, Rmach: 5}, src)
		if err != nil {
			return false
		}
		alloc := make([]int, nt)
		for t2 := range alloc {
			alloc[t2] = src.Intn(nm)
		}
		s, err := New(m, alloc)
		if err != nil {
			return false
		}
		tau := 1.1 + src.Float64()
		_, rhoCF, err := s.ClosedFormRadii(tau)
		if err != nil {
			return false
		}
		a, err := s.Analysis(tau)
		if err != nil {
			return false
		}
		rho, err := a.RobustnessSingle(0)
		if err != nil {
			return false
		}
		return math.Abs(rho.Value-rhoCF) <= 1e-9*(1+rhoCF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRadiusGuaranteeEmpirically(t *testing.T) {
	// Any perturbation of the execution times with ‖ΔC‖₂ < ρ must keep the
	// makespan within τ·M^orig — the defining property of the metric.
	s := fixture(t)
	const tau = 1.4
	_, rho, err := s.ClosedFormRadii(tau)
	if err != nil {
		t.Fatal(err)
	}
	bound := tau * s.OrigMakespan()
	src := stats.NewSource(11)
	orig := s.OrigTimes()
	for trial := 0; trial < 500; trial++ {
		// Random direction scaled to just under the radius.
		d := make(vec.V, len(orig))
		for i := range d {
			d[i] = src.Normal(0, 1)
		}
		d = d.Normalize().Scale(rho * 0.999 * src.Float64())
		c := orig.Add(d)
		ms, err := s.Makespan(c)
		if err != nil {
			t.Fatal(err)
		}
		if ms > bound+1e-9 {
			t.Fatalf("trial %d: makespan %v exceeds bound %v inside radius", trial, ms, bound)
		}
	}
}

func TestRadiusTightEmpirically(t *testing.T) {
	// There must exist a perturbation of norm exactly ρ that reaches the
	// bound: push the critical machine's tasks uniformly.
	s := fixture(t)
	const tau = 1.4
	radii, rho, err := s.ClosedFormRadii(tau)
	if err != nil {
		t.Fatal(err)
	}
	// Critical machine: argmin radius.
	crit := radii.ArgMin()
	tasks := s.TasksOn(crit)
	orig := s.OrigTimes()
	c := orig.Clone()
	for _, tk := range tasks {
		c[tk] += rho / math.Sqrt(float64(len(tasks)))
	}
	ms, err := s.Makespan(c)
	if err != nil {
		t.Fatal(err)
	}
	bound := tau * s.OrigMakespan()
	if math.Abs(ms-bound) > 1e-9 {
		t.Errorf("boundary perturbation gives makespan %v, want exactly %v", ms, bound)
	}
}
