package makespan

import (
	"errors"
	"fmt"

	"fepia/internal/core"
	"fepia/internal/des"
	"fepia/internal/etc"
	"fepia/internal/vec"
)

// MixedSystem is the independent-task substrate upgraded to the paper's
// multiple-kinds scenario: before a task executes, its input data set must
// be staged to the machine over that machine's ingest link, so the finish
// time of machine j is
//
//	F_j = Σ_{t on j} ( s_t / BW_j + c_t ),
//
// with c_t the actual execution time (seconds — π_1) and s_t the actual
// input size (bytes — π_2). Both kinds perturb simultaneously, exactly the
// situation Section 3 of the paper formalizes, on the same system class the
// TPDS 2004 paper evaluated.
type MixedSystem struct {
	// System is the underlying allocation (ETC estimates + Alloc).
	System
	// InSizes holds the estimated input size of each task in bytes
	// (s^orig).
	InSizes vec.V
	// Bandwidth of each machine's ingest link, bytes per second.
	Bandwidth vec.V
}

// ErrBadMixed reports malformed mixed-system inputs.
var ErrBadMixed = errors.New("makespan: invalid mixed system")

// NewMixed constructs and validates a mixed system.
func NewMixed(m *etc.Matrix, alloc []int, inSizes, bandwidth vec.V) (*MixedSystem, error) {
	base, err := New(m, alloc)
	if err != nil {
		return nil, err
	}
	s := &MixedSystem{System: *base, InSizes: inSizes, Bandwidth: bandwidth}
	if err := s.ValidateMixed(); err != nil {
		return nil, err
	}
	return s, nil
}

// ValidateMixed checks the staging extension.
func (s *MixedSystem) ValidateMixed() error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(s.InSizes) != s.ETC.Tasks {
		return fmt.Errorf("%w: %d input sizes for %d tasks", ErrBadMixed, len(s.InSizes), s.ETC.Tasks)
	}
	for t, sz := range s.InSizes {
		if sz <= 0 {
			return fmt.Errorf("%w: input size %d = %g", ErrBadMixed, t, sz)
		}
	}
	if len(s.Bandwidth) != s.ETC.Machines {
		return fmt.Errorf("%w: %d bandwidths for %d machines", ErrBadMixed, len(s.Bandwidth), s.ETC.Machines)
	}
	for j, bw := range s.Bandwidth {
		if bw <= 0 {
			return fmt.Errorf("%w: bandwidth %d = %g", ErrBadMixed, j, bw)
		}
	}
	return nil
}

// MixedFinishTimes computes F_j for actual execution times c and input
// sizes sz.
func (s *MixedSystem) MixedFinishTimes(c, sz vec.V) (vec.V, error) {
	if len(c) != s.ETC.Tasks || len(sz) != s.ETC.Tasks {
		return nil, fmt.Errorf("%w: dims c=%d sz=%d for %d tasks", ErrBadMixed, len(c), len(sz), s.ETC.Tasks)
	}
	f := make(vec.V, s.ETC.Machines)
	for t, j := range s.Alloc {
		f[j] += sz[t]/s.Bandwidth[j] + c[t]
	}
	return f, nil
}

// MixedMakespan is max_j F_j(c, sz).
func (s *MixedSystem) MixedMakespan(c, sz vec.V) (float64, error) {
	f, err := s.MixedFinishTimes(c, sz)
	if err != nil {
		return 0, err
	}
	return f.Max(), nil
}

// OrigMixedMakespan evaluates the estimate at (C^orig, S^orig).
func (s *MixedSystem) OrigMixedMakespan() float64 {
	f, _ := s.MixedFinishTimes(s.OrigTimes(), s.InSizes)
	return f.Max()
}

// MixedAnalysis adapts the system to a two-kind core.Analysis: π_1 = actual
// execution times (seconds), π_2 = actual input sizes (bytes), one linear
// finish-time feature per non-empty machine, each bounded by τ·M^orig
// (mixed). Every closed form of the paper's Section 3 applies directly.
func (s *MixedSystem) MixedAnalysis(tau float64) (*core.Analysis, error) {
	if tau <= 1 {
		return nil, fmt.Errorf("makespan: tau = %g, want > 1", tau)
	}
	if err := s.ValidateMixed(); err != nil {
		return nil, err
	}
	bound := tau * s.OrigMixedMakespan()
	params := []core.Perturbation{
		{Name: "exec-times", Unit: "s", Orig: s.OrigTimes()},
		{Name: "input-sizes", Unit: "bytes", Orig: s.InSizes.Clone()},
	}
	var features []core.Feature
	for j := 0; j < s.ETC.Machines; j++ {
		tasks := s.TasksOn(j)
		if len(tasks) == 0 {
			continue
		}
		kc := make(vec.V, s.ETC.Tasks)
		ks := make(vec.V, s.ETC.Tasks)
		for _, t := range tasks {
			kc[t] = 1
			ks[t] = 1 / s.Bandwidth[j]
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("finish(machine-%d)", j),
			Bounds: core.MaxOnly(bound),
			Linear: &core.LinearImpact{Coeffs: []vec.V{kc, ks}},
		})
	}
	if len(features) == 0 {
		return nil, errors.New("makespan: no machine has any task")
	}
	return core.NewAnalysis(features, params)
}

// SimulateMixed executes the allocation in the discrete-event kernel: every
// machine is a FIFO station; each task occupies it for its staging plus
// execution time, in task-index order. The returned per-machine finish
// times must equal MixedFinishTimes exactly (work conservation), which the
// tests assert — the DES cross-validation for this substrate.
func (s *MixedSystem) SimulateMixed(c, sz vec.V) (vec.V, error) {
	if err := s.ValidateMixed(); err != nil {
		return nil, err
	}
	if len(c) != s.ETC.Tasks || len(sz) != s.ETC.Tasks {
		return nil, fmt.Errorf("%w: dims c=%d sz=%d", ErrBadMixed, len(c), len(sz))
	}
	for t := range c {
		if c[t] < 0 || sz[t] < 0 {
			return nil, fmt.Errorf("%w: negative time or size at task %d", ErrBadMixed, t)
		}
	}
	sim := des.NewSimulator()
	stations := make([]*des.Station, s.ETC.Machines)
	finish := make(vec.V, s.ETC.Machines)
	for j := range stations {
		stations[j] = des.NewStation(sim, fmt.Sprintf("machine-%d", j))
	}
	for t, j := range s.Alloc {
		service := sz[t]/s.Bandwidth[j] + c[t]
		mach := j
		if err := stations[j].Submit(service, func(sm *des.Simulator) {
			if sm.Now() > finish[mach] {
				finish[mach] = sm.Now()
			}
		}); err != nil {
			return nil, err
		}
	}
	sim.RunAll()
	return finish, nil
}
