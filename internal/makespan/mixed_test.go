package makespan

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/core"
	"fepia/internal/etc"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// mixedFixture: the 4-task, 2-machine fixture with staging added.
//
//	input sizes (bytes): 1000, 2000, 3000, 500
//	bandwidths (B/s):    1000, 500
//
// Staging times on assigned machines: t0 1.0, t1 2.0 (m0); t2 6.0, t3 1.0
// (m1). Finishes: m0 = (2+1)+(3+2) = 8; m1 = (4+6)+(1+1) = 12. M = 12.
func mixedFixture(t *testing.T) *MixedSystem {
	t.Helper()
	m := &etc.Matrix{Tasks: 4, Machines: 2, Data: [][]float64{
		{2, 9}, {3, 9}, {9, 4}, {9, 1},
	}}
	s, err := NewMixed(m, []int{0, 0, 1, 1}, vec.Of(1000, 2000, 3000, 500), vec.Of(1000, 500))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewMixedErrors(t *testing.T) {
	m := &etc.Matrix{Tasks: 2, Machines: 2, Data: [][]float64{{1, 2}, {3, 4}}}
	alloc := []int{0, 1}
	if _, err := NewMixed(m, alloc, vec.Of(1), vec.Of(1, 1)); err == nil {
		t.Error("short input sizes must error")
	}
	if _, err := NewMixed(m, alloc, vec.Of(1, 0), vec.Of(1, 1)); err == nil {
		t.Error("non-positive size must error")
	}
	if _, err := NewMixed(m, alloc, vec.Of(1, 1), vec.Of(1)); err == nil {
		t.Error("short bandwidths must error")
	}
	if _, err := NewMixed(m, alloc, vec.Of(1, 1), vec.Of(1, -1)); err == nil {
		t.Error("non-positive bandwidth must error")
	}
	if _, err := NewMixed(m, []int{0}, vec.Of(1, 1), vec.Of(1, 1)); err == nil {
		t.Error("base validation must still run")
	}
}

func TestMixedFinishTimes(t *testing.T) {
	s := mixedFixture(t)
	f, err := s.MixedFinishTimes(s.OrigTimes(), s.InSizes)
	if err != nil {
		t.Fatal(err)
	}
	if !f.EqualApprox(vec.Of(8, 12), 1e-12) {
		t.Errorf("finishes = %v, want (8, 12)", f)
	}
	if got := s.OrigMixedMakespan(); math.Abs(got-12) > 1e-12 {
		t.Errorf("makespan = %v", got)
	}
	if _, err := s.MixedFinishTimes(vec.Of(1), s.InSizes); err == nil {
		t.Error("bad dims must error")
	}
}

func TestMixedAnalysisStructureAndRadii(t *testing.T) {
	s := mixedFixture(t)
	const tau = 1.5 // bound 18
	a, err := s.MixedAnalysis(tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Params) != 2 || a.Params[0].Unit != "s" || a.Params[1].Unit != "bytes" {
		t.Fatalf("params wrong: %+v", a.Params)
	}
	if len(a.Features) != 2 {
		t.Fatalf("features = %d", len(a.Features))
	}
	// Radius vs execution times only (machine 1 critical):
	// boundary Σ_{t on 1} c_t = 18 − (staging 7) = 11 from c^orig (4, 1):
	// dist = |5 − 11|/√2 = 6/√2.
	r, err := a.RobustnessSingle(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 6 / math.Sqrt2
	if math.Abs(r.Value-want) > 1e-10 {
		t.Errorf("exec radius = %v, want %v", r.Value, want)
	}
	// Radius vs input sizes only (machine 1):
	// Σ s_t/500 = 18 − 5 = 13 → Σ s_t = 6500 from (3000, 500):
	// hyperplane (1/500)(s2 + s3) = 13 → dist = |3500 − 6500|/(√2·... )
	// = (6500−3500)/ (√(2)/500·500) → |7 − 13| / √(2·(1/500)²) = 6·500/√2.
	rs, err := a.RobustnessSingle(1)
	if err != nil {
		t.Fatal(err)
	}
	wantS := 6 * 500 / math.Sqrt2
	if math.Abs(rs.Value-wantS) > 1e-7*(1+wantS) {
		t.Errorf("size radius = %v, want %v", rs.Value, wantS)
	}
	// Combined normalized radius exists and is positive.
	rho, err := a.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) || math.IsInf(rho.Value, 1) {
		t.Errorf("rho = %v", rho.Value)
	}
}

func TestMixedAnalysisBadTau(t *testing.T) {
	s := mixedFixture(t)
	if _, err := s.MixedAnalysis(1); err == nil {
		t.Error("tau <= 1 must error")
	}
}

func TestSimulateMixedMatchesAnalytic(t *testing.T) {
	s := mixedFixture(t)
	f, err := s.SimulateMixed(s.OrigTimes(), s.InSizes)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.MixedFinishTimes(s.OrigTimes(), s.InSizes)
	if err != nil {
		t.Fatal(err)
	}
	if !f.EqualApprox(want, 1e-9) {
		t.Errorf("DES finishes %v vs analytic %v", f, want)
	}
}

func TestSimulateMixedPerturbed(t *testing.T) {
	s := mixedFixture(t)
	c := vec.Of(2.5, 3.5, 4.5, 1.5)
	sz := vec.Of(1500, 2500, 3500, 1000)
	f, err := s.SimulateMixed(c, sz)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.MixedFinishTimes(c, sz)
	if err != nil {
		t.Fatal(err)
	}
	if !f.EqualApprox(want, 1e-9) {
		t.Errorf("perturbed DES %v vs analytic %v", f, want)
	}
}

func TestSimulateMixedErrors(t *testing.T) {
	s := mixedFixture(t)
	if _, err := s.SimulateMixed(vec.Of(1), s.InSizes); err == nil {
		t.Error("bad dims must error")
	}
	if _, err := s.SimulateMixed(vec.Of(-1, 1, 1, 1), s.InSizes); err == nil {
		t.Error("negative time must error")
	}
}

func TestPropMixedRadiusGuarantee(t *testing.T) {
	// Perturb both kinds jointly inside the normalized combined radius:
	// the mixed makespan must stay within the bound.
	f := func(seed int64) bool {
		src := stats.NewSource(seed)
		nt := src.Intn(6) + 2
		nm := src.Intn(2) + 2
		m, err := etc.RangeBased(etc.RangeParams{Tasks: nt, Machines: nm, Rtask: 5, Rmach: 3}, src)
		if err != nil {
			return false
		}
		alloc := make([]int, nt)
		for t2 := range alloc {
			alloc[t2] = src.Intn(nm)
		}
		sizes := make(vec.V, nt)
		for t2 := range sizes {
			sizes[t2] = src.Uniform(100, 5000)
		}
		bws := make(vec.V, nm)
		for j := range bws {
			bws[j] = src.Uniform(500, 2000)
		}
		s, err := NewMixed(m, alloc, sizes, bws)
		if err != nil {
			return false
		}
		tau := 1.1 + src.Float64()
		a, err := s.MixedAnalysis(tau)
		if err != nil {
			return false
		}
		rho, err := a.Robustness(core.Normalized{})
		if err != nil {
			return false
		}
		bound := tau * s.OrigMixedMakespan()
		origC := s.OrigTimes()
		d := make(vec.V, 2*nt)
		for trial := 0; trial < 10; trial++ {
			for i := range d {
				d[i] = src.Normal(0, 1)
			}
			dd := d.Normalize().Scale(rho.Value * 0.999 * src.Float64())
			c := origC.Mul(vec.Ones(nt).Add(dd[:nt]))
			sz := sizes.Mul(vec.Ones(nt).Add(dd[nt:]))
			ms, err := s.MixedMakespan(c, sz)
			if err != nil {
				return false
			}
			if ms > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
