package vec

import (
	"fmt"
	"math"
	"strings"
)

// M is a dense row-major matrix. It is deliberately small-scale: the
// robustness computations operate on systems with at most a few hundred
// perturbation dimensions, so a simple contiguous layout with O(n³) solvers
// is both adequate and cache-friendly.
type M struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewM returns a zero matrix of the given shape.
func NewM(rows, cols int) *M {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewM(%d, %d): negative dimension", rows, cols))
	}
	return &M{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MOf builds a matrix from rows. All rows must have equal length.
func MOf(rows ...[]float64) *M {
	if len(rows) == 0 {
		return &M{}
	}
	c := len(rows[0])
	m := NewM(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("vec: MOf: row %d has %d elements, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *M {
	m := NewM(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *M) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *M) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a vector view (aliasing m's storage).
func (m *M) Row(i int) V { return V(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns column j as a fresh vector.
func (m *M) Col(j int) V {
	out := make(V, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *M) Clone() *M {
	out := NewM(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m.
func (m *M) T() *M {
	out := NewM(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m·v.
func (m *M) MulVec(v V) V {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("vec: MulVec: %dx%d by %d", m.Rows, m.Cols, len(v)))
	}
	out := make(V, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns the product m·b.
func (m *M) Mul(b *M) *M {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("vec: Mul: %dx%d by %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewM(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j := range brow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// SolveLU solves m·x = rhs by Gaussian elimination with partial pivoting.
// It returns an error when the matrix is singular to working precision.
// Used by the Newton/KKT step of the nearest-boundary-point solver.
func (m *M) SolveLU(rhs V) (V, error) {
	n := m.Rows
	if m.Cols != n {
		return nil, fmt.Errorf("vec: SolveLU: matrix is %dx%d, want square", m.Rows, m.Cols)
	}
	if len(rhs) != n {
		return nil, fmt.Errorf("%w: SolveLU rhs has dim %d, want %d", ErrDimMismatch, len(rhs), n)
	}
	a := m.Clone()
	b := rhs.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: pick the largest magnitude in this column.
		piv, pmag := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if mag := math.Abs(a.At(r, col)); mag > pmag {
				piv, pmag = r, mag
			}
		}
		if pmag < 1e-300 {
			return nil, fmt.Errorf("vec: SolveLU: singular matrix (pivot %d)", col)
		}
		if piv != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[piv*n+j] = a.Data[piv*n+j], a.Data[col*n+j]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			a.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make(V, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// String renders the matrix row by row.
func (m *M) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(m.Row(i).String())
	}
	return sb.String()
}
