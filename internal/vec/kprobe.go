package vec

import "math"

// k-probe kernels: evaluate one impact family at a block of probe points in
// a single call. The level-set search's ray scan and batched gradients hand
// the engine k probes at a time (optimize.FuncK); these kernels let the four
// analytic families of the scenario schema answer the whole block without k
// closure calls, k parameter splits, and k rounds of pointer chasing.
//
// Layout: probes[p] is the FULL perturbation vector — the per-parameter
// blocks π_1 ⧺ π_2 ⧺ … concatenated in parameter order (what
// core.Analysis.TotalDim describes) — while the coefficient arguments keep
// their per-parameter block structure. Each kernel walks a probe with a
// running offset in exactly the block and element order of its scalar
// counterpart, with the same accumulator nesting (LinearK reproduces the
// per-block partial dots of LinearImpact.Eval), so out[p] is bit-identical
// to evaluating the scalar impact at the split probe. That bit-identity is
// what lets the oracle differential assert that k-probe and scalar searches
// return exactly equal radii.

// LinearK evaluates φ = c + Σ_j coeffs[j]·π_j at every probe: out[p] =
// φ(probes[p]). out must have at least len(probes) elements.
func LinearK(out []float64, c float64, coeffs []V, probes []V) {
	for p, v := range probes {
		s := c
		off := 0
		for _, k := range coeffs {
			var d float64
			for e := range k {
				d += k[e] * v[off+e]
			}
			s += d
			off += len(k)
		}
		out[p] = s
	}
}

// QuadK evaluates the separable quadratic φ = c + Σ_j Σ_e curv[j][e]·
// (π_j[e] − center[j][e])² at every probe (core.QuadImpact semantics).
func QuadK(out []float64, c float64, curv, center []V, probes []V) {
	for p, v := range probes {
		s := c
		off := 0
		for j := range curv {
			a, ce := curv[j], center[j]
			for e := range a {
				d := v[off+e] - ce[e]
				s += a[e] * d * d
			}
			off += len(a)
		}
		out[p] = s
	}
}

// PowProdK evaluates the multiplicative family φ = c + scale·Π_j Π_e
// |π_j[e]|^pows[j][e] at every probe (the scenario schema's
// "multiplicative" impact).
func PowProdK(out []float64, c, scale float64, pows []V, probes []V) {
	for p, v := range probes {
		pr := scale
		off := 0
		for j := range pows {
			pw := pows[j]
			for e := range pw {
				pr *= math.Pow(math.Abs(v[off+e]), pw[e])
			}
			off += len(pw)
		}
		out[p] = c + pr
	}
}

// QueueK evaluates the queueing family φ = Σ_j Σ_e wgts[j][e] /
// max(caps[j][e] − π_j[e], eps) at every probe (the scenario schema's
// "queueing" impact, an M/M/1-style load curve with a capacity guard).
func QueueK(out []float64, wgts, caps []V, eps float64, probes []V) {
	for p, v := range probes {
		s := 0.0
		off := 0
		for j := range wgts {
			w, cp := wgts[j], caps[j]
			for e := range w {
				gap := cp[e] - v[off+e]
				if gap < eps {
					gap = eps
				}
				s += w[e] / gap
			}
			off += len(w)
		}
		out[p] = s
	}
}
