package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMOfAndAccessors(t *testing.T) {
	m := MOf([]float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Errorf("At wrong: %v", m)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Error("Set did not stick")
	}
	if !m.Row(2).EqualApprox(Of(5, 6), 0) {
		t.Errorf("Row(2) = %v", m.Row(2))
	}
	if !m.Col(0).EqualApprox(Of(1, 3, 5), 0) {
		t.Errorf("Col(0) = %v", m.Col(0))
	}
}

func TestMOfRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged MOf must panic")
		}
	}()
	MOf([]float64{1, 2}, []float64{3})
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(3)
	v := Of(7, -2, 5)
	if got := id.MulVec(v); !got.EqualApprox(v, 0) {
		t.Errorf("I·v = %v", got)
	}
}

func TestMulVec(t *testing.T) {
	m := MOf([]float64{1, 2, 3}, []float64{4, 5, 6})
	got := m.MulVec(Of(1, 0, -1))
	if !got.EqualApprox(Of(-2, -2), 0) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMatMul(t *testing.T) {
	a := MOf([]float64{1, 2}, []float64{3, 4})
	b := MOf([]float64{5, 6}, []float64{7, 8})
	got := a.Mul(b)
	want := MOf([]float64{19, 22}, []float64{43, 50})
	for i := 0; i < 2; i++ {
		if !got.Row(i).EqualApprox(want.Row(i), 0) {
			t.Errorf("row %d = %v, want %v", i, got.Row(i), want.Row(i))
		}
	}
}

func TestTranspose(t *testing.T) {
	m := MOf([]float64{1, 2, 3}, []float64{4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T shape %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Errorf("T content wrong: %v", mt)
	}
}

func TestSolveLUKnown(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  →  x = 1, y = 3.
	a := MOf([]float64{2, 1}, []float64{1, 3})
	x, err := a.SolveLU(Of(5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !x.EqualApprox(Of(1, 3), 1e-12) {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLUNeedsPivot(t *testing.T) {
	// Zero on the first diagonal entry forces a row swap.
	a := MOf([]float64{0, 1}, []float64{1, 0})
	x, err := a.SolveLU(Of(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !x.EqualApprox(Of(3, 2), 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := MOf([]float64{1, 2}, []float64{2, 4})
	if _, err := a.SolveLU(Of(1, 2)); err == nil {
		t.Error("singular solve must error")
	}
}

func TestSolveLUShapeErrors(t *testing.T) {
	if _, err := MOf([]float64{1, 2}).SolveLU(Of(1)); err == nil {
		t.Error("non-square solve must error")
	}
	if _, err := Identity(2).SolveLU(Of(1, 2, 3)); err == nil {
		t.Error("rhs dim mismatch must error")
	}
}

func TestSolveLUDoesNotMutate(t *testing.T) {
	a := MOf([]float64{2, 1}, []float64{1, 3})
	rhs := Of(5, 10)
	if _, err := a.SolveLU(rhs); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || rhs[1] != 10 {
		t.Error("SolveLU mutated its inputs")
	}
}

func TestPropSolveLURoundTrip(t *testing.T) {
	// Build a diagonally dominant (hence nonsingular) matrix, solve, verify.
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 1
		a := NewM(n, n)
		for i := 0; i < n; i++ {
			var rowAbs float64
			for j := 0; j < n; j++ {
				x := (r.Float64() - 0.5) * 2
				a.Set(i, j, x)
				if j != i {
					rowAbs += 2 // loose upper bound on |x|
				}
			}
			a.Set(i, i, rowAbs+1)
		}
		want := genVec(r, n)
		rhs := a.MulVec(want)
		got, err := a.SolveLU(rhs)
		if err != nil {
			return false
		}
		return got.EqualApprox(want, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := int(rRaw%6)+1, int(cRaw%6)+1
		m := NewM(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		tt := m.T().T()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
