package vec

import (
	"math"
	"math/rand"
	"testing"
)

// scalar references replicating the engine's per-probe loop shapes
// (core.LinearImpact.Eval, core.QuadImpact.Eval, and the scenario Build
// closures) over a split probe.

func scalarLinear(c float64, coeffs []V, blocks []V) float64 {
	s := c
	for j, k := range coeffs {
		s += k.Dot(blocks[j])
	}
	return s
}

func scalarQuad(c float64, curv, center []V, blocks []V) float64 {
	s := c
	for j := range curv {
		for e := range curv[j] {
			d := blocks[j][e] - center[j][e]
			s += curv[j][e] * d * d
		}
	}
	return s
}

func scalarPowProd(c, scale float64, pows []V, blocks []V) float64 {
	p := scale
	for j := range pows {
		for e, pw := range pows[j] {
			p *= math.Pow(math.Abs(blocks[j][e]), pw)
		}
	}
	return c + p
}

func scalarQueue(wgts, caps []V, eps float64, blocks []V) float64 {
	s := 0.0
	for j := range wgts {
		for e, w := range wgts[j] {
			gap := caps[j][e] - blocks[j][e]
			if gap < eps {
				gap = eps
			}
			s += w / gap
		}
	}
	return s
}

// randBlocks builds a random block structure and k probes over it, returning
// both the flat probes and their split views.
func randBlocks(rng *rand.Rand, k int) (dims []int, flat []V, split [][]V) {
	nb := 1 + rng.Intn(3)
	dims = make([]int, nb)
	total := 0
	for j := range dims {
		dims[j] = 1 + rng.Intn(3)
		total += dims[j]
	}
	for p := 0; p < k; p++ {
		v := make(V, total)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		flat = append(flat, v)
		var blocks []V
		off := 0
		for _, d := range dims {
			blocks = append(blocks, v[off:off+d])
			off += d
		}
		split = append(split, blocks)
	}
	return dims, flat, split
}

func randCoeffs(rng *rand.Rand, dims []int, f func() float64) []V {
	out := make([]V, len(dims))
	for j, d := range dims {
		out[j] = make(V, d)
		for e := range out[j] {
			out[j][e] = f()
		}
	}
	return out
}

// Every kernel must return bit-identical values to its scalar counterpart
// over the split probe, for every probe of every block width.
func TestKProbeKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(9)
		dims, flat, split := randBlocks(rng, k)
		out := make([]float64, k)

		c := rng.NormFloat64()
		coeffs := randCoeffs(rng, dims, func() float64 { return rng.NormFloat64() })
		LinearK(out, c, coeffs, flat)
		for p := range flat {
			if want := scalarLinear(c, coeffs, split[p]); math.Float64bits(out[p]) != math.Float64bits(want) {
				t.Fatalf("trial %d LinearK probe %d: %v != %v", trial, p, out[p], want)
			}
		}

		curv := randCoeffs(rng, dims, func() float64 { return math.Abs(rng.NormFloat64()) })
		center := randCoeffs(rng, dims, func() float64 { return rng.NormFloat64() })
		QuadK(out, c, curv, center, flat)
		for p := range flat {
			if want := scalarQuad(c, curv, center, split[p]); math.Float64bits(out[p]) != math.Float64bits(want) {
				t.Fatalf("trial %d QuadK probe %d: %v != %v", trial, p, out[p], want)
			}
		}

		scale := 0.5 + rng.Float64()
		pows := randCoeffs(rng, dims, func() float64 { return []float64{0.5, 1, 2}[rng.Intn(3)] })
		PowProdK(out, c, scale, pows, flat)
		for p := range flat {
			if want := scalarPowProd(c, scale, pows, split[p]); math.Float64bits(out[p]) != math.Float64bits(want) {
				t.Fatalf("trial %d PowProdK probe %d: %v != %v", trial, p, out[p], want)
			}
		}

		wgts := randCoeffs(rng, dims, func() float64 { return 0.5 + rng.Float64() })
		caps := randCoeffs(rng, dims, func() float64 { return 5 + rng.Float64()*10 })
		eps := 1e-6
		QueueK(out, wgts, caps, eps, flat)
		for p := range flat {
			if want := scalarQueue(wgts, caps, eps, split[p]); math.Float64bits(out[p]) != math.Float64bits(want) {
				t.Fatalf("trial %d QueueK probe %d: %v != %v", trial, p, out[p], want)
			}
		}
	}
}

// The queueing guard must clamp saturated capacities exactly like the
// scalar closure (gap < eps, not <=).
func TestQueueKSaturationGuard(t *testing.T) {
	wgts := []V{{2}}
	caps := []V{{1}}
	probes := []V{{1}, {5}, {0.999999999}}
	out := make([]float64, len(probes))
	QueueK(out, wgts, caps, 1e-6, probes)
	for p, v := range probes {
		want := scalarQueue(wgts, caps, 1e-6, [][]V{{v}}[0])
		if math.Float64bits(out[p]) != math.Float64bits(want) {
			t.Errorf("probe %d: %v != %v", p, out[p], want)
		}
	}
	if out[1] != 2/1e-6 {
		t.Errorf("saturated gap not clamped: %v", out[1])
	}
}

func TestKProbeKernelsEmptyProbes(t *testing.T) {
	LinearK(nil, 1, []V{{1}}, nil)
	QuadK(nil, 1, []V{{1}}, []V{{0}}, nil)
	PowProdK(nil, 1, 1, []V{{1}}, nil)
	QueueK(nil, []V{{1}}, []V{{2}}, 1e-6, nil)
}
