// Package vec provides the dense vector and small-matrix kernel used by the
// robustness analysis. The FePIA robustness radius (Eq. 1 and Eq. 2 of the
// paper) is a nearest-point-to-level-set problem in R^n; this package supplies
// the norms, distances, and elementary linear algebra those computations need,
// with no dependencies outside the standard library.
package vec

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// V is a dense real vector. The zero value is the empty vector.
type V []float64

// ErrDimMismatch is returned (or wrapped) by operations whose operands must
// share a dimension.
var ErrDimMismatch = errors.New("vec: dimension mismatch")

// New returns a zero vector of dimension n.
func New(n int) V { return make(V, n) }

// Of returns a vector holding the given elements. The slice is copied.
func Of(xs ...float64) V {
	v := make(V, len(xs))
	copy(v, xs)
	return v
}

// Const returns an n-dimensional vector with every element set to c.
func Const(n int, c float64) V {
	v := make(V, n)
	for i := range v {
		v[i] = c
	}
	return v
}

// Ones returns the n-dimensional all-ones vector. In the paper's normalized
// P-space (Section 3.2), P^orig is always Ones(n).
func Ones(n int) V { return Const(n, 1) }

// Basis returns the i-th standard basis vector of dimension n.
func Basis(n, i int) V {
	v := make(V, n)
	v[i] = 1
	return v
}

// Clone returns a copy of v.
func (v V) Clone() V {
	w := make(V, len(v))
	copy(w, v)
	return w
}

// Dim returns the dimension of v.
func (v V) Dim() int { return len(v) }

// Add returns v + w.
func (v V) Add(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v V) Sub(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c*v.
func (v V) Scale(c float64) V {
	out := make(V, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AddScaled returns v + c*w without allocating an intermediate.
func (v V) AddScaled(c float64, w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] + c*w[i]
	}
	return out
}

// Mul returns the Hadamard (element-wise) product v∘w. The paper's weighted
// concatenation P = (α₁×π₁) ⋆ (α₂×π₂) ⋆ … is built from element-wise scaling.
func (v V) Mul(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] * w[i]
	}
	return out
}

// Div returns the element-wise quotient v/w. Division by a zero element
// yields ±Inf or NaN exactly as IEEE-754 prescribes; the caller is expected
// to validate denominators (the normalized weighting requires nonzero
// original values).
func (v V) Div(w V) V {
	mustSameDim(v, w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] / w[i]
	}
	return out
}

// Dot returns the inner product <v, w>.
func (v V) Dot(w V) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean (ℓ2) norm, computed with scaling to avoid
// overflow and underflow for extreme magnitudes.
func (v V) Norm2() float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the ℓ1 norm Σ|v_i|.
func (v V) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the ℓ∞ norm max|v_i|.
func (v V) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Dist2 returns the Euclidean distance ‖v − w‖₂ without allocating,
// using the same overflow-safe scaling as Norm2. This is the distance the
// robustness radius minimizes, evaluated on every operating-point check.
func (v V) Dist2(w V) float64 {
	mustSameDim(v, w)
	var scale, ssq float64 = 0, 1
	for i := range v {
		x := v[i] - w[i]
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Sum returns Σ v_i.
func (v V) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Min returns the smallest element. It panics on an empty vector.
func (v V) Min() float64 {
	if len(v) == 0 {
		panic("vec: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty vector.
func (v V) Max() float64 {
	if len(v) == 0 {
		panic("vec: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element (first on ties).
func (v V) ArgMin() int {
	if len(v) == 0 {
		panic("vec: ArgMin of empty vector")
	}
	k := 0
	for i, x := range v {
		if x < v[k] {
			k = i
		}
	}
	return k
}

// ArgMax returns the index of the largest element (first on ties).
func (v V) ArgMax() int {
	if len(v) == 0 {
		panic("vec: ArgMax of empty vector")
	}
	k := 0
	for i, x := range v {
		if x > v[k] {
			k = i
		}
	}
	return k
}

// Normalize returns v / ‖v‖₂. It returns a zero vector when ‖v‖₂ == 0.
func (v V) Normalize() V {
	n := v.Norm2()
	if n == 0 {
		return New(len(v))
	}
	return v.Scale(1 / n)
}

// Concat returns the concatenation v ⋆ w — the paper's vector concatenation
// operator used to assemble the combined perturbation vector P.
func Concat(vs ...V) V {
	var n int
	for _, v := range vs {
		n += len(v)
	}
	out := make(V, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// Split partitions v into consecutive blocks of the given sizes. It is the
// inverse of Concat and is used to map a combined P vector back to the
// individual perturbation parameters π_j. The returned slices alias v.
func Split(v V, sizes ...int) ([]V, error) {
	var total int
	for _, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("vec: Split: negative block size %d", s)
		}
		total += s
	}
	if total != len(v) {
		return nil, fmt.Errorf("%w: Split blocks sum to %d, vector has %d", ErrDimMismatch, total, len(v))
	}
	out := make([]V, len(sizes))
	at := 0
	for i, s := range sizes {
		out[i] = v[at : at+s]
		at += s
	}
	return out, nil
}

// SubInto writes v − w into dst and returns dst. All three must share a
// dimension; dst may alias v or w. The in-place variants exist for the
// evaluation hot path (level-set searches run the element-wise kernels once
// per impact evaluation), where per-call allocation dominates the cost of
// cheap impact functions.
func SubInto(dst, v, w V) V {
	mustSameDim(v, w)
	mustSameDim(dst, v)
	for i := range v {
		dst[i] = v[i] - w[i]
	}
	return dst
}

// MulInto writes the Hadamard product v∘w into dst and returns dst. dst may
// alias v or w.
func MulInto(dst, v, w V) V {
	mustSameDim(v, w)
	mustSameDim(dst, v)
	for i := range v {
		dst[i] = v[i] * w[i]
	}
	return dst
}

// DivInto writes the element-wise quotient v/w into dst and returns dst.
// dst may alias v or w. Division by zero follows IEEE-754, as in Div.
func DivInto(dst, v, w V) V {
	mustSameDim(v, w)
	mustSameDim(dst, v)
	for i := range v {
		dst[i] = v[i] / w[i]
	}
	return dst
}

// AddScaledInto writes v + c·w into dst and returns dst. dst may alias v or
// w.
func AddScaledInto(dst V, v V, c float64, w V) V {
	mustSameDim(v, w)
	mustSameDim(dst, v)
	for i := range v {
		dst[i] = v[i] + c*w[i]
	}
	return dst
}

// ConcatInto writes the concatenation of vs into dst (whose length must
// equal the summed lengths) and returns dst.
func ConcatInto(dst V, vs ...V) V {
	at := 0
	for _, v := range vs {
		if at+len(v) > len(dst) {
			panic(fmt.Sprintf("vec: ConcatInto: destination dim %d too small", len(dst)))
		}
		copy(dst[at:], v)
		at += len(v)
	}
	if at != len(dst) {
		panic(fmt.Sprintf("vec: ConcatInto: blocks sum to %d, destination has %d", at, len(dst)))
	}
	return dst
}

// Views partitions v into consecutive aliasing blocks of the given sizes,
// appending them to out (reusing its backing array when possible). It is
// Split without the error return or per-call slice-header allocation, for
// callers that have already validated the sizes.
func Views(out []V, v V, sizes ...int) []V {
	out = out[:0]
	at := 0
	for _, s := range sizes {
		out = append(out, v[at:at+s])
		at += s
	}
	return out
}

// AllFinite reports whether every element of v is finite (no NaN, no ±Inf).
func (v V) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// AllPositive reports whether every element of v is strictly positive.
// Normalized weighting (Section 3.2) requires strictly positive original
// values.
func (v V) AllPositive() bool {
	for _, x := range v {
		if x <= 0 {
			return false
		}
	}
	return true
}

// EqualApprox reports whether v and w agree element-wise within tol, using a
// combined absolute/relative criterion: |v_i − w_i| ≤ tol·max(1, |v_i|, |w_i|).
func (v V) EqualApprox(w V, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if !ScalarEqualApprox(v[i], w[i], tol) {
			return false
		}
	}
	return true
}

// ScalarEqualApprox reports |a − b| ≤ tol·max(1, |a|, |b|).
func ScalarEqualApprox(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// String renders v as "[x1 x2 …]" with %g formatting.
func (v V) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", x)
	}
	b.WriteByte(']')
	return b.String()
}

func mustSameDim(v, w V) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
