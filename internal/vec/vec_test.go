package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOfCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	v := Of(src...)
	src[0] = 99
	if v[0] != 1 {
		t.Fatalf("Of must copy its input; got %v", v)
	}
}

func TestConstOnesBasis(t *testing.T) {
	if got := Const(3, 2.5); !got.EqualApprox(Of(2.5, 2.5, 2.5), 0) {
		t.Errorf("Const(3, 2.5) = %v", got)
	}
	if got := Ones(4); !got.EqualApprox(Of(1, 1, 1, 1), 0) {
		t.Errorf("Ones(4) = %v", got)
	}
	b := Basis(3, 1)
	if !b.EqualApprox(Of(0, 1, 0), 0) {
		t.Errorf("Basis(3,1) = %v", b)
	}
}

func TestArithmetic(t *testing.T) {
	v := Of(1, 2, 3)
	w := Of(4, 5, 6)
	if got := v.Add(w); !got.EqualApprox(Of(5, 7, 9), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.EqualApprox(Of(3, 3, 3), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.EqualApprox(Of(2, 4, 6), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Mul(w); !got.EqualApprox(Of(4, 10, 18), 0) {
		t.Errorf("Mul = %v", got)
	}
	if got := w.Div(v); !got.EqualApprox(Of(4, 2.5, 2), 0) {
		t.Errorf("Div = %v", got)
	}
	if got := v.AddScaled(2, w); !got.EqualApprox(Of(9, 12, 15), 0) {
		t.Errorf("AddScaled = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims must panic")
		}
	}()
	Of(1, 2).Add(Of(1, 2, 3))
}

func TestNorms(t *testing.T) {
	v := Of(3, -4)
	if got := v.Norm2(); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	if got := New(5).Norm2(); got != 0 {
		t.Errorf("Norm2 of zero vector = %v", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum-of-squares would overflow; the scaled form must not.
	v := Of(1e200, 1e200)
	want := 1e200 * math.Sqrt2
	if got := v.Norm2(); !ScalarEqualApprox(got, want, 1e-12) {
		t.Errorf("Norm2 large = %g, want %g", got, want)
	}
	// And must not underflow to zero for tiny values.
	tiny := Of(1e-200, 1e-200)
	if got := tiny.Norm2(); got == 0 {
		t.Error("Norm2 underflowed to 0 for tiny inputs")
	}
}

func TestDist2(t *testing.T) {
	a := Of(1, 1)
	b := Of(4, 5)
	if got := a.Dist2(b); got != 5 {
		t.Errorf("Dist2 = %v, want 5", got)
	}
}

func TestSumMinMaxArg(t *testing.T) {
	v := Of(2, -1, 7, -1)
	if got := v.Sum(); got != 7 {
		t.Errorf("Sum = %v", got)
	}
	if got := v.Min(); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := v.ArgMin(); got != 1 {
		t.Errorf("ArgMin = %v, want first tie index 1", got)
	}
	if got := v.ArgMax(); got != 2 {
		t.Errorf("ArgMax = %v", got)
	}
}

func TestEmptyMinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty vector must panic")
		}
	}()
	V{}.Min()
}

func TestNormalize(t *testing.T) {
	v := Of(3, 4)
	n := v.Normalize()
	if !ScalarEqualApprox(n.Norm2(), 1, 1e-14) {
		t.Errorf("normalized norm = %v", n.Norm2())
	}
	z := New(3).Normalize()
	if !z.EqualApprox(New(3), 0) {
		t.Errorf("Normalize of zero = %v, want zero vector", z)
	}
}

func TestConcatSplit(t *testing.T) {
	a := Of(1, 2)
	b := Of(3)
	c := Of(4, 5, 6)
	p := Concat(a, b, c)
	if !p.EqualApprox(Of(1, 2, 3, 4, 5, 6), 0) {
		t.Fatalf("Concat = %v", p)
	}
	parts, err := Split(p, 2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !parts[0].EqualApprox(a, 0) || !parts[1].EqualApprox(b, 0) || !parts[2].EqualApprox(c, 0) {
		t.Errorf("Split parts = %v", parts)
	}
	if _, err := Split(p, 2, 2); err == nil {
		t.Error("Split with wrong total must error")
	}
	if _, err := Split(p, -1, 7); err == nil {
		t.Error("Split with negative size must error")
	}
}

func TestAllFinitePositive(t *testing.T) {
	if !Of(1, 2).AllFinite() {
		t.Error("finite vector reported non-finite")
	}
	if Of(1, math.NaN()).AllFinite() {
		t.Error("NaN not detected")
	}
	if Of(1, math.Inf(1)).AllFinite() {
		t.Error("+Inf not detected")
	}
	if !Of(1, 0.5).AllPositive() {
		t.Error("positive vector reported non-positive")
	}
	if Of(1, 0).AllPositive() {
		t.Error("zero element must fail AllPositive")
	}
}

func TestEqualApprox(t *testing.T) {
	if !Of(1, 2).EqualApprox(Of(1+1e-12, 2), 1e-9) {
		t.Error("near-equal vectors reported unequal")
	}
	if Of(1, 2).EqualApprox(Of(1, 2, 3), 1e-9) {
		t.Error("different dims reported equal")
	}
	if ScalarEqualApprox(math.NaN(), math.NaN(), 1) {
		t.Error("NaN must never compare equal")
	}
	// Relative criterion: 1e6 vs 1e6+1 within 1e-5 relative.
	if !ScalarEqualApprox(1e6, 1e6+1, 1e-5) {
		t.Error("relative tolerance not applied")
	}
}

func TestString(t *testing.T) {
	if got := Of(1, 2.5).String(); got != "[1 2.5]" {
		t.Errorf("String = %q", got)
	}
	if got := (V{}).String(); got != "[]" {
		t.Errorf("empty String = %q", got)
	}
}

// --- property-based tests -------------------------------------------------

// genVec draws a bounded random vector so quick-generated magnitudes do not
// hit overflow paths that make exact float identities fail.
func genVec(r *rand.Rand, n int) V {
	v := make(V, n)
	for i := range v {
		v[i] = (r.Float64() - 0.5) * 200
	}
	return v
}

func TestPropTriangleInequality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		a, b := genVec(r, n), genVec(r, n)
		return a.Add(b).Norm2() <= a.Norm2()+b.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCauchySchwarz(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		a, b := genVec(r, n), genVec(r, n)
		return math.Abs(a.Dot(b)) <= a.Norm2()*b.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropNormOrdering(t *testing.T) {
	// ‖v‖∞ ≤ ‖v‖₂ ≤ ‖v‖₁ for every vector.
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		v := genVec(r, n)
		eps := 1e-9 * (1 + v.Norm1())
		return v.NormInf() <= v.Norm2()+eps && v.Norm2() <= v.Norm1()+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropConcatSplitRoundTrip(t *testing.T) {
	f := func(seed int64, aRaw, bRaw, cRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		na, nb, nc := int(aRaw%8), int(bRaw%8), int(cRaw%8)
		a, b, c := genVec(r, na), genVec(r, nb), genVec(r, nc)
		p := Concat(a, b, c)
		parts, err := Split(p, na, nb, nc)
		if err != nil {
			return false
		}
		return parts[0].EqualApprox(a, 0) && parts[1].EqualApprox(b, 0) && parts[2].EqualApprox(c, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDistSymmetry(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		a, b := genVec(r, n), genVec(r, n)
		return ScalarEqualApprox(a.Dist2(b), b.Dist2(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropScaleHomogeneity(t *testing.T) {
	// ‖c·v‖₂ == |c|·‖v‖₂.
	f := func(seed int64, nRaw uint8, cRaw int16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 1
		c := float64(cRaw) / 64
		v := genVec(r, n)
		return ScalarEqualApprox(v.Scale(c).Norm2(), math.Abs(c)*v.Norm2(), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
