package vec

import "sync"

// The scratch pool recycles intermediate vectors on the evaluation hot
// path (P-space conversions, level-set search frames). The robustness
// engine converts between native and P-space coordinates once per impact
// evaluation; without reuse those intermediates dominate the allocation
// profile of cheap impact functions (see docs/performance.md).

var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

// GetScratch returns a length-n scratch vector from the pool. The contents
// are unspecified — callers must overwrite every element they read. Return
// it with PutScratch when done; a scratch vector must not escape to the
// caller of an exported API (hand out a Clone instead).
func GetScratch(n int) V {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return V((*p)[:n])
}

// PutScratch recycles a vector obtained from GetScratch. The caller must
// not use v afterwards.
func PutScratch(v V) {
	s := []float64(v)
	scratchPool.Put(&s)
}
