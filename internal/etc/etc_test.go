package etc

import (
	"math"
	"testing"

	"fepia/internal/stats"
)

func TestCVBShapeAndPositivity(t *testing.T) {
	src := stats.NewSource(1)
	m, err := CVB(CVBParams{Tasks: 50, Machines: 8, MeanTask: 100, TaskCV: 0.3, MachineCV: 0.3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks != 50 || m.Machines != 8 || len(m.Data) != 50 || len(m.Data[0]) != 8 {
		t.Fatalf("shape wrong: %dx%d", m.Tasks, m.Machines)
	}
	for t2, row := range m.Data {
		for j, v := range row {
			if v <= 0 {
				t.Fatalf("non-positive ETC[%d][%d] = %v", t2, j, v)
			}
		}
	}
}

func TestCVBHeterogeneityKnobs(t *testing.T) {
	// Achieved CVs should track requested CVs (loosely — finite sample).
	src := stats.NewSource(7)
	m, err := CVB(CVBParams{Tasks: 2000, Machines: 16, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.2}, src)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TaskCV(); math.Abs(got-0.5) > 0.1 {
		t.Errorf("task CV = %v, want ≈0.5", got)
	}
	if got := m.MachineCV(); math.Abs(got-0.2) > 0.05 {
		t.Errorf("machine CV = %v, want ≈0.2", got)
	}
}

func TestCVBLowVsHighHeterogeneity(t *testing.T) {
	lo, err := CVB(CVBParams{Tasks: 500, Machines: 8, MeanTask: 10, TaskCV: 0.1, MachineCV: 0.1}, stats.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := CVB(CVBParams{Tasks: 500, Machines: 8, MeanTask: 10, TaskCV: 0.6, MachineCV: 0.6}, stats.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	if lo.TaskCV() >= hi.TaskCV() {
		t.Errorf("low-het task CV %v should be below high-het %v", lo.TaskCV(), hi.TaskCV())
	}
	if lo.MachineCV() >= hi.MachineCV() {
		t.Errorf("low-het machine CV %v should be below high-het %v", lo.MachineCV(), hi.MachineCV())
	}
}

func TestCVBConsistent(t *testing.T) {
	m, err := CVB(CVBParams{Tasks: 100, Machines: 6, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4, Consistent: true}, stats.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConsistent() {
		t.Error("Consistent=true must produce a consistent matrix")
	}
}

func TestCVBInconsistentUsually(t *testing.T) {
	m, err := CVB(CVBParams{Tasks: 100, Machines: 6, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, stats.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	if m.IsConsistent() {
		t.Error("unsorted CVB matrix of this size should not be consistent")
	}
}

func TestCVBErrors(t *testing.T) {
	src := stats.NewSource(1)
	bad := []CVBParams{
		{Tasks: 0, Machines: 4, MeanTask: 10, TaskCV: 0.3, MachineCV: 0.3},
		{Tasks: 4, Machines: 0, MeanTask: 10, TaskCV: 0.3, MachineCV: 0.3},
		{Tasks: 4, Machines: 4, MeanTask: 0, TaskCV: 0.3, MachineCV: 0.3},
		{Tasks: 4, Machines: 4, MeanTask: 10, TaskCV: 0, MachineCV: 0.3},
		{Tasks: 4, Machines: 4, MeanTask: 10, TaskCV: 0.3, MachineCV: -1},
	}
	for i, p := range bad {
		if _, err := CVB(p, src); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRangeBasedShapeAndBounds(t *testing.T) {
	m, err := RangeBased(RangeParams{Tasks: 200, Machines: 10, Rtask: 100, Rmach: 10}, stats.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m.Data {
		for _, v := range row {
			if v < 1 || v >= 1000 {
				t.Fatalf("value %v outside [1, Rtask·Rmach)", v)
			}
		}
	}
}

func TestRangeBasedConsistent(t *testing.T) {
	m, err := RangeBased(RangeParams{Tasks: 50, Machines: 5, Rtask: 10, Rmach: 10, Consistent: true}, stats.NewSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsConsistent() {
		t.Error("consistent range-based matrix expected")
	}
}

func TestRangeBasedErrors(t *testing.T) {
	src := stats.NewSource(1)
	if _, err := RangeBased(RangeParams{Tasks: 0, Machines: 1, Rtask: 2, Rmach: 2}, src); err == nil {
		t.Error("bad shape must error")
	}
	if _, err := RangeBased(RangeParams{Tasks: 1, Machines: 1, Rtask: 1, Rmach: 2}, src); err == nil {
		t.Error("Rtask <= 1 must error")
	}
	if _, err := RangeBased(RangeParams{Tasks: 1, Machines: 1, Rtask: 2, Rmach: 0.5}, src); err == nil {
		t.Error("Rmach <= 1 must error")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := RangeBased(RangeParams{Tasks: 3, Machines: 3, Rtask: 5, Rmach: 5}, stats.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Data[0][0] = -99
	if m.Data[0][0] == -99 {
		t.Error("Clone must deep-copy")
	}
}

func TestDeterminism(t *testing.T) {
	p := CVBParams{Tasks: 20, Machines: 4, MeanTask: 10, TaskCV: 0.3, MachineCV: 0.3}
	a, _ := CVB(p, stats.NewSource(9))
	b, _ := CVB(p, stats.NewSource(9))
	for t2 := range a.Data {
		for j := range a.Data[t2] {
			if a.Data[t2][j] != b.Data[t2][j] {
				t.Fatal("same seed must reproduce the matrix exactly")
			}
		}
	}
}
