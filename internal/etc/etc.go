// Package etc generates Expected-Time-to-Compute matrices — the standard
// workload model of the heterogeneous-computing literature that the FePIA
// papers draw their makespan examples from. ETC[t][m] is the estimated
// execution time of task t on machine m. Two classical generation methods
// are provided: the coefficient-of-variation-based (CVB) method (gamma
// distributions parameterized by task and machine CVs) and the range-based
// method (nested uniform draws). Both support "consistent" matrices, where
// a machine faster on one task is faster on all.
package etc

import (
	"errors"
	"fmt"
	"sort"

	"fepia/internal/stats"
)

// Matrix is an ETC matrix: Rows = tasks, Cols = machines.
type Matrix struct {
	Tasks    int
	Machines int
	Data     [][]float64 // Data[t][m]
}

// At returns ETC of task t on machine m.
func (m *Matrix) At(t, mach int) float64 { return m.Data[t][mach] }

// Row returns the per-machine times of one task (alias; do not modify).
func (m *Matrix) Row(t int) []float64 { return m.Data[t] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Tasks: m.Tasks, Machines: m.Machines, Data: make([][]float64, m.Tasks)}
	for t := range m.Data {
		out.Data[t] = append([]float64(nil), m.Data[t]...)
	}
	return out
}

// Validation errors.
var ErrBadShape = errors.New("etc: tasks and machines must be positive")

// CVBParams parameterize the coefficient-of-variation-based method of Ali et
// al. (Tamkang J. Sci. Eng. 2000): task heterogeneity is the CV of a task's
// mean execution time across tasks, machine heterogeneity the CV across
// machines for a fixed task.
type CVBParams struct {
	Tasks    int
	Machines int
	// MeanTask is μ_task, the overall mean execution time.
	MeanTask float64
	// TaskCV (V_task) controls task heterogeneity, e.g. 0.1 low, 0.6 high.
	TaskCV float64
	// MachineCV (V_machine) controls machine heterogeneity.
	MachineCV float64
	// Consistent orders each row so machine 0 is fastest everywhere —
	// the "consistent heterogeneity" class of the HC literature.
	Consistent bool
}

// CVB generates an ETC matrix with the coefficient-of-variation method:
//
//	q[t]    ~ Gamma(shape=1/V_task²,    scale=μ_task·V_task²)
//	e[t][m] ~ Gamma(shape=1/V_mach²,    scale=q[t]·V_mach²)
//
// so that E[e[t][·]] = q[t] and the CVs match the requested heterogeneity.
func CVB(p CVBParams, src *stats.Source) (*Matrix, error) {
	if p.Tasks <= 0 || p.Machines <= 0 {
		return nil, fmt.Errorf("%w: %d tasks, %d machines", ErrBadShape, p.Tasks, p.Machines)
	}
	if p.MeanTask <= 0 {
		return nil, fmt.Errorf("etc: CVB mean task time %g must be positive", p.MeanTask)
	}
	if p.TaskCV <= 0 || p.MachineCV <= 0 {
		return nil, fmt.Errorf("etc: CVB CVs must be positive (got task %g, machine %g)", p.TaskCV, p.MachineCV)
	}
	alphaTask := 1 / (p.TaskCV * p.TaskCV)
	betaTask := p.MeanTask / alphaTask
	alphaMach := 1 / (p.MachineCV * p.MachineCV)

	m := &Matrix{Tasks: p.Tasks, Machines: p.Machines, Data: make([][]float64, p.Tasks)}
	for t := 0; t < p.Tasks; t++ {
		q := src.Gamma(alphaTask, betaTask)
		row := make([]float64, p.Machines)
		for j := 0; j < p.Machines; j++ {
			row[j] = src.Gamma(alphaMach, q/alphaMach)
		}
		if p.Consistent {
			sort.Float64s(row)
		}
		m.Data[t] = row
	}
	return m, nil
}

// RangeParams parameterize the range-based method: per-task baselines drawn
// from U[1, Rtask), scaled per machine by U[1, Rmach).
type RangeParams struct {
	Tasks    int
	Machines int
	// Rtask bounds the task baseline range (task heterogeneity), > 1.
	Rtask float64
	// Rmach bounds the per-machine multiplier range (machine
	// heterogeneity), > 1.
	Rmach float64
	// Consistent sorts rows ascending as in CVBParams.
	Consistent bool
}

// RangeBased generates an ETC matrix with the range-based method.
func RangeBased(p RangeParams, src *stats.Source) (*Matrix, error) {
	if p.Tasks <= 0 || p.Machines <= 0 {
		return nil, fmt.Errorf("%w: %d tasks, %d machines", ErrBadShape, p.Tasks, p.Machines)
	}
	if p.Rtask <= 1 || p.Rmach <= 1 {
		return nil, fmt.Errorf("etc: range parameters must exceed 1 (got %g, %g)", p.Rtask, p.Rmach)
	}
	m := &Matrix{Tasks: p.Tasks, Machines: p.Machines, Data: make([][]float64, p.Tasks)}
	for t := 0; t < p.Tasks; t++ {
		base := src.Uniform(1, p.Rtask)
		row := make([]float64, p.Machines)
		for j := 0; j < p.Machines; j++ {
			row[j] = base * src.Uniform(1, p.Rmach)
		}
		if p.Consistent {
			sort.Float64s(row)
		}
		m.Data[t] = row
	}
	return m, nil
}

// IsConsistent reports whether machine ordering is identical across all
// tasks (ascending in every row).
func (m *Matrix) IsConsistent() bool {
	for _, row := range m.Data {
		for j := 1; j < len(row); j++ {
			if row[j] < row[j-1] {
				return false
			}
		}
	}
	return true
}

// TaskCV estimates the achieved task heterogeneity: the CV of per-task mean
// times.
func (m *Matrix) TaskCV() float64 {
	means := make([]float64, m.Tasks)
	for t, row := range m.Data {
		means[t] = stats.Mean(row)
	}
	return stats.CV(means)
}

// MachineCV estimates the achieved machine heterogeneity: the mean over
// tasks of the per-row CV.
func (m *Matrix) MachineCV() float64 {
	cvs := make([]float64, m.Tasks)
	for t, row := range m.Data {
		cvs[t] = stats.CV(row)
	}
	return stats.Mean(cvs)
}
