package etc

import (
	"fmt"
	"sort"

	"fepia/internal/stats"
)

// The heterogeneous-computing evaluation methodology distinguishes three
// consistency classes of ETC matrices: consistent (machine ordering
// identical for every task), inconsistent (no structure), and partially
// consistent (a subset of machine columns is mutually ordered, the rest is
// free). This file adds the third class and a classifier, so ranking
// experiments can sweep all three.

// MakePartiallyConsistent sorts, within every row, the values at the given
// column subset ascending by column index, leaving other columns untouched.
// The resulting matrix is consistent when restricted to those columns. The
// column list must be non-empty, strictly ascending, and in range. The
// matrix is modified in place and also returned for chaining.
func (m *Matrix) MakePartiallyConsistent(cols []int) (*Matrix, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("etc: MakePartiallyConsistent needs at least one column")
	}
	prev := -1
	for _, c := range cols {
		if c <= prev || c >= m.Machines {
			return nil, fmt.Errorf("etc: bad column list %v (machines=%d)", cols, m.Machines)
		}
		prev = c
	}
	vals := make([]float64, len(cols))
	for t := range m.Data {
		for i, c := range cols {
			vals[i] = m.Data[t][c]
		}
		sort.Float64s(vals)
		for i, c := range cols {
			m.Data[t][c] = vals[i]
		}
	}
	return m, nil
}

// PartiallyConsistent draws a CVB matrix and makes every even-indexed column
// mutually consistent — the standard "partially consistent" class with half
// the machines ordered.
func PartiallyConsistent(p CVBParams, src *stats.Source) (*Matrix, error) {
	p.Consistent = false
	m, err := CVB(p, src)
	if err != nil {
		return nil, err
	}
	var cols []int
	for c := 0; c < m.Machines; c += 2 {
		cols = append(cols, c)
	}
	return m.MakePartiallyConsistent(cols)
}

// ConsistencyClass labels a matrix's structure.
type ConsistencyClass int

const (
	// Inconsistent: no common machine ordering.
	Inconsistent ConsistencyClass = iota
	// PartiallyConsistentClass: the even-indexed columns are mutually
	// ordered but the whole matrix is not.
	PartiallyConsistentClass
	// Consistent: every row is ascending.
	Consistent
)

// String names the class.
func (c ConsistencyClass) String() string {
	switch c {
	case Consistent:
		return "consistent"
	case PartiallyConsistentClass:
		return "partially-consistent"
	default:
		return "inconsistent"
	}
}

// Classify reports the matrix's consistency class (checking the conventional
// even-column subset for partial consistency).
func (m *Matrix) Classify() ConsistencyClass {
	if m.IsConsistent() {
		return Consistent
	}
	for t := range m.Data {
		prev := -1.0
		first := true
		for c := 0; c < m.Machines; c += 2 {
			v := m.Data[t][c]
			if !first && v < prev {
				return Inconsistent
			}
			prev, first = v, false
		}
	}
	return PartiallyConsistentClass
}
