package etc

import (
	"testing"

	"fepia/internal/stats"
)

func TestMakePartiallyConsistent(t *testing.T) {
	m := &Matrix{Tasks: 2, Machines: 4, Data: [][]float64{
		{9, 1, 3, 2},
		{5, 8, 1, 7},
	}}
	if _, err := m.MakePartiallyConsistent([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	// Row 0: cols {0,2} were (9,3) → sorted (3,9); others untouched.
	if m.Data[0][0] != 3 || m.Data[0][2] != 9 || m.Data[0][1] != 1 || m.Data[0][3] != 2 {
		t.Errorf("row 0 = %v", m.Data[0])
	}
	if m.Data[1][0] != 1 || m.Data[1][2] != 5 {
		t.Errorf("row 1 = %v", m.Data[1])
	}
}

func TestMakePartiallyConsistentErrors(t *testing.T) {
	m := &Matrix{Tasks: 1, Machines: 3, Data: [][]float64{{1, 2, 3}}}
	if _, err := m.MakePartiallyConsistent(nil); err == nil {
		t.Error("empty column list must error")
	}
	if _, err := m.MakePartiallyConsistent([]int{2, 1}); err == nil {
		t.Error("non-ascending columns must error")
	}
	if _, err := m.MakePartiallyConsistent([]int{0, 5}); err == nil {
		t.Error("out-of-range column must error")
	}
	if _, err := m.MakePartiallyConsistent([]int{0, 0}); err == nil {
		t.Error("duplicate column must error")
	}
}

func TestPartiallyConsistentGenerator(t *testing.T) {
	m, err := PartiallyConsistent(CVBParams{Tasks: 100, Machines: 8, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.5},
		stats.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	// Even columns ascending per row.
	for t2, row := range m.Data {
		prev := -1.0
		for c := 0; c < m.Machines; c += 2 {
			if row[c] < prev {
				t.Fatalf("row %d even columns not ordered: %v", t2, row)
			}
			prev = row[c]
		}
	}
	if got := m.Classify(); got != PartiallyConsistentClass {
		t.Errorf("Classify = %v, want partially-consistent", got)
	}
}

func TestClassify(t *testing.T) {
	consistent, err := CVB(CVBParams{Tasks: 60, Machines: 6, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.5, Consistent: true},
		stats.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := consistent.Classify(); got != Consistent {
		t.Errorf("consistent matrix classified %v", got)
	}
	inconsistent, err := CVB(CVBParams{Tasks: 60, Machines: 6, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.5},
		stats.NewSource(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := inconsistent.Classify(); got != Inconsistent {
		t.Errorf("inconsistent matrix classified %v", got)
	}
}

func TestConsistencyClassString(t *testing.T) {
	if Consistent.String() != "consistent" ||
		PartiallyConsistentClass.String() != "partially-consistent" ||
		Inconsistent.String() != "inconsistent" {
		t.Error("class names wrong")
	}
}
