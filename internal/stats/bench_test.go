package stats

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	in := BenchFile{
		Seed:  7,
		Quick: true,
		Entries: []BenchEntry{
			{Name: "E1", WallNanos: 1_000_000, AllocBytes: 4096, Allocs: 12},
			{Name: "E2", WallNanos: 2_000_000},
		},
	}
	if err := WriteBench(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != BenchSchema {
		t.Fatalf("schema %q, want %q", out.Schema, BenchSchema)
	}
	if out.CreatedAt == "" {
		t.Fatal("CreatedAt not stamped")
	}
	if out.Seed != 7 || !out.Quick || len(out.Entries) != 2 {
		t.Fatalf("round trip mangled the file: %+v", out)
	}
	if out.Entries[0] != in.Entries[0] {
		t.Fatalf("entry round trip: %+v vs %+v", out.Entries[0], in.Entries[0])
	}
}

func TestLoadBenchRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteBench(path, BenchFile{Schema: BenchSchema}); err != nil {
		t.Fatal(err)
	}
	// Rewrite with a bogus schema via a fresh file.
	bogus := filepath.Join(t.TempDir(), "bogus.json")
	f := BenchFile{Schema: "fepia-bench/999"}
	if err := WriteBench(bogus, f); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBench(bogus); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	ms := int64(time.Millisecond)
	old := BenchFile{Entries: []BenchEntry{
		{Name: "slow", WallNanos: 100 * ms},
		{Name: "ok", WallNanos: 100 * ms},
		{Name: "tiny", WallNanos: ms / 100}, // below the noise floor
		{Name: "gone", WallNanos: 50 * ms},
	}}
	cur := BenchFile{Entries: []BenchEntry{
		{Name: "slow", WallNanos: 150 * ms}, // +50%: regression
		{Name: "ok", WallNanos: 110 * ms},   // +10%: inside tolerance
		{Name: "tiny", WallNanos: ms / 10},  // 10x but still microscopic
		{Name: "new", WallNanos: 999 * ms},  // unmatched: skipped
	}}
	deltas := CompareBench(old, cur, CompareOpts{Tolerance: 0.20})
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (matched entries only): %+v", len(deltas), deltas)
	}
	// Sorted worst-first: tiny (x10) leads, then slow, then ok.
	if deltas[0].Name != "tiny" || deltas[1].Name != "slow" {
		t.Fatalf("sort order: %+v", deltas)
	}
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Name != "slow" {
		t.Fatalf("regressions = %+v, want exactly [slow]", reg)
	}
	if reg[0].Ratio < 1.49 || reg[0].Ratio > 1.51 {
		t.Fatalf("ratio = %g, want 1.5", reg[0].Ratio)
	}
}

func TestCompareBenchNoiseFloorOneSided(t *testing.T) {
	// An entry that *grows* past the floor is flagged even if its baseline
	// was below it: a micro-benchmark blowing up into milliseconds is real.
	ms := int64(time.Millisecond)
	old := BenchFile{Entries: []BenchEntry{{Name: "x", WallNanos: ms / 10}}}
	cur := BenchFile{Entries: []BenchEntry{{Name: "x", WallNanos: 40 * ms}}}
	reg := Regressions(CompareBench(old, cur, CompareOpts{}))
	if len(reg) != 1 {
		t.Fatalf("blow-up past the floor not flagged: %+v", reg)
	}
}

func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: fepia
BenchmarkRadiusNumeric/n=4-8   	    1275	    924301 ns/op	 1059724 B/op	   18989 allocs/op
BenchmarkTolerable-8           	 1000000	       976.0 ns/op	     864 B/op	      36 allocs/op
BenchmarkNoAllocColumns        	     100	     12345 ns/op
PASS
ok  	fepia	12.3s
`
	entries, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3: %+v", len(entries), entries)
	}
	want0 := BenchEntry{Name: "BenchmarkRadiusNumeric/n=4", WallNanos: 924301, AllocBytes: 1059724, Allocs: 18989}
	if entries[0] != want0 {
		t.Fatalf("entry 0 = %+v, want %+v", entries[0], want0)
	}
	if entries[1].Name != "BenchmarkTolerable" || entries[1].WallNanos != 976 {
		t.Fatalf("entry 1 = %+v", entries[1])
	}
	if entries[2].Name != "BenchmarkNoAllocColumns" || entries[2].AllocBytes != 0 {
		t.Fatalf("entry 2 = %+v", entries[2])
	}
}

func TestCompareGoBench(t *testing.T) {
	oldOut := "BenchmarkX-8 100 10000000 ns/op\n"
	newOut := "BenchmarkX-4 100 20000000 ns/op\n" // different -N suffix, matched anyway
	deltas, err := CompareGoBench(strings.NewReader(oldOut), strings.NewReader(newOut), CompareOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || !deltas[0].Regression || deltas[0].Ratio != 2 {
		t.Fatalf("deltas = %+v", deltas)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo/n=4-16":   "BenchmarkFoo/n=4",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub-case": "BenchmarkFoo/sub-case",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
