// Package stats provides the deterministic randomness and descriptive
// statistics substrate for the robustness experiments. Every randomized sweep
// in the repository draws from a named, seeded Source so that experiment
// tables are bit-reproducible across runs and machines.
package stats

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution samplers the workload generators need (gamma sampling for the
// CVB heterogeneity model is not in the standard library).
type Source struct {
	rng *rand.Rand
	src *countingSource
}

// countingSource wraps the underlying Source64 and counts state advances.
// Every public rand.Rand draw bottoms out in one or more Source64 calls,
// each advancing the generator exactly one step, and rand.Rand keeps no
// other cross-call state on the paths Source exposes — so the step count IS
// the stream position, and replaying N raw Uint64 draws on a fresh source
// reproduces the stream suffix bit-exactly.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// NewSource returns a stream seeded with the given seed.
func NewSource(seed int64) *Source {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Source{rng: rand.New(cs), src: cs}
}

// Pos returns the number of raw generator steps consumed so far. Together
// with the seed it identifies a point in the stream: NewSource(seed)
// followed by Skip(pos) continues the stream bit-identically.
func (s *Source) Pos() uint64 { return s.src.n }

// Skip advances the stream by n raw generator steps without producing
// samples. It is the resume half of Pos.
func (s *Source) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.src.Uint64()
	}
	s.src.n += n
}

// Named returns a stream whose seed is derived from a base seed and a string
// label. Distinct labels yield decorrelated streams, so experiments can give
// each sub-sweep its own stream without manual seed bookkeeping.
func Named(base int64, label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewSource(base ^ int64(h.Sum64()))
}

// Float64 returns a uniform sample from [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform sample from [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Intn returns a uniform sample from {0, …, n−1}.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Normal returns a sample from N(mean, sd²).
func (s *Source) Normal(mean, sd float64) float64 {
	return mean + sd*s.rng.NormFloat64()
}

// Exp returns a sample from an exponential distribution with the given rate
// (mean 1/rate). It panics if rate ≤ 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp requires rate > 0")
	}
	return s.rng.ExpFloat64() / rate
}

// Gamma returns a sample from a gamma distribution with the given shape and
// scale (mean = shape·scale). It panics when shape ≤ 0 or scale ≤ 0.
//
// The coefficient-of-variation-based (CVB) method for generating ETC matrices
// in the heterogeneous-computing literature draws from gamma distributions
// with shape 1/V² and scale mean·V²; this is the sampler that method uses.
// Implementation: Marsaglia & Tsang (2000) for shape ≥ 1, with the standard
// boost for shape < 1.
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a).
		u := s.rng.Float64()
		for u == 0 {
			u = s.rng.Float64()
		}
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Perm returns a pseudo-random permutation of {0, …, n−1}.
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using the given swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// UniformVec fills a fresh length-n slice with Uniform(lo, hi) samples.
func (s *Source) UniformVec(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Uniform(lo, hi)
	}
	return out
}
