package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements the machine-readable benchmark format behind
// `robustbench -bench-json` and the regression comparator CI runs against a
// committed baseline (BENCH_baseline.json). The same comparator also
// understands raw `go test -bench` output, so local before/after runs can be
// diffed without writing JSON first.

// BenchSchema identifies the JSON layout; bump it on incompatible changes.
const BenchSchema = "fepia-bench/1"

// BenchEntry is one timed unit of work: an experiment of the robustbench
// sweep or one Go benchmark. Times are nanoseconds per operation (for an
// experiment, per run); allocation figures come from runtime.MemStats
// deltas or go test's -benchmem columns, whichever produced the entry.
type BenchEntry struct {
	// Name identifies the unit ("E5", "BenchmarkRadiusNumeric/n=4", …).
	Name string `json:"name"`
	// WallNanos is the wall-clock time of one operation in nanoseconds.
	WallNanos int64 `json:"wall_ns"`
	// AllocBytes is the total number of bytes allocated by the operation.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Allocs is the number of heap allocations of the operation.
	Allocs uint64 `json:"allocs"`
}

// BenchFile is the on-disk benchmark artifact. Host fields record where the
// numbers were measured — benchmark baselines are only comparable on the
// same class of machine.
type BenchFile struct {
	Schema    string       `json:"schema"`
	CreatedAt string       `json:"created_at,omitempty"`
	GoVersion string       `json:"go_version,omitempty"`
	GOOS      string       `json:"goos,omitempty"`
	GOARCH    string       `json:"goarch,omitempty"`
	MaxProcs  int          `json:"maxprocs,omitempty"`
	Seed      int64        `json:"seed"`
	Quick     bool         `json:"quick"`
	Entries   []BenchEntry `json:"entries"`
}

// WriteBench writes f to path as indented JSON, stamping the schema and the
// creation time if unset.
func WriteBench(path string, f BenchFile) error {
	if f.Schema == "" {
		f.Schema = BenchSchema
	}
	if f.CreatedAt == "" {
		f.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("stats: encoding bench file: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("stats: writing bench file: %w", err)
	}
	return nil
}

// LoadBench reads a BenchFile written by WriteBench.
func LoadBench(path string) (BenchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, fmt.Errorf("stats: reading bench file: %w", err)
	}
	var f BenchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return BenchFile{}, fmt.Errorf("stats: decoding bench file %s: %w", path, err)
	}
	if f.Schema != "" && f.Schema != BenchSchema {
		return BenchFile{}, fmt.Errorf("stats: bench file %s has schema %q, want %q", path, f.Schema, BenchSchema)
	}
	return f, nil
}

// BenchDelta reports one entry's change between a baseline and a new run.
// Ratio is new/old wall time (1.0 = unchanged; 1.25 = 25% slower).
type BenchDelta struct {
	Name     string
	OldNanos int64
	NewNanos int64
	Ratio    float64
	// Regression is true when the entry slowed down beyond the comparison
	// tolerance and above the noise floor.
	Regression bool
}

// CompareOpts tune the regression comparison.
type CompareOpts struct {
	// Tolerance is the fractional slowdown above which an entry counts as a
	// regression; 0 selects the default 0.20 (a >20% slowdown fails).
	Tolerance float64
	// MinNanos is the noise floor: entries whose baseline AND new time are
	// both below it are never flagged (micro-timings jitter too much to
	// gate on). 0 selects the default 1ms.
	MinNanos int64
}

func (o CompareOpts) withDefaults() CompareOpts {
	if o.Tolerance == 0 {
		o.Tolerance = 0.20
	}
	if o.MinNanos == 0 {
		o.MinNanos = int64(time.Millisecond)
	}
	return o
}

// CompareBench matches entries of old and new by name and reports the wall
// time deltas, sorted by descending ratio (worst regression first). Entries
// present in only one file are skipped: a renamed or added experiment is
// not a regression.
func CompareBench(old, new BenchFile, opts CompareOpts) []BenchDelta {
	opts = opts.withDefaults()
	base := make(map[string]BenchEntry, len(old.Entries))
	for _, e := range old.Entries {
		base[e.Name] = e
	}
	var out []BenchDelta
	for _, e := range new.Entries {
		b, ok := base[e.Name]
		if !ok {
			continue
		}
		d := BenchDelta{Name: e.Name, OldNanos: b.WallNanos, NewNanos: e.WallNanos}
		if b.WallNanos > 0 {
			d.Ratio = float64(e.WallNanos) / float64(b.WallNanos)
		}
		slow := d.Ratio > 1+opts.Tolerance
		aboveFloor := b.WallNanos >= opts.MinNanos || e.WallNanos >= opts.MinNanos
		d.Regression = slow && aboveFloor
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Regressions filters a CompareBench result down to the flagged entries.
func Regressions(deltas []BenchDelta) []BenchDelta {
	var out []BenchDelta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// ParseGoBench extracts benchmark entries from `go test -bench` output.
// Lines look like
//
//	BenchmarkRadiusNumeric/n=4-8   1275   924301 ns/op   1059724 B/op   18989 allocs/op
//
// The trailing "-8" GOMAXPROCS suffix is stripped from the name so runs from
// machines with different core counts compare by benchmark identity. Lines
// that are not benchmark results are ignored; allocation columns are
// optional (absent without -benchmem).
func ParseGoBench(r io.Reader) ([]BenchEntry, error) {
	var out []BenchEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		nsop, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		e := BenchEntry{Name: trimProcSuffix(fields[0]), WallNanos: int64(nsop)}
		for i := 3; i+1 < len(fields); i++ {
			v, err := strconv.ParseUint(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				e.AllocBytes = v
			case "allocs/op":
				e.Allocs = v
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stats: scanning go bench output: %w", err)
	}
	return out, nil
}

// CompareGoBench parses two `go test -bench` outputs and compares them like
// CompareBench. It is the helper CI (or a developer) uses to gate a change:
//
//	go test -bench=. -benchmem ./... > new.txt
//	# …compare against the committed old.txt
func CompareGoBench(old, new io.Reader, opts CompareOpts) ([]BenchDelta, error) {
	oldE, err := ParseGoBench(old)
	if err != nil {
		return nil, err
	}
	newE, err := ParseGoBench(new)
	if err != nil {
		return nil, err
	}
	return CompareBench(BenchFile{Entries: oldE}, BenchFile{Entries: newE}, opts), nil
}

// trimProcSuffix removes go test's trailing "-N" GOMAXPROCS marker from a
// benchmark name, keeping sub-benchmark paths ("Benchmark/n=4-8" → and
// "Benchmark/n=4") intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
