package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestNamedStreamsDiffer(t *testing.T) {
	a := Named(1, "etc")
	b := Named(1, "hiperd")
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("named streams look correlated: %d/50 equal draws", same)
	}
}

func TestNamedDeterminism(t *testing.T) {
	x := Named(7, "sweep").Float64()
	y := Named(7, "sweep").Float64()
	if x != y {
		t.Error("Named must be deterministic for equal (seed, label)")
	}
}

func TestUniformRange(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform(3,7) out of range: %v", x)
		}
	}
}

func TestUniformVec(t *testing.T) {
	s := NewSource(2)
	v := s.UniformVec(64, -1, 1)
	if len(v) != 64 {
		t.Fatalf("len = %d", len(v))
	}
	for _, x := range v {
		if x < -1 || x >= 1 {
			t.Fatalf("out of range: %v", x)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := NewSource(3)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(2) // mean 0.5
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) mean = %v, want ≈0.5", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) must panic")
		}
	}()
	NewSource(1).Exp(0)
}

func TestGammaMoments(t *testing.T) {
	// Gamma(shape k, scale θ): mean kθ, variance kθ².
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0}, // shape < 1 path
		{1.0, 1.0},
		{4.0, 0.5},
		{9.0, 3.0},
	}
	for _, c := range cases {
		s := NewSource(11)
		const n = 40000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Gamma(c.shape, c.scale)
			if xs[i] < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative sample", c.shape, c.scale)
			}
		}
		wantMean := c.shape * c.scale
		wantSD := math.Sqrt(c.shape) * c.scale
		if m := Mean(xs); math.Abs(m-wantMean) > 0.05*wantMean+0.02 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ≈%v", c.shape, c.scale, m, wantMean)
		}
		if sd := StdDev(xs); math.Abs(sd-wantSD) > 0.08*wantSD+0.02 {
			t.Errorf("Gamma(%v,%v) sd = %v, want ≈%v", c.shape, c.scale, sd, wantSD)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma with shape<=0 must panic")
		}
	}()
	NewSource(1).Gamma(0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(5)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, i := range p {
		if i < 0 || i >= 20 || seen[i] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[i] = true
	}
}

func TestSummarizeKnown(t *testing.T) {
	sm := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if sm.N != 8 {
		t.Fatalf("N = %d", sm.N)
	}
	if math.Abs(sm.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", sm.Mean)
	}
	// Sample SD of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(sm.SD-want) > 1e-12 {
		t.Errorf("SD = %v, want %v", sm.SD, want)
	}
	if sm.Min != 2 || sm.Max != 9 {
		t.Errorf("Min/Max = %v/%v", sm.Min, sm.Max)
	}
	if math.Abs(sm.Median-4.5) > 1e-12 {
		t.Errorf("Median = %v, want 4.5", sm.Median)
	}
	if sm.CI95Low >= sm.Mean || sm.CI95High <= sm.Mean {
		t.Errorf("CI [%v, %v] does not bracket mean", sm.CI95Low, sm.CI95High)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	sm := Summarize(nil)
	if sm.N != 0 || sm.Mean != 0 {
		t.Errorf("empty Summarize = %+v", sm)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	sm := Summarize([]float64{3})
	if sm.Mean != 3 || sm.SD != 0 || sm.Median != 3 || sm.Min != 3 || sm.Max != 3 {
		t.Errorf("singleton Summarize = %+v", sm)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if q := Quantile(sorted, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); q != 3 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := Quantile(sorted, 0.25); q != 2 {
		t.Errorf("q0.25 = %v", q)
	}
	if q := Quantile(sorted, 0.125); q != 1.5 {
		t.Errorf("q0.125 = %v (interpolation)", q)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty must panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestCV(t *testing.T) {
	if cv := CV([]float64{5, 5, 5}); cv != 0 {
		t.Errorf("CV of constants = %v", cv)
	}
	if cv := CV(nil); cv != 0 {
		t.Errorf("CV of empty = %v", cv)
	}
	xs := []float64{1, 3}
	want := StdDev(xs) / 2
	if cv := CV(xs); math.Abs(cv-want) > 1e-15 {
		t.Errorf("CV = %v, want %v", cv, want)
	}
}

func TestMaxDiffs(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2.5, 3}
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v", d)
	}
	if d := MaxRelDiff(a, b); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("MaxRelDiff = %v, want 0.2", d)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if len(h.Counts) != 2 || len(h.Edges) != 3 {
		t.Fatalf("histogram shape: %+v", h)
	}
	if h.Counts[0]+h.Counts[1] != 5 {
		t.Errorf("counts must sum to sample size: %v", h.Counts)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Errorf("counts = %v, want [2 3] (0.5 falls in the second bin)", h.Counts)
	}
	// Max value lands in the last bin, not out of range.
	if h.Edges[0] != 0 || h.Edges[2] != 1 {
		t.Errorf("edges = %v", h.Edges)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{2, 2, 2}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("degenerate histogram lost samples: %v", h.Counts)
	}
}

func TestPropQuantileMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		s := NewSource(seed)
		n := int(nRaw%50) + 1
		xs := s.UniformVec(n, -10, 10)
		sm := Summarize(xs)
		return sm.Min <= sm.P05 && sm.P05 <= sm.Median &&
			sm.Median <= sm.P95 && sm.P95 <= sm.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMeanWithinRange(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		s := NewSource(seed)
		n := int(nRaw%50) + 1
		xs := s.UniformVec(n, 0, 100)
		m := Mean(xs)
		sm := Summarize(xs)
		return m >= sm.Min-1e-12 && m <= sm.Max+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanRankPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if r := SpearmanRank(a, b); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect agreement = %v, want 1", r)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if r := SpearmanRank(a, rev); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect inversion = %v, want -1", r)
	}
}

func TestSpearmanRankTiesAndEdges(t *testing.T) {
	if r := SpearmanRank([]float64{1}, []float64{2}); r != 0 {
		t.Errorf("singleton = %v", r)
	}
	if r := SpearmanRank([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("constant sample = %v, want 0", r)
	}
	// Known small case with a tie: monotone despite the tie keeps r high.
	r := SpearmanRank([]float64{1, 2, 2, 4}, []float64{1, 3, 3, 9})
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("tied monotone = %v, want 1", r)
	}
}

func TestSpearmanRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	SpearmanRank([]float64{1}, []float64{1, 2})
}

func TestSpearmanRankAntiCorrelated(t *testing.T) {
	// Monotone transformation invariance: r depends only on order.
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 8, 27, 64} // a^3: same order
	if r := SpearmanRank(a, b); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone transform = %v, want 1", r)
	}
}
