package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample. Experiment tables report
// sweeps through these rather than raw sample dumps.
type Summary struct {
	N                 int
	Mean, SD          float64
	Min, Max          float64
	Median            float64
	P05, P95          float64
	CI95Low, CI95High float64 // normal-approximation 95% CI of the mean
}

// Summarize computes descriptive statistics for xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	sd := 0.0
	if n > 1 {
		sd = math.Sqrt(ss / float64(n-1))
	}
	half := 1.959964 * sd / math.Sqrt(float64(n))
	return Summary{
		N:        n,
		Mean:     mean,
		SD:       sd,
		Min:      sorted[0],
		Max:      sorted[n-1],
		Median:   Quantile(sorted, 0.5),
		P05:      Quantile(sorted, 0.05),
		P95:      Quantile(sorted, 0.95),
		CI95Low:  mean - half,
		CI95High: mean + half,
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using linear interpolation between order statistics. It panics when the
// sample is empty or q is outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%g outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CV returns the coefficient of variation sd/mean (0 when the mean is 0).
// The CVB ETC-generation method is parameterized directly by task and machine
// CVs, so experiments verify achieved CVs with this function.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MaxAbsDiff returns max_i |a_i − b_i|; it panics on length mismatch. Used to
// report the agreement between closed-form and numeric radii in sweeps.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// MaxRelDiff returns max_i |a_i − b_i| / max(1, |a_i|, |b_i|).
func MaxRelDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MaxRelDiff length mismatch")
	}
	var m float64
	for i := range a {
		scale := 1.0
		if v := math.Abs(a[i]); v > scale {
			scale = v
		}
		if v := math.Abs(b[i]); v > scale {
			scale = v
		}
		if d := math.Abs(a[i]-b[i]) / scale; d > m {
			m = d
		}
	}
	return m
}

// Histogram bins xs into nBins equal-width bins over [min, max] and returns
// the bin counts plus the bin edges (nBins+1 edges). Values equal to max land
// in the last bin. It panics when nBins < 1; an empty sample yields all-zero
// counts over [0, 1].
type Histogram struct {
	Edges  []float64
	Counts []int
}

// NewHistogram builds a histogram of xs with nBins equal-width bins.
func NewHistogram(xs []float64, nBins int) Histogram {
	if nBins < 1 {
		panic("stats: NewHistogram requires nBins >= 1")
	}
	lo, hi := 0.0, 1.0
	if len(xs) > 0 {
		lo, hi = xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if lo == hi {
			hi = lo + 1
		}
	}
	h := Histogram{
		Edges:  make([]float64, nBins+1),
		Counts: make([]int, nBins),
	}
	w := (hi - lo) / float64(nBins)
	for i := range h.Edges {
		h.Edges[i] = lo + w*float64(i)
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= nBins {
			b = nBins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h
}

// SpearmanRank computes Spearman's rank correlation coefficient between two
// paired samples (no tie correction beyond average ranks; ties get their
// mean rank). It returns 0 for samples shorter than 2 and panics on length
// mismatch. Experiment E7 uses it to quantify how far the robustness
// ranking departs from the makespan ranking.
func SpearmanRank(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: SpearmanRank length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	ra := averageRanks(a)
	rb := averageRanks(b)
	// Pearson correlation of the ranks (robust to ties).
	ma, mb := Mean(ra), Mean(rb)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// averageRanks assigns 1-based ranks with ties sharing their mean rank.
func averageRanks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mean := float64(i+j+2) / 2 // average of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mean
		}
		i = j + 1
	}
	return ranks
}
