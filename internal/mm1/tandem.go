package mm1

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/vec"
)

// Tandem is a series of M/M/1 stations fed by one arrival stream — the
// textbook model of a request passing through a chain of services (gateway →
// application → database). By Burke's theorem the departure process of an
// M/M/1 queue is Poisson at the arrival rate, so in steady state every stage
// sees the same λ and the end-to-end latency is the sum of per-stage sojourn
// times:
//
//	W_total(λ, μ) = Σ_i 1/(μ_i − λ).
//
// Unlike the independent Tier, the end-to-end feature couples every stage's
// capacity with the shared demand — a genuinely multi-dimensional curved
// boundary with no closed-form nearest point, carried entirely by the
// numeric tier (the per-stage stability features keep their exact line
// ground truths, which the tests still verify).
type Tandem struct {
	// Names labels the stages.
	Names []string
	// Lambda is the nominal shared arrival rate (requests/second).
	Lambda float64
	// Mu holds the nominal per-stage service rates (requests/second).
	Mu vec.V
	// MaxTotalLatency bounds W_total.
	MaxTotalLatency float64
	// MaxUtil bounds every stage's utilization λ/μ_i.
	MaxUtil float64
}

// Validate checks stability and nominal feasibility.
func (t *Tandem) Validate() error {
	if len(t.Mu) == 0 {
		return fmt.Errorf("%w: tandem has no stages", ErrBadTier)
	}
	if len(t.Names) != 0 && len(t.Names) != len(t.Mu) {
		return fmt.Errorf("%w: %d names for %d stages", ErrBadTier, len(t.Names), len(t.Mu))
	}
	if t.Lambda <= 0 {
		return fmt.Errorf("%w: lambda = %g", ErrBadTier, t.Lambda)
	}
	if t.MaxTotalLatency <= 0 || t.MaxUtil <= 0 || t.MaxUtil >= 1 {
		return fmt.Errorf("%w: MaxTotalLatency=%g MaxUtil=%g", ErrBadTier, t.MaxTotalLatency, t.MaxUtil)
	}
	for i, mu := range t.Mu {
		if mu <= 0 {
			return fmt.Errorf("%w: stage %d mu = %g", ErrBadTier, i, mu)
		}
		if t.Lambda >= mu {
			return fmt.Errorf("%w: stage %d unstable (lambda %g >= mu %g)", ErrBadTier, i, t.Lambda, mu)
		}
		if t.Lambda/mu > t.MaxUtil {
			return fmt.Errorf("%w: stage %d nominal utilization %g exceeds %g",
				ErrBadTier, i, t.Lambda/mu, t.MaxUtil)
		}
	}
	if w := t.TotalLatency(t.Lambda, t.Mu); w > t.MaxTotalLatency {
		return fmt.Errorf("%w: nominal end-to-end latency %g exceeds bound %g", ErrBadTier, w, t.MaxTotalLatency)
	}
	return nil
}

// TotalLatency evaluates W_total for given rates (+Inf when any stage is at
// or beyond saturation).
func (t *Tandem) TotalLatency(lambda float64, mu vec.V) float64 {
	var w float64
	for _, m := range mu {
		w += Latency(lambda, m)
	}
	return w
}

// stageName returns the label of stage i.
func (t *Tandem) stageName(i int) string {
	if i < len(t.Names) {
		return t.Names[i]
	}
	return fmt.Sprintf("stage-%d", i)
}

// Analysis adapts the tandem to a two-kind FePIA analysis: π_1 = the shared
// arrival rate (one element), π_2 = per-stage service rates. Features: the
// coupled end-to-end latency plus one utilization feature per stage.
func (t *Tandem) Analysis() (*core.Analysis, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	params := []core.Perturbation{
		{Name: "arrival-rate", Unit: "req/s", Orig: vec.Of(t.Lambda)},
		{Name: "service-rates", Unit: "req/s", Orig: t.Mu.Clone()},
	}
	const overload = 1e18
	features := []core.Feature{{
		Name:   "latency(end-to-end)",
		Bounds: core.MaxOnly(t.MaxTotalLatency),
		Impact: func(vs []vec.V) float64 {
			lam := vs[0][0]
			var w float64
			for _, mu := range vs[1] {
				if lam >= mu {
					return overload
				}
				w += 1 / (mu - lam)
			}
			return w
		},
	}}
	for i := range t.Mu {
		i := i
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("util(%s)", t.stageName(i)),
			Bounds: core.MaxOnly(t.MaxUtil),
			Impact: func(vs []vec.V) float64 {
				if vs[1][i] <= 0 {
					return overload
				}
				return vs[0][0] / vs[1][i]
			},
		})
	}
	return core.NewAnalysis(features, params)
}

// StageUtilRadius is the exact joint (λ, μ_i) radius of one stage's
// utilization bound — the same line geometry as Tier.UtilRadius, restricted
// to the two coordinates that matter (the other stages' rates are free but
// irrelevant to this feature).
func (t *Tandem) StageUtilRadius(i int) (float64, error) {
	if i < 0 || i >= len(t.Mu) {
		return 0, fmt.Errorf("%w: stage %d of %d", ErrBadTier, i, len(t.Mu))
	}
	c := t.MaxUtil
	return math.Abs(t.Lambda-c*t.Mu[i]) / math.Sqrt(1+c*c), nil
}
