package mm1

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/core"
	"fepia/internal/stats"
)

// webTier: two stations with comfortable headroom.
func webTier(t *testing.T) *Tier {
	t.Helper()
	tier := &Tier{
		Stations: []Station{
			{Name: "api", Lambda: 50, Mu: 100},
			{Name: "db", Lambda: 30, Mu: 80},
		},
		MaxLatency: 0.1, // 100 ms
		MaxUtil:    0.9,
	}
	if err := tier.Validate(); err != nil {
		t.Fatal(err)
	}
	return tier
}

func TestLatencyFormula(t *testing.T) {
	if got := Latency(50, 100); got != 0.02 {
		t.Errorf("W(50,100) = %v, want 0.02", got)
	}
	if !math.IsInf(Latency(100, 100), 1) {
		t.Error("saturated latency must be +Inf")
	}
	if !math.IsInf(Latency(120, 100), 1) {
		t.Error("overloaded latency must be +Inf")
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() *Tier { return webTier(t) }
	mutations := []func(*Tier){
		func(x *Tier) { x.Stations = nil },
		func(x *Tier) { x.MaxLatency = 0 },
		func(x *Tier) { x.MaxUtil = 0 },
		func(x *Tier) { x.MaxUtil = 1 },
		func(x *Tier) { x.Stations[0].Lambda = 0 },
		func(x *Tier) { x.Stations[0].Mu = 0 },
		func(x *Tier) { x.Stations[0].Lambda = 200 },  // unstable
		func(x *Tier) { x.MaxLatency = 0.001 },        // nominal latency too high
		func(x *Tier) { x.Stations[0].Lambda = 99.5 }, // nominal util too high
	}
	for i, mut := range mutations {
		tier := base()
		mut(tier)
		if err := tier.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestClosedFormRadii(t *testing.T) {
	tier := webTier(t)
	// Station 0: μ−λ = 50, 1/L = 10 → latency radius |50−10|/√2 = 40/√2.
	l0, err := tier.LatencyRadius(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l0-40/math.Sqrt2) > 1e-12 {
		t.Errorf("latency radius = %v", l0)
	}
	// Util radius: |50 − 0.9·100|/√(1+0.81) = 40/√1.81.
	u0, err := tier.UtilRadius(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u0-40/math.Sqrt(1.81)) > 1e-12 {
		t.Errorf("util radius = %v", u0)
	}
	j0, err := tier.JointRadius(0)
	if err != nil {
		t.Fatal(err)
	}
	if j0 != math.Min(l0, u0) {
		t.Errorf("joint radius = %v", j0)
	}
	if _, err := tier.LatencyRadius(9); err == nil {
		t.Error("bad index must error")
	}
	if _, err := tier.UtilRadius(-1); err == nil {
		t.Error("bad index must error")
	}
}

func TestAnalysisStructure(t *testing.T) {
	tier := webTier(t)
	a, err := tier.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Params) != 2 || len(a.Features) != 4 {
		t.Fatalf("shape: %d params, %d features", len(a.Params), len(a.Features))
	}
	vals := a.OrigValues()
	// latency(api) = 0.02, util(api) = 0.5, latency(db) = 0.02, util(db) = 0.375.
	wants := []float64{0.02, 0.5, 0.02, 0.375}
	for i, w := range wants {
		if got := a.FeatureValue(i, vals); math.Abs(got-w) > 1e-12 {
			t.Errorf("feature %d = %v, want %v", i, got, w)
		}
	}
}

func TestNumericEngineMatchesClosedForms(t *testing.T) {
	// The engine's combined radius under identity weighting must land on
	// the exact line distances — a nonlinear impact with a linear level
	// set is the sharpest test of the numeric tier.
	tier := webTier(t)
	a, err := tier.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	identity := core.Custom{Alphas: []float64{1, 1}, Label: "identity"}
	// Feature 0 (latency api) and 1 (util api): each depends only on the
	// (λ_0, μ_0) pair, so the combined radius equals the 2-D line distance.
	wantL, _ := tier.LatencyRadius(0)
	wantU, _ := tier.UtilRadius(0)
	rL, err := a.CombinedRadius(0, identity)
	if err != nil {
		t.Fatal(err)
	}
	rU, err := a.CombinedRadius(1, identity)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rL.Value-wantL) > 1e-4*(1+wantL) {
		t.Errorf("latency radius: engine %v vs exact %v", rL.Value, wantL)
	}
	if math.Abs(rU.Value-wantU) > 1e-4*(1+wantU) {
		t.Errorf("util radius: engine %v vs exact %v", rU.Value, wantU)
	}
	// Whole-tier robustness = min over stations of the joint radius.
	rho, err := a.Robustness(identity)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Inf(1)
	for i := range tier.Stations {
		j, _ := tier.JointRadius(i)
		want = math.Min(want, j)
	}
	if math.Abs(rho.Value-want) > 1e-4*(1+want) {
		t.Errorf("tier rho: engine %v vs exact %v", rho.Value, want)
	}
}

func TestPropEngineMatchesClosedFormsRandomTiers(t *testing.T) {
	f := func(seed int64) bool {
		src := stats.NewSource(seed)
		mu := src.Uniform(50, 200)
		lam := mu * src.Uniform(0.2, 0.7)
		maxUtil := src.Uniform(lam/mu+0.05, 0.97)
		nominalW := Latency(lam, mu)
		tier := &Tier{
			Stations:   []Station{{Name: "s", Lambda: lam, Mu: mu}},
			MaxLatency: nominalW * src.Uniform(1.5, 10),
			MaxUtil:    maxUtil,
		}
		if tier.Validate() != nil {
			return true // drew an inconsistent configuration; skip
		}
		a, err := tier.Analysis()
		if err != nil {
			return false
		}
		rho, err := a.Robustness(core.Custom{Alphas: []float64{1, 1}})
		if err != nil {
			return false
		}
		want, err := tier.JointRadius(0)
		if err != nil {
			return false
		}
		return math.Abs(rho.Value-want) <= 2e-4*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedRobustnessUsable(t *testing.T) {
	// The dimensionless combined metric works across the tier too.
	tier := webTier(t)
	a, err := tier.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) || math.IsInf(rho.Value, 1) {
		t.Errorf("rho = %v", rho.Value)
	}
	// Soundness spot check.
	ok, err := a.Tolerable(a.OrigValues(), core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("nominal point must be tolerable")
	}
}
