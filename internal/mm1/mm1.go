// Package mm1 models a tier of M/M/1 queueing stations — the classical
// analytic approximation for service latency under load — as a FePIA
// subject. It exists for two reasons:
//
//   - Realism: steady-state latency W = 1/(μ − λ) is how capacity planners
//     actually reason about service tiers, and both the offered load λ and
//     the service capacity μ are uncertain (different kinds: demand vs
//     infrastructure).
//   - Validation: W is *nonlinear* in (λ, μ), so the engine routes it
//     through the numeric level-set tier — yet its boundary
//     {W = L} ⇔ {μ − λ = 1/L} is an exact hyperplane, and the stability
//     boundary {λ/μ = c} is a line through the origin. Every numeric radius
//     therefore has a hand-computable ground truth, which the tests and
//     experiment E15 exploit.
package mm1

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/vec"
)

// Station is one M/M/1 service tier.
type Station struct {
	// Name identifies the tier in reports.
	Name string
	// Lambda is the nominal arrival rate (requests/second).
	Lambda float64
	// Mu is the nominal service rate (requests/second). Stability requires
	// Lambda < Mu.
	Mu float64
}

// Tier is a set of independent M/M/1 stations sharing QoS requirements.
type Tier struct {
	Stations []Station
	// MaxLatency bounds each station's steady-state sojourn time W.
	MaxLatency float64
	// MaxUtil bounds each station's utilization ρ = λ/μ (staying strictly
	// below 1 keeps queues finite with headroom).
	MaxUtil float64
}

// ErrBadTier reports invalid tier parameters.
var ErrBadTier = errors.New("mm1: invalid tier")

// Validate checks stability and requirement consistency at the nominal
// point.
func (t *Tier) Validate() error {
	if len(t.Stations) == 0 {
		return fmt.Errorf("%w: no stations", ErrBadTier)
	}
	if t.MaxLatency <= 0 || t.MaxUtil <= 0 || t.MaxUtil >= 1 {
		return fmt.Errorf("%w: MaxLatency=%g MaxUtil=%g", ErrBadTier, t.MaxLatency, t.MaxUtil)
	}
	for i, s := range t.Stations {
		if s.Lambda <= 0 || s.Mu <= 0 {
			return fmt.Errorf("%w: station %d rates lambda=%g mu=%g", ErrBadTier, i, s.Lambda, s.Mu)
		}
		if s.Lambda >= s.Mu {
			return fmt.Errorf("%w: station %d unstable (lambda %g >= mu %g)", ErrBadTier, i, s.Lambda, s.Mu)
		}
		if Latency(s.Lambda, s.Mu) > t.MaxLatency {
			return fmt.Errorf("%w: station %d nominal latency %g exceeds bound %g",
				ErrBadTier, i, Latency(s.Lambda, s.Mu), t.MaxLatency)
		}
		if s.Lambda/s.Mu > t.MaxUtil {
			return fmt.Errorf("%w: station %d nominal utilization %g exceeds bound %g",
				ErrBadTier, i, s.Lambda/s.Mu, t.MaxUtil)
		}
	}
	return nil
}

// Latency is the M/M/1 steady-state sojourn time W = 1/(μ − λ) for λ < μ
// (+Inf at or beyond saturation).
func Latency(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// Analysis adapts the tier to a two-kind FePIA analysis:
//
//	π_1 = arrival rates λ (demand uncertainty),
//	π_2 = service rates μ (capacity uncertainty),
//
// with two nonlinear features per station: sojourn time W_i(λ, μ) ≤
// MaxLatency and utilization λ_i/μ_i ≤ MaxUtil. Near saturation W blows up
// smoothly, which exercises the numeric tier on a stiff boundary; the
// closed forms below (LatencyRadius, UtilRadius) supply the ground truth.
func (t *Tier) Analysis() (*core.Analysis, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := len(t.Stations)
	lams := make(vec.V, n)
	mus := make(vec.V, n)
	for i, s := range t.Stations {
		lams[i] = s.Lambda
		mus[i] = s.Mu
	}
	params := []core.Perturbation{
		{Name: "arrival-rates", Unit: "req/s", Orig: lams},
		{Name: "service-rates", Unit: "req/s", Orig: mus},
	}
	// Past saturation (λ ≥ μ) or at non-physical rates the true values are
	// infinite; the numeric boundary search needs finite arithmetic, so the
	// impacts clamp to a huge sentinel — every boundary of interest is
	// crossed strictly before the clamp region along any probe ray.
	const overload = 1e18
	var features []core.Feature
	for i := range t.Stations {
		i := i
		features = append(features,
			core.Feature{
				Name:   fmt.Sprintf("latency(%s)", t.Stations[i].Name),
				Bounds: core.MaxOnly(t.MaxLatency),
				Impact: func(vs []vec.V) float64 {
					lam, mu := vs[0][i], vs[1][i]
					if lam >= mu {
						return overload
					}
					return 1 / (mu - lam)
				},
			},
			core.Feature{
				Name:   fmt.Sprintf("util(%s)", t.Stations[i].Name),
				Bounds: core.MaxOnly(t.MaxUtil),
				Impact: func(vs []vec.V) float64 {
					lam, mu := vs[0][i], vs[1][i]
					if mu <= 0 {
						return overload
					}
					return lam / mu
				},
			},
		)
	}
	return core.NewAnalysis(features, params)
}

// LatencyRadius is the exact joint (λ_i, μ_i) robustness radius of station
// i's latency bound: the level set {1/(μ−λ) = L} is the line μ − λ = 1/L,
// so the Euclidean distance from (λ0, μ0) is |(μ0 − λ0) − 1/L| / √2.
func (t *Tier) LatencyRadius(i int) (float64, error) {
	if i < 0 || i >= len(t.Stations) {
		return 0, fmt.Errorf("%w: station %d of %d", ErrBadTier, i, len(t.Stations))
	}
	s := t.Stations[i]
	return math.Abs((s.Mu-s.Lambda)-1/t.MaxLatency) / math.Sqrt2, nil
}

// UtilRadius is the exact joint robustness radius of station i's
// utilization bound: {λ/μ = c} is the line λ − cμ = 0, so the distance from
// (λ0, μ0) is |λ0 − c·μ0| / √(1 + c²).
func (t *Tier) UtilRadius(i int) (float64, error) {
	if i < 0 || i >= len(t.Stations) {
		return 0, fmt.Errorf("%w: station %d of %d", ErrBadTier, i, len(t.Stations))
	}
	s := t.Stations[i]
	c := t.MaxUtil
	return math.Abs(s.Lambda-c*s.Mu) / math.Sqrt(1+c*c), nil
}

// JointRadius is min(LatencyRadius, UtilRadius) for station i — the exact
// ground truth for the engine's combined radius restricted to one station's
// (λ, μ) pair under identity weighting.
func (t *Tier) JointRadius(i int) (float64, error) {
	l, err := t.LatencyRadius(i)
	if err != nil {
		return 0, err
	}
	u, err := t.UtilRadius(i)
	if err != nil {
		return 0, err
	}
	return math.Min(l, u), nil
}
