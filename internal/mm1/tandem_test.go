package mm1

import (
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/vec"
)

func chain(t *testing.T) *Tandem {
	t.Helper()
	td := &Tandem{
		Names:           []string{"gw", "app", "db"},
		Lambda:          40,
		Mu:              vec.Of(120, 90, 100),
		MaxTotalLatency: 0.2,
		MaxUtil:         0.9,
	}
	if err := td.Validate(); err != nil {
		t.Fatal(err)
	}
	return td
}

func TestTandemValidateErrors(t *testing.T) {
	mutations := []func(*Tandem){
		func(x *Tandem) { x.Mu = nil },
		func(x *Tandem) { x.Names = []string{"a"} },
		func(x *Tandem) { x.Lambda = 0 },
		func(x *Tandem) { x.MaxTotalLatency = 0 },
		func(x *Tandem) { x.MaxUtil = 1 },
		func(x *Tandem) { x.Mu[1] = 0 },
		func(x *Tandem) { x.Lambda = 95 },               // unstable at stage 1
		func(x *Tandem) { x.MaxTotalLatency = 0.01 },    // nominal W too high
		func(x *Tandem) { x.Lambda = 85; x.Mu[1] = 92 }, // util too high
	}
	for i, mut := range mutations {
		td := chain(t)
		mut(td)
		if err := td.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTotalLatency(t *testing.T) {
	td := chain(t)
	// 1/80 + 1/50 + 1/60 = 0.0125 + 0.02 + 0.016667 = 0.049167.
	want := 1.0/80 + 1.0/50 + 1.0/60
	if got := td.TotalLatency(td.Lambda, td.Mu); math.Abs(got-want) > 1e-12 {
		t.Errorf("W_total = %v, want %v", got, want)
	}
	if !math.IsInf(td.TotalLatency(200, td.Mu), 1) {
		t.Error("overloaded tandem must have infinite latency")
	}
}

func TestTandemAnalysisStructure(t *testing.T) {
	td := chain(t)
	a, err := td.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Params) != 2 || a.TotalDim() != 4 {
		t.Fatalf("shape: %d params, dim %d", len(a.Params), a.TotalDim())
	}
	if len(a.Features) != 4 { // 1 end-to-end + 3 utils
		t.Fatalf("features = %d", len(a.Features))
	}
	vals := a.OrigValues()
	if got := a.FeatureValue(0, vals); math.Abs(got-td.TotalLatency(td.Lambda, td.Mu)) > 1e-12 {
		t.Errorf("end-to-end feature = %v", got)
	}
	if got := a.FeatureValue(2, vals); math.Abs(got-40.0/90) > 1e-12 {
		t.Errorf("app util feature = %v, want %v", got, 40.0/90)
	}
}

func TestTandemUtilRadiiMatchEngine(t *testing.T) {
	td := chain(t)
	a, err := td.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	identity := core.Custom{Alphas: vec.Of(1, 1), Label: "identity"}
	for i := range td.Mu {
		want, err := td.StageUtilRadius(i)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.CombinedRadius(1+i, identity)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Value-want) > 1e-3*(1+want) {
			t.Errorf("stage %d util radius: engine %v vs exact %v", i, r.Value, want)
		}
	}
	if _, err := td.StageUtilRadius(9); err == nil {
		t.Error("bad index must error")
	}
}

func TestTandemEndToEndRadiusProperties(t *testing.T) {
	// No simple closed form for the coupled latency boundary; verify the
	// defining properties instead: the boundary point is feasible (W_total
	// at the bound), and the radius is a true lower bound on any boundary
	// point distance found by ray probing.
	td := chain(t)
	a, err := td.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	identity := core.Custom{Alphas: vec.Of(1, 1), Label: "identity"}
	r, err := a.CombinedRadius(0, identity)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Value > 0) || math.IsInf(r.Value, 1) {
		t.Fatalf("end-to-end radius = %v", r.Value)
	}
	vals, err := core.FromP(a, identity, 0, r.Point)
	if err != nil {
		t.Fatal(err)
	}
	if got := td.TotalLatency(vals[0][0], vals[1]); math.Abs(got-td.MaxTotalLatency) > 1e-6 {
		t.Errorf("boundary point W_total = %v, want %v", got, td.MaxTotalLatency)
	}
	// A cheap upper bound: push only λ up until W_total = bound; the true
	// radius cannot exceed that single-axis distance.
	lamHi := td.Lambda
	for step := 0.5; step > 1e-9; step /= 2 {
		for td.TotalLatency(lamHi+step, td.Mu) <= td.MaxTotalLatency {
			lamHi += step
		}
	}
	if r.Value > (lamHi-td.Lambda)+1e-6 {
		t.Errorf("radius %v exceeds single-axis bound %v", r.Value, lamHi-td.Lambda)
	}
}

func TestTandemRobustnessAndSoundness(t *testing.T) {
	td := chain(t)
	a, err := td.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) {
		t.Fatalf("rho = %v", rho.Value)
	}
	ok, err := a.Tolerable(a.OrigValues(), core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("nominal point must be tolerable")
	}
	// A clearly saturating point is rejected and violates.
	bad := []vec.V{vec.Of(89), td.Mu.Clone()}
	ok, err = a.Tolerable(bad, core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if ok || !a.Violates(bad) {
		t.Error("near-saturation demand must violate and be declined")
	}
}
