// Failure recovery: the paper names "sudden machine or link failures" among
// the uncertainties a robust allocation must face. This example fails each
// machine of a shared-machine HiPer-D system in turn, remaps the orphaned
// applications twice — once with classical load balancing, once maximizing
// the FePIA robustness — and compares the robustness of the survivors.
//
// Run with:
//
//	go run ./examples/failure
package main

import (
	"errors"
	"fmt"
	"log"

	"fepia"
	"fepia/internal/hiperd"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

func main() {
	p := workload.DefaultHiPerD()
	p.DedicatedMachines = false
	p.Machines = 5
	p.Rate = 2
	sys, err := workload.HiPerD(p, stats.NewSource(11))
	if err != nil {
		log.Fatal(err)
	}

	rhoOf := func(s *hiperd.System) float64 {
		a, err := s.Analysis()
		if err != nil {
			log.Fatal(err)
		}
		rho, err := a.Robustness(fepia.Normalized{})
		if err != nil {
			log.Fatal(err)
		}
		return rho.Value
	}
	rho0 := rhoOf(sys)
	fmt.Printf("system: %d apps on %d machines, combined robustness rho = %.4f\n\n",
		len(sys.Apps), len(sys.Machines), rho0)

	tb := report.NewTable("Single-machine failures with two recovery strategies",
		"failed machine", "rho after greedy remap", "rho after robust remap", "recoverable")
	for j := 0; j < len(sys.Machines); j++ {
		greedy, errG := sys.FailMachine(j, hiperd.GreedyUtilRemap)
		robust, errR := sys.FailMachine(j, hiperd.RobustRemap)
		if errG != nil || errR != nil {
			if errG != nil && !errors.Is(errG, hiperd.ErrNoCapacity) {
				log.Fatal(errG)
			}
			tb.AddRow(j, "-", "-", false)
			continue
		}
		tb.AddRow(j, rhoOf(greedy), rhoOf(robust), true)
	}
	fmt.Print(tb.String())

	fmt.Println("\nWhere the orphaned applications land decides how close the")
	fmt.Println("surviving machines sit to their throughput and latency boundaries;")
	fmt.Println("the robustness-aware remapper places them to keep the combined")
	fmt.Println("radius as large as possible. Co-locating applications can even")
	fmt.Println("RAISE robustness by eliminating cross-machine messages — losing a")
	fmt.Println("machine sometimes relaxes the constraint set.")
}
