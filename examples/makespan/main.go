// Makespan ranking: use the robustness metric to choose between resource
// allocations — the scenario that motivated the FePIA line of work.
//
// A CVB-generated ETC matrix is mapped by several classical heuristics; for
// every resulting allocation we print the estimated makespan and the FePIA
// robustness radius under the allocation's own requirement
// makespan ≤ τ·M^orig. The minimum-makespan mapping is usually NOT the most
// robust one: the metric gives a resource manager a second axis to optimize.
//
// Run with:
//
//	go run ./examples/makespan
package main

import (
	"fmt"
	"log"
	"math"

	"fepia/internal/makespan"
	"fepia/internal/report"
	"fepia/internal/sched"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

func main() {
	const tau = 1.3
	src := stats.NewSource(7)

	m, err := workload.Makespan(workload.MakespanParams{
		Tasks: 48, Machines: 6, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4,
	}, src)
	if err != nil {
		log.Fatal(err)
	}

	tb := report.NewTable(
		fmt.Sprintf("48 tasks on 6 machines (CVB), requirement: makespan <= %.1f x own estimate", tau),
		"heuristic", "est. makespan", "rho (FePIA)", "critical machine")
	for _, h := range sched.Registry(tau, stats.NewSource(99)) {
		alloc, err := h.Fn(m)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := makespan.New(m, alloc)
		if err != nil {
			log.Fatal(err)
		}
		radii, rho, err := sys.ClosedFormRadii(tau)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(h.Name, sys.OrigMakespan(), rho, radii.ArgMin())
	}
	fmt.Print(tb.String())

	fmt.Println("\nInterpretation: rho is the largest Euclidean perturbation of the")
	fmt.Println("actual execution-time vector (seconds) that every machine is")
	fmt.Println("guaranteed to absorb before the allocation breaks its own promise.")
	fmt.Println("Compare the rho column against the makespan ranking: tight packing")
	fmt.Println("buys estimated speed at the cost of tolerance to uncertainty.")

	// Verify the metric empirically for the Min-Min allocation: perturb
	// at 99% of rho in many random directions — the bound must hold.
	alloc, err := sched.MinMin(m)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := makespan.New(m, alloc)
	if err != nil {
		log.Fatal(err)
	}
	_, rho, err := sys.ClosedFormRadii(tau)
	if err != nil {
		log.Fatal(err)
	}
	bound := tau * sys.OrigMakespan()
	orig := sys.OrigTimes()
	violations := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		d := make([]float64, len(orig))
		var norm float64
		for j := range d {
			d[j] = src.Normal(0, 1)
			norm += d[j] * d[j]
		}
		scale := rho * 0.99 / math.Sqrt(norm)
		c := orig.Clone()
		for j := range c {
			c[j] += d[j] * scale
		}
		ms, err := sys.Makespan(c)
		if err != nil {
			log.Fatal(err)
		}
		if ms > bound {
			violations++
		}
	}
	fmt.Printf("\nempirical check (min-min): %d/%d random perturbations at 0.99·rho violated the bound (expected 0)\n",
		violations, trials)
}
