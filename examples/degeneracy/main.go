// Degeneracy: an interactive rendition of the paper's central argument.
//
// Section 3.1 proves that sensitivity-based weighting (α_j = 1/r_μ(φ, π_j))
// collapses every linear system with n one-element perturbation parameters
// onto the same combined robustness 1/√n — no matter how the coefficients,
// the requirement β, or the original values differ. Section 3.2's
// normalization by original values repairs this.
//
// This example builds three deliberately different two-parameter systems and
// prints both metrics side by side; then it sweeps the requirement β to show
// the sensitivity metric is frozen while the normalized one responds.
//
// Run with:
//
//	go run ./examples/degeneracy
package main

import (
	"fmt"
	"log"

	"fepia"
	"fepia/internal/report"
)

func main() {
	type system struct {
		label   string
		k, orig fepia.Vector
		beta    float64
	}
	systems := []system{
		{"balanced, tight requirement", fepia.Vector{1, 1}, fepia.Vector{1, 1}, 1.1},
		{"skewed coefficients, loose requirement", fepia.Vector{10, 0.1}, fepia.Vector{1, 1}, 2.0},
		{"skewed originals, moderate requirement", fepia.Vector{1, 1}, fepia.Vector{0.2, 50}, 1.5},
	}

	tb := report.NewTable("Three very different systems, n = 2 perturbation kinds",
		"system", "beta", "sensitivity rho", "normalized rho")
	for _, s := range systems {
		a, err := fepia.LinearOneElemAnalysis(s.k, s.orig, s.beta)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := a.CombinedRadius(0, fepia.Sensitivity{})
		if err != nil {
			log.Fatal(err)
		}
		rn, err := a.CombinedRadius(0, fepia.Normalized{})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(s.label, s.beta, rs.Value, rn.Value)
	}
	fmt.Print(tb.String())
	fmt.Printf("\nsensitivity column: identical (1/sqrt(2) = %.6f) — the degeneracy the paper proves.\n",
		fepia.SensitivityRadiusLinear(2))
	fmt.Println("normalized column: separates the systems, as a metric must.")

	// Sweep beta for a fixed system.
	fmt.Println()
	tb2 := report.NewTable("Raising the requirement beta (k=[2 3], orig=[1 2])",
		"beta", "sensitivity rho", "normalized rho")
	for _, beta := range []float64{1.05, 1.1, 1.2, 1.5, 2, 3} {
		a, err := fepia.LinearOneElemAnalysis(fepia.Vector{2, 3}, fepia.Vector{1, 2}, beta)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := a.CombinedRadius(0, fepia.Sensitivity{})
		if err != nil {
			log.Fatal(err)
		}
		rn, err := a.CombinedRadius(0, fepia.Normalized{})
		if err != nil {
			log.Fatal(err)
		}
		tb2.AddRow(beta, rs.Value, rn.Value)
	}
	fmt.Print(tb2.String())
	fmt.Println("\nA system allowed to degrade 3x should measure as more robust than one")
	fmt.Println("allowed 5% — the sensitivity metric cannot see the difference; the")
	fmt.Println("normalized metric grows linearly in (beta - 1).")
}
