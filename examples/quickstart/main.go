// Quickstart: a complete FePIA robustness analysis in ~60 lines.
//
// The system is a small mixed-kind one — two task execution times (seconds)
// and one message length (bytes) feed a latency feature with the requirement
// latency ≤ 42. We compute:
//
//  1. the per-kind robustness radii r_μ(φ, π_j) — Eq. 1 of the paper,
//  2. the combined dimensionless robustness ρ_μ(Φ, P) — Eq. 2 under the
//     paper's normalized weighting,
//  3. the operating-point check: can the system run at given actual values?
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fepia"
)

func main() {
	// Step 1+3 of FePIA: the feature and its impact function.
	// latency = 2·e1 + 3·e2 + 0.005·m   (affine in both kinds).
	latency := fepia.Feature{
		Name:   "latency",
		Bounds: fepia.MaxOnly(42),
		Linear: &fepia.LinearImpact{
			Coeffs: []fepia.Vector{{2, 3}, {0.005}},
		},
	}
	// Step 2: the perturbation parameters, one per kind, with the values
	// the system was configured for.
	params := []fepia.Perturbation{
		{Name: "exec-times", Unit: "s", Orig: fepia.Vector{1, 2}},
		{Name: "msg-length", Unit: "bytes", Orig: fepia.Vector{4000}},
	}

	a, err := fepia.NewAnalysis([]fepia.Feature{latency}, params)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4a: per-kind radii. The units differ (seconds vs bytes), so
	// these numbers are NOT comparable with each other — that is exactly
	// the problem the paper addresses.
	for j, p := range a.Params {
		r, err := a.RadiusSingle(0, j)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("r(latency, %-10s) = %8.4f %s (boundary: %s)\n",
			p.Name, r.Value, p.Unit, r.Side)
	}

	// Step 4b: merge the kinds into the dimensionless P-space
	// (P = π/π^orig element-wise) and measure the combined radius.
	rho, err := a.Robustness(fepia.Normalized{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrho(Phi, P)  = %8.4f   (dimensionless, %s weighting)\n",
		rho.Value, rho.Weighting)
	fmt.Printf("meaning: the system tolerates any simultaneous relative\n")
	fmt.Printf("perturbation with ||pi/pi_orig - 1||_2 < %.4f\n\n", rho.Value)

	// The operating-point recipe: (a) convert to P, (b) measure the
	// distance from P_orig, (c) compare with rho.
	for _, vals := range [][]fepia.Vector{
		{{1.05, 2.1}, {4200}}, // small joint drift
		{{1.8, 3.6}, {7000}},  // large joint drift
	} {
		ok, err := a.Tolerable(vals, fepia.Normalized{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tolerable at exec=%v msg=%v ? %v (actually violates: %v)\n",
			vals[0], vals[1], ok, a.Violates(vals))
	}
}
