// Queueing capacity planning: the FePIA metric applied where most service
// owners first meet robustness questions — an M/M/1 tier with uncertain
// demand (arrival rates) and uncertain capacity (service rates).
//
// The steady-state latency 1/(μ−λ) is nonlinear, so the engine's numeric
// boundary search does the work; the example cross-checks it against the
// exact line-distance closed forms and then sweeps demand toward capacity
// to show how the robustness radius — unlike the nominal latency — exposes
// the approaching cliff.
//
// Run with:
//
//	go run ./examples/queueing
package main

import (
	"fmt"
	"log"

	"fepia"
	"fepia/internal/mm1"
	"fepia/internal/report"
)

func main() {
	tier := &mm1.Tier{
		Stations: []mm1.Station{
			{Name: "api", Lambda: 50, Mu: 100},
			{Name: "db", Lambda: 30, Mu: 80},
		},
		MaxLatency: 0.1, // 100 ms SLO
		MaxUtil:    0.9,
	}
	if err := tier.Validate(); err != nil {
		log.Fatal(err)
	}
	a, err := tier.Analysis()
	if err != nil {
		log.Fatal(err)
	}

	// Engine (numeric tier) vs exact closed forms, per station.
	identity := fepia.Custom{Alphas: fepia.Vector{1, 1}, Label: "req/s"}
	tb := report.NewTable("Per-station joint (lambda, mu) robustness — engine vs closed form",
		"station", "engine rho (req/s)", "exact rho (req/s)")
	for i, st := range tier.Stations {
		rL, err := a.CombinedRadius(2*i, identity)
		if err != nil {
			log.Fatal(err)
		}
		rU, err := a.CombinedRadius(2*i+1, identity)
		if err != nil {
			log.Fatal(err)
		}
		engine := rL.Value
		if rU.Value < engine {
			engine = rU.Value
		}
		exact, err := tier.JointRadius(i)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(st.Name, engine, exact)
	}
	fmt.Print(tb.String())

	// Demand sweep: nominal latency vs robustness radius.
	fmt.Println()
	tb2 := report.NewTable("Demand sweep at mu=100 req/s (SLO: W <= 100ms, util <= 0.9)",
		"lambda", "nominal W (ms)", "rho (req/s)")
	for _, lam := range []float64{20, 40, 60, 75, 85} {
		t2 := &mm1.Tier{
			Stations:   []mm1.Station{{Name: "svc", Lambda: lam, Mu: 100}},
			MaxLatency: 0.1,
			MaxUtil:    0.9,
		}
		if err := t2.Validate(); err != nil {
			log.Fatal(err)
		}
		j, err := t2.JointRadius(0)
		if err != nil {
			log.Fatal(err)
		}
		tb2.AddRow(lam, 1000*mm1.Latency(lam, 100), j)
	}
	fmt.Print(tb2.String())
	fmt.Println("\nAt lambda=85 the nominal latency (67ms) still meets the 100ms SLO,")
	fmt.Println("but the robustness radius has collapsed to ~3.5 req/s: any modest")
	fmt.Println("joint drift of demand and capacity breaks the tier. The radius sees")
	fmt.Println("the cliff; the nominal number does not.")
}
