// HiPer-D: the paper's motivating scenario — a streaming sensor→application
// →actuator system whose execution times (seconds) AND message lengths
// (bytes) drift simultaneously.
//
// The example builds a synthetic HiPer-D system, runs the full mixed-kind
// FePIA analysis, and then *demonstrates* the robustness radius with the
// discrete-event simulator: operating points inside the radius simulate
// within QoS; the critical boundary point pushed beyond violates it.
//
// Run with:
//
//	go run ./examples/hiperd
package main

import (
	"fmt"
	"log"

	"fepia"
	"fepia/internal/report"
	"fepia/internal/stats"
	"fepia/internal/vec"
	"fepia/internal/workload"
)

func main() {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d applications on %d machines, %d messages, rate %.3g data sets/s\n",
		len(sys.Apps), len(sys.Machines), len(sys.MsgSizes), sys.Rate)
	fmt.Printf("QoS: every machine/link utilization <= 1, every path latency <= %.4gs\n\n", sys.LatencyMax)

	a, err := sys.Analysis()
	if err != nil {
		log.Fatal(err)
	}

	// Per-kind radii: seconds vs bytes — incomparable without P-space.
	tb := report.NewTable("Per-kind robustness (Eq. 1)", "perturbation", "rho", "unit")
	for j, p := range a.Params {
		r, err := a.RobustnessSingle(j)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(p.Name, r.Value, p.Unit)
	}
	fmt.Print(tb.String())

	rho, err := a.Robustness(fepia.Normalized{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined rho (normalized P-space) = %.5f\n", rho.Value)
	fmt.Printf("critical feature: %s\n\n", a.Features[rho.Critical].Name)

	// Demonstration by simulation.
	e0 := sys.OrigExecTimes()
	m0 := sys.OrigMsgSizes()
	nA := len(e0)
	pOrig := vec.Ones(a.TotalDim())
	src := stats.NewSource(17)

	tb2 := report.NewTable("Discrete-event validation", "operating point", "||P-P_orig||",
		"sim mean latency", "QoS (sim)")
	addRow := func(label string, p vec.V) {
		e := e0.Mul(p[:nA])
		m := m0.Mul(p[nA:])
		res, err := sys.Simulate(e, m, 300, 30)
		if err != nil {
			log.Fatal(err)
		}
		tb2.AddRow(label, p.Dist2(pOrig), res.MeanLatency, res.MaxLatency <= sys.LatencyMax)
	}
	addRow("nominal", pOrig)
	for trial := 0; trial < 3; trial++ {
		d := make(vec.V, a.TotalDim())
		for i := range d {
			d[i] = src.Normal(0, 1)
		}
		d = d.Normalize().Scale(rho.Value * 0.9)
		addRow(fmt.Sprintf("inside radius #%d", trial+1), pOrig.Add(d))
	}
	crit := rho.PerFeature[rho.Critical]
	addRow("20% beyond critical boundary", pOrig.Add(crit.Point.Sub(pOrig).Scale(1.2)))
	fmt.Print(tb2.String())

	fmt.Println("\nEvery point with ||P-P_orig|| < rho meets the QoS; past the")
	fmt.Println("critical boundary the guarantee — and here the system — breaks.")
}
