// Admission control: the operating-point recipe running in the loop a
// resource manager actually has — thousands of proposed operating points per
// second, each needing an instant "guaranteed safe?" verdict.
//
// The example compiles a Certifier for a HiPer-D analysis once, then streams
// random load proposals through it, tracking how many are certified, how
// many are declined, and — by evaluating the ground truth — that no
// certified point ever violates the QoS (the recipe's soundness guarantee).
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"
	"time"

	"fepia"
	"fepia/internal/stats"
	"fepia/internal/vec"
	"fepia/internal/workload"
)

func main() {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(21))
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Analysis()
	if err != nil {
		log.Fatal(err)
	}

	// One-time compilation: every combined radius, weighting scale, and
	// P-origin is precomputed.
	start := time.Now()
	cert, err := a.NewCertifier(fepia.Normalized{})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("certifier compiled in %v (rho = %.4f, %d features)\n\n",
		buildTime.Round(time.Microsecond), cert.Rho(), len(a.Features))

	// The admission loop.
	src := stats.NewSource(5)
	e0 := sys.OrigExecTimes()
	m0 := sys.OrigMsgSizes()
	const proposals = 20000
	var certified, declined, unsound int
	start = time.Now()
	for i := 0; i < proposals; i++ {
		// Each proposal drifts every parameter by up to ±40%.
		e := make(vec.V, len(e0))
		for k := range e {
			e[k] = e0[k] * src.Uniform(0.6, 1.4)
		}
		m := make(vec.V, len(m0))
		for k := range m {
			m[k] = m0[k] * src.Uniform(0.6, 1.4)
		}
		vals := []fepia.Vector{e, m}
		ok, err := cert.Check(vals)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			certified++
			if a.Violates(vals) {
				unsound++
			}
		} else {
			declined++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("proposals:       %d in %v (%.0f checks/sec)\n",
		proposals, elapsed.Round(time.Millisecond),
		float64(proposals)/elapsed.Seconds())
	fmt.Printf("certified safe:  %d\n", certified)
	fmt.Printf("declined:        %d (outside the worst-case radius; may still be feasible)\n", declined)
	fmt.Printf("unsound verdicts: %d (must be 0 — the recipe is a guarantee)\n", unsound)

	// Margin diagnostics for one borderline proposal.
	vals := []fepia.Vector{e0.Scale(1.05), m0.Scale(1.05)}
	margin, feat, err := cert.CriticalMargin(vals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexample proposal at +5%% everywhere: margin %.4f on feature %q\n",
		margin, a.Features[feat].Name)
	fmt.Println("(positive margin = inside every certified ball; the named feature is the tightest)")
}
