package fepia_test

// Chaos suite over the public API: under every injectable fault class —
// panicking impacts, NaN/Inf returns, slow impacts against deadlines,
// dimension-corrupted vectors — the fepia API must never panic, must return
// within its deadline, and must report the right typed error.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"fepia"
	"fepia/internal/chaos"
	"fepia/internal/vec"
)

func prod(vs []fepia.Vector) float64 { return vs[0][0] * vs[1][0] }

// faultyAnalysis builds a valid two-parameter numeric-tier analysis, then
// swaps in the fault-injected impact (post-validation, like a fault that
// develops at runtime).
func faultyAnalysis(t *testing.T, in *chaos.Injector) *fepia.Analysis {
	t.Helper()
	a, err := fepia.NewAnalysis(
		[]fepia.Feature{{Name: "phi", Bounds: fepia.MaxOnly(4), Impact: prod}},
		[]fepia.Perturbation{
			{Name: "x", Unit: "s", Orig: fepia.Vector{1}},
			{Name: "y", Unit: "b", Orig: fepia.Vector{1}},
		})
	if err != nil {
		t.Fatal(err)
	}
	a.Features[0].Impact = in.Wrap(prod)
	return a
}

// wantTyped maps each fault class to the sentinel the API must report.
var faultMatrix = []struct {
	fault chaos.Fault
	want  error
}{
	{chaos.PanicFault, fepia.ErrImpactPanic},
	{chaos.CorruptDimsFault, fepia.ErrImpactPanic},
	{chaos.NaNFault, fepia.ErrNumeric},
	{chaos.PosInfFault, fepia.ErrNumeric},
	{chaos.NegInfFault, fepia.ErrNumeric},
}

func TestPublicAPISurvivesEveryFault(t *testing.T) {
	for _, c := range faultMatrix {
		t.Run(c.fault.String(), func(t *testing.T) {
			calls := []struct {
				name string
				run  func(a *fepia.Analysis, ctx context.Context) error
			}{
				{"Robustness", func(a *fepia.Analysis, ctx context.Context) error {
					_, err := a.RobustnessCtx(ctx, fepia.Normalized{})
					return err
				}},
				{"RobustnessConcurrent", func(a *fepia.Analysis, ctx context.Context) error {
					_, err := a.RobustnessConcurrentCtx(ctx, fepia.Normalized{}, 4)
					return err
				}},
				{"RobustnessSingle", func(a *fepia.Analysis, ctx context.Context) error {
					_, err := a.RobustnessSingleCtx(ctx, 0)
					return err
				}},
				{"MonteCarlo", func(a *fepia.Analysis, ctx context.Context) error {
					_, err := a.MonteCarloCtx(ctx, fepia.MCOptions{Spread: 0.1, Samples: 64})
					return err
				}},
			}
			for _, call := range calls {
				in := &chaos.Injector{Fault: c.fault}
				a := faultyAnalysis(t, in)
				o := chaos.Probe(5*time.Second, time.Second, func(ctx context.Context) error {
					return call.run(a, ctx)
				})
				if o.Panicked() {
					t.Fatalf("%s under %s panicked: %v\n%s", call.name, c.fault, o.Panic, o.Stack)
				}
				if o.TimedOut {
					t.Fatalf("%s under %s hung", call.name, c.fault)
				}
				if !errors.Is(o.Err, c.want) {
					t.Fatalf("%s under %s: err = %v, want %v", call.name, c.fault, o.Err, c.want)
				}
			}
		})
	}
}

func TestPublicAPIDeadlineCompliance(t *testing.T) {
	in := &chaos.Injector{Fault: chaos.SlowFault, Delay: 5 * time.Millisecond}
	a := faultyAnalysis(t, in)
	o := chaos.Probe(30*time.Millisecond, 100*time.Millisecond, func(ctx context.Context) error {
		_, err := a.RobustnessCtx(ctx, fepia.Normalized{})
		return err
	})
	if o.TimedOut {
		t.Fatalf("RobustnessCtx overran a 30ms deadline by more than 100ms (elapsed %v)", o.Elapsed)
	}
	if !errors.Is(o.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", o.Err)
	}
}

func TestCancellableLatencyInjection(t *testing.T) {
	// The injected latency (chaos.Sleep bound to the probe context) dwarfs
	// both deadline and grace: the API can only come back in time because
	// the slow impact itself unblocks on cancellation — the behavior of a
	// production impact stuck on a cancellable downstream call. Contrast
	// with TestPublicAPIDeadlineCompliance, where the sleep ignores
	// cancellation and must be shorter than the grace.
	in := &chaos.Injector{Fault: chaos.SlowFault, Delay: time.Hour}
	a := faultyAnalysis(t, in)
	o := chaos.Probe(30*time.Millisecond, 2*time.Second, func(ctx context.Context) error {
		in.Ctx = ctx
		_, err := a.RobustnessCtx(ctx, fepia.Normalized{})
		return err
	})
	if o.Panicked() {
		t.Fatalf("panicked: %v\n%s", o.Panic, o.Stack)
	}
	if o.TimedOut {
		t.Fatalf("cancellable slow impact hung (elapsed %v)", o.Elapsed)
	}
	if !errors.Is(o.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", o.Err)
	}
}

func TestDegradedFallbackThroughPublicAPI(t *testing.T) {
	a, err := fepia.NewAnalysis(
		[]fepia.Feature{{Name: "phi", Bounds: fepia.MaxOnly(3), Impact: func(vs []fepia.Vector) float64 {
			x := vs[0][0]
			if x > 1.5 || x < -1.5 {
				return math.NaN()
			}
			return 2 * x
		}}},
		[]fepia.Perturbation{{Name: "x", Unit: "s", Orig: fepia.Vector{1}}})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.RobustnessWith(context.Background(), fepia.Normalized{},
		fepia.EvalOptions{DegradeOnNumeric: true, DegradeSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rho.Degraded {
		t.Fatal("fallback result not flagged Degraded")
	}
	if rho.Value <= 0.3 || rho.Value > 0.55 {
		t.Fatalf("degraded rho = %g, want an estimate near 0.5", rho.Value)
	}
}

func TestCertifierSurvivesCorruptOperatingPoints(t *testing.T) {
	a, err := fepia.NewAnalysis(
		[]fepia.Feature{{Name: "lat", Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}}}},
		[]fepia.Perturbation{
			{Name: "t", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "m", Unit: "b", Orig: fepia.Vector{4}},
		})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.NewCertifier(fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	good := []fepia.Vector{{1, 2}, {4}}
	corrupt := chaos.TruncateLastBlock([]vec.V{{1, 2}, {4}})
	bad := make([]fepia.Vector, len(corrupt))
	for i, v := range corrupt {
		bad[i] = fepia.Vector(v)
	}
	o := chaos.Probe(time.Second, time.Second, func(context.Context) error {
		if _, err := c.Check(bad); !errors.Is(err, fepia.ErrDimMismatch) {
			return err
		}
		if _, _, err := c.CriticalMargin(bad); !errors.Is(err, fepia.ErrDimMismatch) {
			return err
		}
		if _, err := a.Tolerable(bad, fepia.Normalized{}); !errors.Is(err, fepia.ErrDimMismatch) {
			return err
		}
		return nil
	})
	if o.Panicked() {
		t.Fatalf("corrupt operating point panicked the certifier: %v", o.Panic)
	}
	if o.Err != nil {
		t.Fatalf("corrupt point not reported as ErrDimMismatch: %v", o.Err)
	}
	ok, err := c.Check(good)
	if err != nil || !ok {
		t.Fatalf("healthy Check = %v, %v", ok, err)
	}
}
