package fepia_test

import (
	"context"
	"fmt"
	"math"
	"time"

	"fepia"
)

// Example demonstrates the complete FePIA workflow on the paper's central
// scenario: one feature over two perturbation parameters of different kinds.
func Example() {
	a, err := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec-times", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg-length", Unit: "bytes", Orig: fepia.Vector{4}},
		},
	)
	if err != nil {
		panic(err)
	}
	rho, err := a.Robustness(fepia.Normalized{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rho = %.4f (%s)\n", rho.Value, rho.Weighting)
	// Output:
	// rho = 0.6674 (normalized)
}

// ExampleSensitivityRadiusLinear shows the paper's Section 3.1 degeneracy:
// two completely different systems score identically under sensitivity
// weighting.
func ExampleSensitivityRadiusLinear() {
	sysA, _ := fepia.LinearOneElemAnalysis(fepia.Vector{1, 1}, fepia.Vector{1, 1}, 1.1)
	sysB, _ := fepia.LinearOneElemAnalysis(fepia.Vector{10, 0.1}, fepia.Vector{5, 500}, 3.0)
	rA, _ := sysA.CombinedRadius(0, fepia.Sensitivity{})
	rB, _ := sysB.CombinedRadius(0, fepia.Sensitivity{})
	fmt.Printf("A: %.6f  B: %.6f  1/sqrt(2): %.6f\n",
		rA.Value, rB.Value, fepia.SensitivityRadiusLinear(2))
	// Output:
	// A: 0.707107  B: 0.707107  1/sqrt(2): 0.707107
}

// ExampleNormalizedRadiusLinear shows the paper's Section 3.2 repair: the
// same two systems are now distinguishable.
func ExampleNormalizedRadiusLinear() {
	rA, _ := fepia.NormalizedRadiusLinear(fepia.Vector{1, 1}, fepia.Vector{1, 1}, 1.1)
	rB, _ := fepia.NormalizedRadiusLinear(fepia.Vector{10, 0.1}, fepia.Vector{5, 500}, 3.0)
	fmt.Printf("A: %.4f  B: %.4f\n", rA, rB)
	// Output:
	// A: 0.1414  B: 2.8284
}

// ExampleAnalysis_Tolerable applies the paper's operating-point recipe.
func ExampleAnalysis_Tolerable() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec-times", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg-length", Unit: "bytes", Orig: fepia.Vector{4}},
		},
	)
	small, _ := a.Tolerable([]fepia.Vector{{1.05, 2.05}, {4.1}}, fepia.Normalized{})
	large, _ := a.Tolerable([]fepia.Vector{{2.5, 4.0}, {9.0}}, fepia.Normalized{})
	fmt.Printf("small drift tolerable: %v, large drift tolerable: %v\n", small, large)
	// Output:
	// small drift tolerable: true, large drift tolerable: false
}

// ExampleAnalysis_RadiusSingle computes Eq. 1 per perturbation kind; the
// values carry the kinds' own units and are not mutually comparable — the
// problem the combined P-space solves.
func ExampleAnalysis_RadiusSingle() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec-times", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg-length", Unit: "bytes", Orig: fepia.Vector{4}},
		},
	)
	rExec, _ := a.RadiusSingle(0, 0)
	rMsg, _ := a.RadiusSingle(0, 1)
	fmt.Printf("exec: %.4f s, msg: %.4f bytes\n", rExec.Value, rMsg.Value)
	// Output:
	// exec: 3.8829 s, msg: 2.8000 bytes
}

// ExampleAnalysis_MonteCarlo contrasts the worst-case radius with the
// probability of violation under random drift.
func ExampleAnalysis_MonteCarlo() {
	a, _ := fepia.LinearOneElemAnalysis(fepia.Vector{2, 3}, fepia.Vector{1, 2}, 1.5)
	rho, _ := a.Robustness(fepia.Normalized{})
	inside, _ := a.MonteCarlo(fepia.MCOptions{
		Model: fepia.MCUniformBall, Spread: rho.Value * 0.99, Samples: 2000, Seed: 1,
	})
	outside, _ := a.MonteCarlo(fepia.MCOptions{
		Model: fepia.MCUniformBall, Spread: rho.Value * 3, Samples: 2000, Seed: 1,
	})
	fmt.Printf("violations inside the certified ball: %d\n", inside.Violations)
	fmt.Printf("violations at 3x the radius: > 0: %v\n", outside.Violations > 0)
	// Output:
	// violations inside the certified ball: 0
	// violations at 3x the radius: > 0: true
}

// ExampleAnalysis_RadiusSingleNorm computes the radius under the three
// supported norms; the dual-norm ordering r_l1 >= r_l2 >= r_linf always
// holds.
func ExampleAnalysis_RadiusSingleNorm() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "load",
			Bounds: fepia.MaxOnly(22),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}}},
		}},
		[]fepia.Perturbation{{Name: "exec", Unit: "s", Orig: fepia.Vector{1, 2}}},
	)
	r1, _ := a.RadiusSingleNorm(0, 0, fepia.L1)
	r2, _ := a.RadiusSingleNorm(0, 0, fepia.L2)
	rInf, _ := a.RadiusSingleNorm(0, 0, fepia.LInf)
	fmt.Printf("l1: %.4f >= l2: %.4f >= linf: %.4f\n", r1.Value, r2.Value, rInf.Value)
	ordered := r1.Value >= r2.Value && r2.Value >= rInf.Value
	fmt.Println("ordered:", ordered)
	// Output:
	// l1: 4.6667 >= l2: 3.8829 >= linf: 2.8000
	// ordered: true
}

// ExampleQuadImpact uses the exact ellipsoid tier for a quadratic feature
// (e.g. dynamic power ~ frequency^2).
func ExampleQuadImpact() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "power",
			Bounds: fepia.MaxOnly(9), // watts budget
			Quad: &fepia.QuadImpact{
				A: []fepia.Vector{{1, 1}}, // watts per GHz^2, two cores
				C: []fepia.Vector{{0, 0}},
			},
		}},
		[]fepia.Perturbation{{Name: "freqs", Unit: "GHz", Orig: fepia.Vector{1, 1}}},
	)
	r, _ := a.RadiusSingle(0, 0)
	fmt.Printf("radius: %.6f (analytic: %v)\n", r.Value, r.Analytic)
	fmt.Printf("equals 3 - sqrt(2): %v\n", math.Abs(r.Value-(3-math.Sqrt2)) < 1e-9)
	// Output:
	// radius: 1.585786 (analytic: true)
	// equals 3 - sqrt(2): true
}

// ExampleAnalysis_NewCertifier compiles the operating-point recipe once and
// reuses it — the admission-control fast path.
func ExampleAnalysis_NewCertifier() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg", Unit: "bytes", Orig: fepia.Vector{4}},
		},
	)
	cert, _ := a.NewCertifier(fepia.Normalized{})
	ok1, _ := cert.Check([]fepia.Vector{{1.1, 2.1}, {4.2}})
	ok2, _ := cert.Check([]fepia.Vector{{3, 6}, {12}})
	fmt.Printf("small drift: %v, tripled everything: %v\n", ok1, ok2)
	// Output:
	// small drift: true, tripled everything: false
}

// ExampleAnalysis_DirectionalRadius measures the slack along a known drift
// direction — e.g. "execution times only ever grow, together".
func ExampleAnalysis_DirectionalRadius() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "load",
			Bounds: fepia.MaxOnly(22),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}}},
		}},
		[]fepia.Perturbation{{Name: "exec", Unit: "s", Orig: fepia.Vector{1, 2}}},
	)
	worst, _ := a.RadiusSingle(0, 0)
	along, _ := a.DirectionalRadius(0, 0, fepia.Vector{1, 1})
	dir, _ := a.CriticalDirection(0, 0)
	fmt.Printf("worst-case radius: %.4f\n", worst.Value)
	fmt.Printf("slack along (1,1): %.4f (>= worst case)\n", along)
	fmt.Printf("critical direction: [%.4f %.4f]\n", dir[0], dir[1])
	// Output:
	// worst-case radius: 3.8829
	// slack along (1,1): 3.9598 (>= worst case)
	// critical direction: [0.5547 0.8321]
}

// ExampleAnalysis_RobustnessConcurrentCtx evaluates the per-feature radii
// on a GOMAXPROCS-independent worker pool under a deadline: the context is
// checked before every impact evaluation, so a timeout aborts the analysis
// within one evaluation of the slowest impact function.
func ExampleAnalysis_RobustnessConcurrentCtx() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg", Unit: "bytes", Orig: fepia.Vector{4}},
		},
	)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rho, err := a.RobustnessConcurrentCtx(ctx, fepia.Normalized{}, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rho = %.4f (%s)\n", rho.Value, rho.Weighting)
	// Output:
	// rho = 0.6674 (normalized)
}

// ExampleAnalysis_RobustnessBatch evaluates one analysis under several
// weightings on the shared batch pool — with the impact cache enabled, the
// weightings reuse each other's impact evaluations.
func ExampleAnalysis_RobustnessBatch() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg", Unit: "KB", Orig: fepia.Vector{4}},
		},
	)
	a.EnableImpactCache(0) // memoize impact evaluations across the batch
	ws := []fepia.Weighting{
		fepia.Normalized{},
		fepia.Custom{Alphas: fepia.Vector{1, 1}, Label: "seconds-equal-KB"},
	}
	results, errs := a.RobustnessBatch(ws, fepia.EvalOptions{})
	for i, rho := range results {
		if errs[i] != nil {
			panic(errs[i])
		}
		fmt.Printf("%s: rho = %.4f\n", rho.Weighting, rho.Value)
	}
	// Output:
	// normalized: rho = 0.6674
	// seconds-equal-KB: rho = 2.2711
}

// ExampleRobustnessBatch ranks candidate resource allocations by evaluating
// them together on one worker pool — the throughput path for optimization
// sweeps, where each candidate is one BatchItem.
func ExampleRobustnessBatch() {
	sysA, _ := fepia.LinearOneElemAnalysis(fepia.Vector{1, 1}, fepia.Vector{1, 1}, 1.1)
	sysB, _ := fepia.LinearOneElemAnalysis(fepia.Vector{10, 0.1}, fepia.Vector{5, 500}, 3.0)
	results, errs := fepia.RobustnessBatch(context.Background(), []fepia.BatchItem{
		{A: sysA, W: fepia.Normalized{}},
		{A: sysB, W: fepia.Normalized{}},
	}, fepia.EvalOptions{})
	for i, rho := range results {
		if errs[i] != nil {
			panic(errs[i])
		}
		fmt.Printf("candidate %c: rho = %.4f\n", 'A'+i, rho.Value)
	}
	// Output:
	// candidate A: rho = 0.1414
	// candidate B: rho = 2.8284
}

// ExampleCustom uses the paper's general weighted concatenation with
// caller-chosen unit-conversion constants.
func ExampleCustom() {
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg", Unit: "KB", Orig: fepia.Vector{4}},
		},
	)
	// "One second of drift counts like one kilobyte of drift."
	w := fepia.Custom{Alphas: fepia.Vector{1, 1}, Label: "seconds-equal-KB"}
	rho, _ := a.Robustness(w)
	fmt.Printf("rho = %.4f under %s\n", rho.Value, rho.Weighting)
	// Output:
	// rho = 2.2711 under seconds-equal-KB
}

// ExampleAnalysis_EnableWarmStart reuses the converged search state of one
// robustness evaluation to accelerate the next. On a frozen analysis the
// warm repeat is bit-identical to the cold run — the replayed trajectory
// is revalidated value by value, and any mismatch falls back to a cold
// search — just cheaper.
func ExampleAnalysis_EnableWarmStart() {
	curv := fepia.Vector{1, 0.5}
	// Quadratic impact deliberately not declared Quad, so radii go through
	// the numeric level-set search warm starts accelerate.
	impact := func(vs []fepia.Vector) float64 {
		s := 0.5
		for e := range curv {
			d := vs[0][e] - 0.1
			s += curv[e] * d * d
		}
		return s
	}
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{Name: "quad", Bounds: fepia.MaxOnly(9), Impact: impact}},
		[]fepia.Perturbation{{Name: "u", Orig: fepia.Vector{1, 0.6}}},
	)
	a.EnableWarmStart()

	cold, _ := a.Robustness(fepia.Normalized{})
	warm, _ := a.Robustness(fepia.Normalized{})
	st := a.WarmStats()
	fmt.Printf("rho = %.4f\n", cold.Value)
	fmt.Printf("warm repeat bit-identical: %v\n",
		math.Float64bits(warm.Value) == math.Float64bits(cold.Value))
	fmt.Printf("reused recorded state: %v, invalidations: %d\n",
		st.RayReuses+st.MemoHits > 0, st.Invalidations)
	// Output:
	// rho = 1.9909
	// warm repeat bit-identical: true
	// reused recorded state: true, invalidations: 0
}

// ExampleAnalysis_RobustnessWith demonstrates the k-probe vectorized path:
// the feature carries an ImpactK kernel evaluating a whole block of
// boundary probes per call (over the concatenated native vector), and
// EvalOptions.KProbe lets the numeric search batch 8 probes at a time.
// Probe positions are unchanged, so the result is bit-identical to the
// scalar path — only the call granularity differs. Features built by the
// scenario layer carry these kernels automatically.
func ExampleAnalysis_RobustnessWith() {
	curv := fepia.Vector{1, 0.5}
	impact := func(vs []fepia.Vector) float64 {
		s := 0.5
		for e := range curv {
			d := vs[0][e] - 0.1
			s += curv[e] * d * d
		}
		return s
	}
	impactK := func(probes []fepia.Vector, out []float64) {
		for p, v := range probes {
			s := 0.5
			for e := range curv {
				d := v[e] - 0.1
				s += curv[e] * d * d
			}
			out[p] = s
		}
	}
	a, _ := fepia.NewAnalysis(
		[]fepia.Feature{{Name: "quad", Bounds: fepia.MaxOnly(9),
			Impact: impact, ImpactK: impactK}},
		[]fepia.Perturbation{{Name: "u", Orig: fepia.Vector{1, 0.6}}},
	)

	ctx := context.Background()
	scalar, _ := a.RobustnessWith(ctx, fepia.Normalized{}, fepia.EvalOptions{})
	batched, _ := a.RobustnessWith(ctx, fepia.Normalized{}, fepia.EvalOptions{KProbe: 8})
	fmt.Printf("rho = %.4f\n", scalar.Value)
	fmt.Printf("k-probe bit-identical: %v\n",
		math.Float64bits(batched.Value) == math.Float64bits(scalar.Value))
	// Output:
	// rho = 1.9909
	// k-probe bit-identical: true
}
