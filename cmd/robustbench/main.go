// Command robustbench regenerates every reproduction artifact (experiments
// E1–E8 of DESIGN.md): the Figure-1 geometry, the Section 3.1 closed forms
// and degeneracy, the Section 3.2 normalized metric, the operating-point
// recipe validation, the HiPer-D mixed-kind analysis with DES
// cross-validation, the heuristic ranking, and the weighting ablation.
//
// Usage:
//
//	robustbench [-run E3] [-seed 1] [-quick] [-csv dir]
//	robustbench -bench-json BENCH_new.json [-bench-compare BENCH_baseline.json]
//	robustbench -oracle [-oracle-cases 500] [-oracle-seed 1] [-oracle-json out.json]
//
// Without -run, all experiments execute in order. -csv writes each table as
// a CSV file into the given directory. -bench-json additionally times every
// experiment (wall clock plus heap-allocation deltas) and writes the
// machine-readable benchmark artifact described in docs/performance.md;
// -bench-compare checks those timings against a baseline file and reports
// entries that slowed down by more than -bench-tolerance.
//
// -oracle runs the differential correctness oracle (internal/oracle): it
// generates -oracle-cases randomized analysis instances, evaluates every
// robustness radius through all evaluation tiers, and checks pairwise tier
// agreement plus the paper's metamorphic invariants, minimizing a
// counterexample for any failure. With no -run and no bench flags, -oracle
// runs alone; otherwise it runs after the experiments and the benchmark
// comparison, so one CI invocation can gate on both.
//
// Exit status: 1 if any reproduction check fails, 2 for an unknown
// experiment, 3 if the benchmark comparison flags a regression, and 4 if
// the correctness oracle found discrepancies (a bench regression takes
// precedence over an oracle failure when both occur).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"fepia/internal/exper"
	"fepia/internal/oracle"
	"fepia/internal/stats"
)

func main() {
	run := flag.String("run", "", "run a single experiment by ID (e.g. E3); default all")
	seed := flag.Int64("seed", 1, "base seed for every random stream")
	quick := flag.Bool("quick", false, "shrink sweep sizes for a fast smoke run")
	csvDir := flag.String("csv", "", "also write every table as CSV into this directory")
	mdDir := flag.String("md", "", "also write every table as Markdown into this directory")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited), e.g. 5m")
	benchJSON := flag.String("bench-json", "", "write per-experiment timings and allocation counts to this JSON file")
	benchCompare := flag.String("bench-compare", "", "compare the timings against this baseline JSON file and flag regressions")
	benchTol := flag.Float64("bench-tolerance", 0.20, "fractional slowdown that counts as a regression for -bench-compare")
	benchCount := flag.Int("bench-count", 1, "repetitions per experiment in bench mode; the minimum wall time is reported")
	oracleMode := flag.Bool("oracle", false, "run the differential correctness oracle across all evaluation tiers")
	oracleCases := flag.Int("oracle-cases", 200, "number of generated instances the oracle checks")
	oracleSeed := flag.Int64("oracle-seed", 1, "first oracle instance seed; case c uses seed+c")
	oracleJSON := flag.String("oracle-json", "", "write the oracle discrepancy report as JSON to this file")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	bench := *benchJSON != "" || *benchCompare != ""

	cfg := exper.Config{Seed: *seed, Quick: *quick, Ctx: ctx}
	var exps []exper.Experiment
	if *oracleMode && *run == "" && !bench {
		// Oracle-only invocation: nothing selected the experiments, so skip
		// them (CI runs the oracle as its own job).
	} else if *run != "" {
		e, ok := exper.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "robustbench: unknown experiment %q; known:", *run)
			for _, e := range exper.All() {
				fmt.Fprintf(os.Stderr, " %s", e.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		exps = []exper.Experiment{e}
	} else {
		exps = exper.All()
	}

	for _, dir := range []string{*csvDir, *mdDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
	}

	var entries []stats.BenchEntry

	failed := false
	for _, e := range exps {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: budget exhausted before %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    regenerates: %s\n\n", e.Artifact)
		var before runtime.MemStats
		var start time.Time
		if bench {
			runtime.ReadMemStats(&before)
			start = time.Now()
		}
		res, err := e.Run(cfg)
		if bench && err == nil {
			wall := time.Since(start)
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			entry := stats.BenchEntry{
				Name:       e.ID,
				WallNanos:  wall.Nanoseconds(),
				AllocBytes: after.TotalAlloc - before.TotalAlloc,
				Allocs:     after.Mallocs - before.Mallocs,
			}
			// Extra repetitions damp scheduler jitter: the minimum wall
			// time is the best estimate of the experiment's intrinsic cost.
			for rep := 1; rep < *benchCount; rep++ {
				start = time.Now()
				if _, rerr := e.Run(cfg); rerr != nil {
					break
				}
				if w := time.Since(start).Nanoseconds(); w < entry.WallNanos {
					entry.WallNanos = w
				}
			}
			entries = append(entries, entry)
		}
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "robustbench: %s aborted, -timeout budget exhausted: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "robustbench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for ti, tb := range res.Tables {
			if err := tb.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			}
			fmt.Println()
			if *csvDir != "" {
				name := filepath.Join(*csvDir, fmt.Sprintf("%s-table%d.csv", strings.ToLower(e.ID), ti+1))
				if err := writeFile(name, tb.WriteCSV); err != nil {
					fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
				}
			}
			if *mdDir != "" {
				name := filepath.Join(*mdDir, fmt.Sprintf("%s-table%d.md", strings.ToLower(e.ID), ti+1))
				if err := writeFile(name, tb.WriteMarkdown); err != nil {
					fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
				}
			}
		}
		for _, p := range res.Plots {
			if err := p.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			}
			fmt.Println()
		}
		for _, n := range res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		for _, c := range res.Checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
				failed = true
			}
			fmt.Printf("check [%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}

	regressed := false
	if bench {
		var err error
		regressed, err = runBench(entries, *seed, *quick, *benchJSON, *benchCompare, *benchTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
	}

	dirty := false
	if *oracleMode {
		var err error
		dirty, err = runOracle(ctx, *oracleCases, *oracleSeed, *oracleJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
	}

	switch {
	case regressed:
		os.Exit(3)
	case dirty:
		os.Exit(4)
	}
}

// runOracle runs the differential correctness oracle and reports whether it
// found discrepancies (exit status 4). The JSON artifact carries the full
// report including the minimized reproducer specs.
func runOracle(ctx context.Context, cases int, seed int64, jsonPath string) (dirty bool, err error) {
	rep := oracle.Fuzz(cases, seed, oracle.Options{Ctx: ctx})
	rep.WriteText(os.Stdout)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return !rep.Clean(), err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return !rep.Clean(), err
		}
		fmt.Printf("oracle: wrote report to %s\n", jsonPath)
	}
	return !rep.Clean(), nil
}

// runBench writes the timing artifact and/or compares it against a
// baseline, printing every matched entry and flagging regressions. A flagged
// regression makes the process exit with status 3, distinct from a
// reproduction failure.
func runBench(entries []stats.BenchEntry, seed int64, quick bool, jsonPath, comparePath string, tol float64) (regressed bool, err error) {
	cur := stats.BenchFile{
		Schema:    stats.BenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Seed:      seed,
		Quick:     quick,
		Entries:   entries,
	}
	if jsonPath != "" {
		if err := stats.WriteBench(jsonPath, cur); err != nil {
			return false, err
		}
		fmt.Printf("bench: wrote %d entries to %s\n", len(entries), jsonPath)
	}
	if comparePath == "" {
		return false, nil
	}
	base, err := stats.LoadBench(comparePath)
	if err != nil {
		return false, err
	}
	if base.Quick != cur.Quick {
		fmt.Fprintf(os.Stderr, "bench: warning: baseline quick=%v but this run quick=%v — timings are not comparable\n",
			base.Quick, cur.Quick)
	}
	deltas := stats.CompareBench(base, cur, stats.CompareOpts{Tolerance: tol})
	for _, d := range deltas {
		mark := "ok  "
		if d.Regression {
			mark = "SLOW"
		}
		fmt.Printf("bench [%s] %-6s %12v -> %12v  (x%.2f)\n",
			mark, d.Name, time.Duration(d.OldNanos), time.Duration(d.NewNanos), d.Ratio)
	}
	if reg := stats.Regressions(deltas); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d entr%s regressed beyond %.0f%% vs %s\n",
			len(reg), map[bool]string{true: "y", false: "ies"}[len(reg) == 1], tol*100, comparePath)
		return true, nil
	}
	fmt.Printf("bench: no regression beyond %.0f%% vs %s\n", tol*100, comparePath)
	return false, nil
}

// writeFile creates name and streams one table rendering into it.
func writeFile(name string, render func(io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}
