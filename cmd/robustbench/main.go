// Command robustbench regenerates every reproduction artifact (experiments
// E1–E8 of DESIGN.md): the Figure-1 geometry, the Section 3.1 closed forms
// and degeneracy, the Section 3.2 normalized metric, the operating-point
// recipe validation, the HiPer-D mixed-kind analysis with DES
// cross-validation, the heuristic ranking, and the weighting ablation.
//
// Usage:
//
//	robustbench [-run E3] [-seed 1] [-quick] [-csv dir]
//
// Without -run, all experiments execute in order. -csv writes each table as
// a CSV file into the given directory. The process exits non-zero if any
// reproduction check fails.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fepia/internal/exper"
)

func main() {
	run := flag.String("run", "", "run a single experiment by ID (e.g. E3); default all")
	seed := flag.Int64("seed", 1, "base seed for every random stream")
	quick := flag.Bool("quick", false, "shrink sweep sizes for a fast smoke run")
	csvDir := flag.String("csv", "", "also write every table as CSV into this directory")
	mdDir := flag.String("md", "", "also write every table as Markdown into this directory")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited), e.g. 5m")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := exper.Config{Seed: *seed, Quick: *quick, Ctx: ctx}
	var exps []exper.Experiment
	if *run != "" {
		e, ok := exper.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "robustbench: unknown experiment %q; known:", *run)
			for _, e := range exper.All() {
				fmt.Fprintf(os.Stderr, " %s", e.ID)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		exps = []exper.Experiment{e}
	} else {
		exps = exper.All()
	}

	for _, dir := range []string{*csvDir, *mdDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, e := range exps {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "robustbench: budget exhausted before %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("    regenerates: %s\n\n", e.Artifact)
		res, err := e.Run(cfg)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "robustbench: %s aborted, -timeout budget exhausted: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "robustbench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for ti, tb := range res.Tables {
			if err := tb.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			}
			fmt.Println()
			if *csvDir != "" {
				name := filepath.Join(*csvDir, fmt.Sprintf("%s-table%d.csv", strings.ToLower(e.ID), ti+1))
				if err := writeFile(name, tb.WriteCSV); err != nil {
					fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
				}
			}
			if *mdDir != "" {
				name := filepath.Join(*mdDir, fmt.Sprintf("%s-table%d.md", strings.ToLower(e.ID), ti+1))
				if err := writeFile(name, tb.WriteMarkdown); err != nil {
					fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
				}
			}
		}
		for _, p := range res.Plots {
			if err := p.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "robustbench: %v\n", err)
			}
			fmt.Println()
		}
		for _, n := range res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		for _, c := range res.Checks {
			mark := "PASS"
			if !c.Pass {
				mark = "FAIL"
				failed = true
			}
			fmt.Printf("check [%s] %s — %s\n", mark, c.Name, c.Detail)
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// writeFile creates name and streams one table rendering into it.
func writeFile(name string, render func(io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}
