package main

import (
	"net/http"
	"strings"
	"testing"

	"fepia/internal/server"
)

// TestNonOKReport pins the one failure-rendering path every subcommand
// shares: exit-code mapping, and the Retry-After hint on 429 regardless of
// whether the serving path put it in the header, the body, or both.
func TestNonOKReport(t *testing.T) {
	// hdr builds a header with canonicalized keys (a literal map would
	// bypass the canonicalization Get relies on).
	hdr := func(kv ...string) http.Header {
		h := http.Header{}
		for i := 0; i < len(kv); i += 2 {
			h.Set(kv[i], kv[i+1])
		}
		return h
	}
	cases := []struct {
		name     string
		status   int
		text     string
		hdr      http.Header
		body     string
		wantCode int
		want     []string
		wantNot  []string
	}{
		{
			name:   "shed-header",
			status: http.StatusTooManyRequests, text: "429 Too Many Requests",
			hdr:      hdr("Retry-After", "2", server.HeaderRequestID, "rid-1", server.HeaderTenant, "acme"),
			body:     `{"error":"overloaded","kind":"overloaded"}`,
			wantCode: exitShed,
			want:     []string{"retry after 2s", "[tenant acme]", "rid-1"},
		},
		{
			name:   "shed-body-fallback",
			status: http.StatusTooManyRequests, text: "429 Too Many Requests",
			hdr:      http.Header{},
			body:     `{"error":"tenant default over its watch quota","kind":"tenant-quota","requestId":"rid-2","retryAfterMs":1500,"tenant":"default"}`,
			wantCode: exitShed,
			want:     []string{"retry after 2s", "[tenant default]", "rid-2"},
		},
		{
			name:   "shed-header-wins-over-body",
			status: http.StatusTooManyRequests, text: "429 Too Many Requests",
			hdr:      http.Header{"Retry-After": {"7"}},
			body:     `{"retryAfterMs":1000,"tenant":"bulk"}`,
			wantCode: exitShed,
			want:     []string{"retry after 7s", "[tenant bulk]"},
			wantNot:  []string{"retry after 1s"},
		},
		{
			name:   "shed-no-hint",
			status: http.StatusTooManyRequests, text: "429 Too Many Requests",
			hdr:      http.Header{},
			body:     `{"error":"overloaded"}`,
			wantCode: exitShed,
			wantNot:  []string{"retry after", "tenant"},
		},
		{
			name:   "shed-non-json-body",
			status: http.StatusTooManyRequests, text: "429 Too Many Requests",
			hdr:      http.Header{"Retry-After": {"1"}},
			body:     "slow down",
			wantCode: exitShed,
			want:     []string{"retry after 1s"},
		},
		{
			name:   "draining",
			status: http.StatusServiceUnavailable, text: "503 Service Unavailable",
			hdr:      hdr(server.HeaderRequestID, "rid-3"),
			body:     `{"error":"server is draining","kind":"draining"}`,
			wantCode: exitDrain,
			want:     []string{"try another node", "rid-3"},
		},
		{
			name:   "server-error",
			status: http.StatusInternalServerError, text: "500 Internal Server Error",
			hdr:      http.Header{},
			body:     `{"error":"boom","requestId":"rid-4"}`,
			wantCode: exitError,
			want:     []string{"rid-4"},
		},
		{
			name:   "not-found",
			status: http.StatusNotFound, text: "404 Not Found",
			hdr:      http.Header{},
			body:     `{"error":"unknown watch id","kind":"watch-not-found"}`,
			wantCode: exitError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg, code := nonOKReport(tc.status, tc.text, tc.hdr, []byte(tc.body))
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d (msg %q)", code, tc.wantCode, msg)
			}
			for _, sub := range tc.want {
				if !strings.Contains(msg, sub) {
					t.Fatalf("message %q missing %q", msg, sub)
				}
			}
			for _, sub := range tc.wantNot {
				if strings.Contains(msg, sub) {
					t.Fatalf("message %q must not contain %q", msg, sub)
				}
			}
		})
	}
}
