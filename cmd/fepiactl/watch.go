package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"fepia/internal/scenario"
	"fepia/internal/server"
)

// runWatch dispatches the watch subcommands. open streams the server's SSE
// bytes to stdout verbatim — two captures of the same watch can be diffed
// directly, which is how the resume contract is checked in CI.
func runWatch(client *transport, base string, hdr headers, args []string) {
	if len(args) < 1 {
		fmt.Fprintf(os.Stderr, "fepiactl: usage: watch open|update|close [flags]\n")
		os.Exit(exitUsage)
	}
	switch sub := args[0]; sub {
	case "open":
		watchOpen(client, base, hdr, args[1:])
	case "update":
		watchUpdate(client, base, hdr, args[1:])
	case "close":
		watchClose(client, base, hdr, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "fepiactl: unknown watch subcommand %q (want open, update, or close)\n", sub)
		os.Exit(exitUsage)
	}
}

// watchOpen creates a watch (-f carries the scenario) or resubscribes to an
// existing one (bare -id, optionally -after), then streams until the server
// or the operator ends it. The call gets exactly one attempt: a blind
// re-send after an ambiguous create failure would collide with the watch
// the first attempt may already have registered.
func watchOpen(client *transport, base string, hdr headers, args []string) {
	fs := flag.NewFlagSet("watch open", flag.ExitOnError)
	id := fs.String("id", "", "watch id (required to resubscribe; a new watch defaults to its request id)")
	file := fs.String("f", "", "scenario AnalysisDoc JSON file (\"-\" = stdin); omit to resubscribe to -id")
	weighting := fs.String("weighting", "", "weighting for a new watch: normalized (default), unweighted, or sensitivity")
	after := fs.Uint64("after", 0, "replay only events with seq greater than this (0 = the full journal)")
	fs.Parse(args)

	req := server.WatchRequest{ID: *id, Weighting: *weighting, After: *after}
	if *file != "" {
		raw, err := readRequest(*file)
		if err != nil {
			fatal(err)
		}
		var doc scenario.AnalysisDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			fatal(fmt.Errorf("%s: %w", *file, err))
		}
		req.Scenario = &doc
	} else if *id == "" {
		fmt.Fprintf(os.Stderr, "fepiactl: watch open needs -f FILE (create) or -id ID (resubscribe)\n")
		os.Exit(exitUsage)
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}

	// A dedicated client: the global -timeout is a request budget, and a
	// healthy stream is open indefinitely.
	httpReq, err := http.NewRequest(http.MethodPost, base+"/v1/watch", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	hdr.apply(httpReq)
	resp, err := (&http.Client{}).Do(httpReq)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		data, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			fatal(rerr)
		}
		printJSON(data)
		exitForStatus(resp, data)
	}
	// Pass the SSE bytes through untouched. A server-side close or drain
	// ends the stream cleanly; anything else is a transport failure.
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fatal(err)
	}
}

// watchUpdate posts one absolute parameter update. Updates carry absolute
// origins and are idempotent, so the normal retry budget applies.
func watchUpdate(client *transport, base string, hdr headers, args []string) {
	fs := flag.NewFlagSet("watch update", flag.ExitOnError)
	id := fs.String("id", "", "watch id (required)")
	file := fs.String("f", "-", "absolute parameter origins as [][]float64 JSON (\"-\" = stdin)")
	fs.Parse(args)
	if *id == "" {
		fmt.Fprintf(os.Stderr, "fepiactl: watch update needs -id ID\n")
		os.Exit(exitUsage)
	}
	raw, err := readRequest(*file)
	if err != nil {
		fatal(err)
	}
	var params [][]float64
	if err := json.Unmarshal(raw, &params); err != nil {
		fatal(fmt.Errorf("%s: %w", *file, err))
	}
	body, err := json.Marshal(server.WatchUpdateRequest{Watch: *id, Params: params})
	if err != nil {
		fatal(err)
	}
	resp, err := post(client, base+"/v1/watch/update", body, hdr)
	if err != nil {
		fatal(err)
	}
	finish(resp)
}

// watchClose ends a watch. One attempt: a retried close after a success
// would read as a spurious not-found.
func watchClose(client *transport, base string, hdr headers, args []string) {
	fs := flag.NewFlagSet("watch close", flag.ExitOnError)
	id := fs.String("id", "", "watch id (required)")
	fs.Parse(args)
	if *id == "" {
		fmt.Fprintf(os.Stderr, "fepiactl: watch close needs -id ID\n")
		os.Exit(exitUsage)
	}
	body, err := json.Marshal(server.WatchCloseRequest{Watch: *id})
	if err != nil {
		fatal(err)
	}
	resp, err := post(client.once(), base+"/v1/watch/close", body, hdr)
	if err != nil {
		fatal(err)
	}
	finish(resp)
}
