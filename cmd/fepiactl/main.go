// Command fepiactl is a small operator CLI for fepiad daemons (workers and
// coordinators alike — they speak the same API).
//
// Usage:
//
//	fepiactl [-addr http://localhost:8080] [-timeout 2m] [-request-id ID]
//	         [-tenant NAME] [-retries 2] <command> [args]
//
// Commands:
//
//	health               GET /healthz
//	ready                GET /readyz (exit 1 when not ready)
//	statz                GET /statz
//	metrics              GET /metrics (Prometheus text format)
//	tenants              the per-tenant admission section of /statz
//	robustness [-f FILE] POST /v1/robustness with the request JSON from FILE ("-" = stdin)
//	radius     [-f FILE] POST /v1/radius
//	batch      [-f FILE] POST /v1/batch
//	search     [flags]   POST /v1/search — robustness-aware allocation search.
//	                     Either -f FILE ships a full SearchRequest JSON, or
//	                     -instance FILE (a makespan document, the format
//	                     `rank -save` writes) composes one with -algo,
//	                     -objective, -tau, -bound, -rho-min, -seed, -steps,
//	                     -population, -generations, -search-id, -search-timeout.
//	                     -resume ID instead continues a checkpointed search on
//	                     a -state-dir daemon (only -search-timeout may ride
//	                     along, overriding the stored deadline)
//	watch open [flags]   POST /v1/watch — open (or resubscribe to) a live
//	                     watch and stream its SSE events to stdout verbatim.
//	                     -f FILE ships the AnalysisDoc for a new watch
//	                     ("-" = stdin); a bare -id ID resubscribes, with
//	                     -after N skipping acknowledged events. -weighting
//	                     picks the weighting for a new watch.
//	watch update [flags] POST /v1/watch/update — -id ID plus -f FILE holding
//	                     the absolute parameter origins ([][]float64).
//	                     Updates are idempotent: re-sending one is an
//	                     acknowledged no-op, so retries are safe.
//	watch close -id ID   POST /v1/watch/close — end the watch and drop its
//	                     checkpoint.
//	ring status          GET /admin/ring (coordinator only)
//	ring join URL        POST /admin/ring/join — probe URL, then cut it into the ring
//	ring leave URL       POST /admin/ring/leave — drain URL, then cut it out
//
// The response body is pretty-printed to stdout. Exit status:
//
//	0  2xx response
//	1  transport failure or any other non-2xx status
//	2  usage error
//	3  429 — shed by admission control (global bound or tenant quota); the
//	   server's Retry-After is echoed in the error line
//	4  503 — draining or otherwise unavailable; retry against another node
//
// The split lets retry loops distinguish "back off and retry here" (3) from
// "this node is going away" (4) without parsing bodies.
//
// Transient failures — dial errors and 5xx responses — are retried up to
// -retries extra times (default 2) with jittered exponential backoff before
// the exit code above applies. Ring join and leave are never retried: they
// mutate the ring, and a blind re-send after an ambiguous failure could
// apply the change twice. 429 is not retried either; its Retry-After is the
// server telling the caller when, which a fixed backoff would ignore.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"fepia/internal/server"
)

// Exit codes for scriptability; see the package comment.
const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
	exitShed  = 3 // 429: admission shed, Retry-After applies
	exitDrain = 4 // 503: draining/unavailable, try another node
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fepiactl [-addr URL] [-timeout D] [-request-id ID] [-tenant NAME] health|ready|statz|metrics|tenants|robustness|radius|batch|search|watch|ring [args]\n")
	flag.PrintDefaults()
	os.Exit(exitUsage)
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "daemon base URL")
	timeout := flag.Duration("timeout", 2*time.Minute, "HTTP client timeout")
	requestID := flag.String("request-id", "", "X-Request-ID to stamp on the call (one is generated server-side if empty)")
	tenant := flag.String("tenant", "", "X-Tenant identity to charge the request to (empty = the daemon's default tenant)")
	retries := flag.Int("retries", 2, "extra attempts after a dial failure or 5xx, with jittered exponential backoff (never for ring join/leave)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	base := strings.TrimRight(*addr, "/")
	client := &transport{
		client:  &http.Client{Timeout: *timeout},
		retries: *retries,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	hdr := headers{requestID: *requestID, tenant: *tenant}

	var resp *http.Response
	var err error
	cmd := flag.Arg(0)
	switch cmd {
	case "health", "ready", "statz", "metrics":
		paths := map[string]string{"health": "/healthz", "ready": "/readyz", "statz": "/statz", "metrics": "/metrics"}
		resp, err = get(client, base+paths[cmd], hdr)
	case "tenants":
		runTenants(client, base, hdr)
		return
	case "robustness", "radius", "batch":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		file := fs.String("f", "-", "request JSON file (\"-\" = stdin)")
		fs.Parse(flag.Args()[1:])
		body, rerr := readRequest(*file)
		if rerr != nil {
			fatal(rerr)
		}
		resp, err = post(client, base+"/v1/"+cmd, body, hdr)
	case "search":
		body, serr := searchBody(flag.Args()[1:])
		if serr != nil {
			fatal(serr)
		}
		resp, err = post(client, base+"/v1/search", body, hdr)
	case "watch":
		runWatch(client, base, hdr, flag.Args()[1:])
		return
	case "ring":
		resp, err = runRing(client, base, hdr, flag.Args()[1:])
	default:
		fmt.Fprintf(os.Stderr, "fepiactl: unknown command %q\n", cmd)
		usage()
	}
	if err != nil {
		fatal(err)
	}
	finish(resp)
}

// searchBody assembles the /v1/search request: either -f ships a complete
// SearchRequest document, or -instance names a makespan document and the
// remaining flags compose the request around it.
func searchBody(args []string) ([]byte, error) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	file := fs.String("f", "", "full SearchRequest JSON file (\"-\" = stdin); overrides the composing flags")
	instance := fs.String("instance", "", "makespan document file (\"-\" = stdin), the format `rank -save` writes")
	algo := fs.String("algo", "", "search algorithm: anneal or ga (default ga)")
	objective := fs.String("objective", "", "search objective: max-rho (default) or min-makespan")
	tau := fs.Float64("tau", 0, "requirement bound = tau x M(min-min); must be > 1 unless -bound is set")
	bound := fs.Float64("bound", 0, "explicit makespan requirement (overrides -tau)")
	rhoMin := fs.Float64("rho-min", 0, "robustness constraint for -objective min-makespan")
	seed := fs.Int64("seed", 1, "search seed; equal seeds return bit-identical results")
	steps := fs.Int("steps", 0, "annealing steps (0 = default)")
	population := fs.Int("population", 0, "GA population (0 = default)")
	generations := fs.Int("generations", 0, "GA generations (0 = default)")
	searchID := fs.String("search-id", "", "name for the /statz progress row (default: the request ID)")
	searchTimeout := fs.String("search-timeout", "", "server-side search deadline, e.g. 30s (a deadline mid-search returns the partial best)")
	resume := fs.String("resume", "", "resume the checkpointed search with this id (a -state-dir daemon; /statz lists them as \"resumable\")")
	fs.Parse(args)
	if *resume != "" {
		if *file != "" || *instance != "" {
			return nil, fmt.Errorf("search: -resume continues the stored request; it takes no -f or -instance (only -search-timeout may override)")
		}
		// The stored request keeps its original deadline, including the one
		// that truncated it; -search-timeout is the one overridable field.
		return json.Marshal(server.SearchRequest{ResumeID: *resume, Timeout: *searchTimeout})
	}
	if *file != "" {
		return readRequest(*file)
	}
	if *instance == "" {
		return nil, fmt.Errorf("search: need -f FILE, -instance FILE, or -resume ID")
	}
	inst, err := readRequest(*instance)
	if err != nil {
		return nil, err
	}
	req := server.SearchRequest{
		Instance:    inst,
		Algo:        *algo,
		Objective:   *objective,
		Tau:         *tau,
		Bound:       *bound,
		RhoMin:      *rhoMin,
		Seed:        *seed,
		Steps:       *steps,
		Population:  *population,
		Generations: *generations,
		SearchID:    *searchID,
		Timeout:     *searchTimeout,
	}
	return json.Marshal(req)
}

// runRing dispatches the ring subcommands against the coordinator's admin
// endpoints. join and leave mutate the ring, so they get exactly one
// attempt — a retry after an ambiguous failure could re-apply the change.
func runRing(client *transport, base string, hdr headers, args []string) (*http.Response, error) {
	if len(args) < 1 {
		fmt.Fprintf(os.Stderr, "fepiactl: usage: ring status | ring join URL | ring leave URL\n")
		os.Exit(exitUsage)
	}
	switch sub := args[0]; sub {
	case "status":
		return get(client, base+"/admin/ring", hdr)
	case "join", "leave":
		if len(args) != 2 {
			fmt.Fprintf(os.Stderr, "fepiactl: usage: ring %s URL\n", sub)
			os.Exit(exitUsage)
		}
		body, err := json.Marshal(map[string]string{"url": args[1]})
		if err != nil {
			return nil, err
		}
		return post(client.once(), base+"/admin/ring/"+sub, body, hdr)
	default:
		fmt.Fprintf(os.Stderr, "fepiactl: unknown ring subcommand %q (want status, join, or leave)\n", sub)
		os.Exit(exitUsage)
		return nil, nil
	}
}

// runTenants prints the per-tenant admission section of /statz, so an
// operator can read quota pressure without wading through the full document.
func runTenants(client *transport, base string, hdr headers) {
	resp, err := get(client, base+"/statz", hdr)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		printJSON(data)
		exitForStatus(resp, data)
	}
	var st struct {
		Tenants []server.TenantStatz `json:"tenants"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		fatal(err)
	}
	out, err := json.MarshalIndent(st.Tenants, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// finish prints the response body and exits with the status-mapped code.
func finish(resp *http.Response) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	printJSON(data)
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		return
	}
	exitForStatus(resp, data)
}

// exitForStatus maps a non-2xx response onto the CLI's exit codes via
// nonOKReport. Every subcommand funnels failures through here, so sheds
// render their Retry-After hint identically everywhere.
func exitForStatus(resp *http.Response, body []byte) {
	msg, code := nonOKReport(resp.StatusCode, resp.Status, resp.Header, body)
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(code)
}

// nonOKReport is the one mapping from a failed response to the stderr line
// and exit code. For 429 sheds the retry hint prefers the Retry-After
// header and falls back to the body's retryAfterMs (rounded up to whole
// seconds), and the tenant comes from the X-Tenant header or the body —
// whichever the serving path populated — so search, watch, tenants, and the
// plain POST subcommands all surface the same line.
func nonOKReport(statusCode int, status string, hdr http.Header, body []byte) (string, int) {
	var er server.ErrorResponse
	_ = json.Unmarshal(body, &er) // best-effort: non-JSON bodies leave the zero value
	rid := hdr.Get(server.HeaderRequestID)
	if rid == "" {
		rid = er.RequestID
	}
	switch statusCode {
	case http.StatusTooManyRequests:
		msg := fmt.Sprintf("fepiactl: %s %s", status, rid)
		ra := hdr.Get("Retry-After")
		if ra == "" && er.RetryAfterMs > 0 {
			ra = fmt.Sprintf("%d", (er.RetryAfterMs+999)/1000)
		}
		if ra != "" {
			msg += fmt.Sprintf(" (retry after %ss)", ra)
		}
		ten := hdr.Get(server.HeaderTenant)
		if ten == "" {
			ten = er.Tenant
		}
		if ten != "" {
			msg += fmt.Sprintf(" [tenant %s]", ten)
		}
		return msg, exitShed
	case http.StatusServiceUnavailable:
		return fmt.Sprintf("fepiactl: %s %s (draining or unavailable; try another node)", status, rid), exitDrain
	default:
		return fmt.Sprintf("fepiactl: %s %s", status, rid), exitError
	}
}

func readRequest(file string) ([]byte, error) {
	var data []byte
	var err error
	if file == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	// Fail on malformed JSON locally rather than shipping it to the daemon.
	if !json.Valid(data) {
		return nil, fmt.Errorf("%s: not valid JSON", file)
	}
	return data, nil
}

// headers are the optional identity headers stamped on every call.
type headers struct {
	requestID string
	tenant    string
}

func (h headers) apply(req *http.Request) {
	if h.requestID != "" {
		req.Header.Set(server.HeaderRequestID, h.requestID)
	}
	if h.tenant != "" {
		req.Header.Set(server.HeaderTenant, h.tenant)
	}
}

// transport is the HTTP client plus a bounded retry budget for transient
// failures: dial/transport errors and 5xx responses. Each retry waits a
// jittered exponential backoff (200ms base, doubled, ±50% jitter, capped at
// 5s). Non-5xx responses — including 429 sheds, whose Retry-After belongs to
// the caller — are returned as-is, so the exit-code contract is unchanged;
// retries only buy extra attempts before the usual mapping applies.
type transport struct {
	client  *http.Client
	retries int
	rng     *rand.Rand
}

// once returns a copy with no retry budget, for mutating admin calls (ring
// join/leave) where a blind re-send could repeat a topology change.
func (t *transport) once() *transport {
	return &transport{client: t.client, retries: 0, rng: t.rng}
}

// do runs build → Do up to 1+retries times. build is invoked per attempt so
// each retry gets a fresh request body.
func (t *transport) do(build func() (*http.Request, error)) (*http.Response, error) {
	backoff := 200 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := t.client.Do(req)
		transient := err != nil || resp.StatusCode >= 500
		if !transient || attempt >= t.retries {
			return resp, err
		}
		what := fmt.Sprintf("%v", err)
		if err == nil {
			what = resp.Status
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		wait := backoff/2 + time.Duration(t.rng.Int63n(int64(backoff)))
		fmt.Fprintf(os.Stderr, "fepiactl: transient failure (%s), retrying in %v (%d attempt(s) left)\n",
			what, wait.Round(time.Millisecond), t.retries-attempt)
		time.Sleep(wait)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func get(t *transport, url string, hdr headers) (*http.Response, error) {
	return t.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		hdr.apply(req)
		return req, nil
	})
}

func post(t *transport, url string, body []byte, hdr headers) (*http.Response, error) {
	return t.do(func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		hdr.apply(req)
		return req, nil
	})
}

func printJSON(data []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(data), "", "  "); err != nil {
		os.Stdout.Write(data) // not JSON (e.g. a plain "ok"); pass through
		fmt.Println()
		return
	}
	fmt.Println(buf.String())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fepiactl: %v\n", err)
	os.Exit(exitError)
}
