// Command fepiactl is a small operator CLI for fepiad daemons (workers and
// coordinators alike — they speak the same API).
//
// Usage:
//
//	fepiactl [-addr http://localhost:8080] [-timeout 2m] [-request-id ID] <command> [args]
//
// Commands:
//
//	health               GET /healthz
//	ready                GET /readyz (exit 1 when not ready)
//	statz                GET /statz
//	robustness [-f FILE] POST /v1/robustness with the request JSON from FILE ("-" = stdin)
//	radius     [-f FILE] POST /v1/radius
//	batch      [-f FILE] POST /v1/batch
//
// The response body is pretty-printed to stdout. Exit status is 0 for a 2xx
// response, 1 otherwise (the error body still prints, so the typed error kind
// and request ID are visible).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"fepia/internal/server"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fepiactl [-addr URL] [-timeout D] [-request-id ID] health|ready|statz|robustness|radius|batch [-f FILE]\n")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "daemon base URL")
	timeout := flag.Duration("timeout", 2*time.Minute, "HTTP client timeout")
	requestID := flag.String("request-id", "", "X-Request-ID to stamp on the call (one is generated server-side if empty)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}

	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: *timeout}

	var resp *http.Response
	var err error
	cmd := flag.Arg(0)
	switch cmd {
	case "health", "ready", "statz":
		paths := map[string]string{"health": "/healthz", "ready": "/readyz", "statz": "/statz"}
		resp, err = get(client, base+paths[cmd], *requestID)
	case "robustness", "radius", "batch":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		file := fs.String("f", "-", "request JSON file (\"-\" = stdin)")
		fs.Parse(flag.Args()[1:])
		body, rerr := readRequest(*file)
		if rerr != nil {
			fatal(rerr)
		}
		resp, err = post(client, base+"/v1/"+cmd, body, *requestID)
	default:
		fmt.Fprintf(os.Stderr, "fepiactl: unknown command %q\n", cmd)
		usage()
	}
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()

	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	printJSON(data)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(os.Stderr, "fepiactl: %s %s\n", resp.Status, resp.Header.Get(server.HeaderRequestID))
		os.Exit(1)
	}
}

func readRequest(file string) ([]byte, error) {
	var data []byte
	var err error
	if file == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	// Fail on malformed JSON locally rather than shipping it to the daemon.
	if !json.Valid(data) {
		return nil, fmt.Errorf("%s: not valid JSON", file)
	}
	return data, nil
}

func get(client *http.Client, url, rid string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if rid != "" {
		req.Header.Set(server.HeaderRequestID, rid)
	}
	return client.Do(req)
}

func post(client *http.Client, url string, body []byte, rid string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set(server.HeaderRequestID, rid)
	}
	return client.Do(req)
}

func printJSON(data []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(data), "", "  "); err != nil {
		os.Stdout.Write(data) // not JSON (e.g. a plain "ok"); pass through
		fmt.Println()
		return
	}
	fmt.Println(buf.String())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fepiactl: %v\n", err)
	os.Exit(1)
}
