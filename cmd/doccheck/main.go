// Command doccheck verifies that every relative markdown link in the
// repository's documentation resolves: the target file must exist, and a
// #fragment must name a real heading anchor in the target (GitHub-style
// slugs). External links (http, https, mailto) are not fetched — CI must
// stay hermetic — so only links the repository itself can break are
// checked.
//
// Usage:
//
//	go run ./cmd/doccheck [path ...]
//
// With no arguments it checks README.md and every .md file under docs/.
// Exit status is 0 when all links resolve and 1 when any link is dead,
// with one "file:line: message" diagnostic per dead link.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Images
// ![alt](target) are matched too — a dead image path is just as broken as
// a dead link. Code spans are stripped before matching so examples like
// `[a](b)` inside backticks do not produce false positives.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// codeSpanRe strips inline code spans; fenced blocks are handled by state
// in checkFile.
var codeSpanRe = regexp.MustCompile("`[^`]*`")

// headingRe matches ATX headings, whose slugs form the valid fragments.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// slugNonWord removes every rune GitHub's anchor slugger drops: anything
// that is not a letter, digit, space, or hyphen.
var slugNonWord = regexp.MustCompile(`[^\p{L}\p{N} \-]`)

// slug converts a heading to its GitHub anchor: lowercase, punctuation
// removed, spaces to hyphens.
func slug(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	// Markdown formatting inside the heading does not survive into the
	// anchor text.
	s = strings.NewReplacer("`", "", "*", "", "_", "").Replace(s)
	s = slugNonWord.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}

// anchors returns the set of valid fragment slugs for a markdown file,
// numbering duplicates -1, -2, … the way GitHub does.
func anchors(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if m := headingRe.FindStringSubmatch(line); m != nil {
			s := slug(m[1])
			if n := counts[s]; n > 0 {
				out[fmt.Sprintf("%s-%d", s, n)] = true
			} else {
				out[s] = true
			}
			counts[s]++
		}
	}
	return out, sc.Err()
}

// external reports whether a link target points outside the repository.
func external(target string) bool {
	for _, p := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, p) {
			return true
		}
	}
	return false
}

// checkFile scans one markdown file and returns a diagnostic per dead
// link.
func checkFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var bad []string
	inFence := false
	lineNo := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		line = codeSpanRe.ReplaceAllString(line, "")
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if external(target) {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(filepath.Dir(path), file)
				if _, err := os.Stat(resolved); err != nil {
					bad = append(bad, fmt.Sprintf("%s:%d: dead link %q: %s does not exist",
						path, lineNo, target, resolved))
					continue
				}
			}
			if frag == "" {
				continue
			}
			// Fragments are only checkable inside markdown targets.
			if !strings.HasSuffix(resolved, ".md") {
				continue
			}
			as, err := anchors(resolved)
			if err != nil {
				return nil, err
			}
			if !as[frag] {
				bad = append(bad, fmt.Sprintf("%s:%d: dead anchor %q: no heading in %s slugs to #%s",
					path, lineNo, target, resolved, frag))
			}
		}
	}
	return bad, sc.Err()
}

// expand turns the argument list into the set of markdown files to check.
func expand(args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"README.md", "docs"}
	}
	var files []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: doccheck [path ...]\n\nChecks relative markdown links; defaults to README.md and docs/.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	files, err := expand(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	total := 0
	for _, f := range files {
		bad, err := checkFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		for _, b := range bad {
			fmt.Println(b)
		}
		total += len(bad)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d dead link(s) across %d file(s)\n", total, len(files))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d file(s) clean\n", len(files))
}
