// Command fepiad is the resilient robustness-evaluation daemon: an HTTP
// JSON service exposing the FePIA engine's single-kind, combined, and batch
// evaluations with admission control, per-request deadlines, circuit-breaking
// degradation, and graceful drain on SIGTERM/SIGINT.
//
// It runs in one of two modes:
//
//   - -mode=worker (default): evaluate scenarios locally. -workers is the
//     per-evaluation worker pool size handed to the engine (an integer).
//   - -mode=coordinator: scatter evaluations over a fleet of worker daemons
//     and merge the shards into bit-identical single-node responses.
//     -workers is the comma-separated list of worker base URLs.
//
// Usage (worker):
//
//	fepiad [-addr :8080] [-default-timeout 30s] [-max-timeout 2m]
//	       [-max-concurrent N] [-queue-cost 1048576] [-workers 1]
//	       [-cache 0] [-scenario-cache 0] [-store-dir DIR]
//	       [-store-max-bytes 0] [-state-dir DIR]
//	       [-tenant-quota 0] [-tenant-weights a=2,b=0.5]
//	       [-breaker-threshold 5] [-breaker-backoff 1s]
//	       [-breaker-max-backoff 2m] [-drain-timeout 20s] [-chaos]
//
// Usage (coordinator):
//
//	fepiad -mode=coordinator -workers http://h1:8080,http://h2:8080 \
//	       [-addr :8080] [-state-dir DIR] [-recovery-timeout 15s]
//	       [-health-interval 2s] [-probe-timeout 1s]
//	       [-max-inflight 32] [-scatter-budget 250ms] [-hedge-after 0]
//	       [-max-attempts 3] [-vnodes 64] [-breaker-threshold 5]
//	       [-drain-timeout 20s]
//
// Endpoints (both modes): GET /healthz, /readyz, /statz, /metrics (Prometheus
// text format); POST /v1/robustness, /v1/radius, /v1/batch, and /v1/search —
// robustness-aware allocation search as a service: one request runs a whole
// annealing/GA search whose generations are scored through the batch engine
// (workers evaluate locally; the coordinator scatters each generation over
// the fleet), with progress and the resumable best-so-far in /statz. The
// coordinator
// additionally serves GET /admin/ring and POST /admin/ring/join,
// /admin/ring/leave for live fleet membership. docs/operations.md documents
// the request/response schemas, the shedding and breaker semantics, the
// shutdown sequence, and how to run a fleet; docs/failure-semantics.md
// §server maps HTTP statuses to the engine's typed errors.
//
// With -store-dir the worker persists every scenario it builds
// (content-addressed, atomic, checksummed) and reloads the store into its
// scenario cache before serving, so a restart starts warm. Requires
// -scenario-cache > 0. -store-max-bytes bounds the store on disk; past the
// bound the coldest entries are evicted LRU-by-access, never one pinned by
// an in-flight evaluation.
//
// With -state-dir the daemon is durable across crashes. Both modes
// checkpoint every /v1/search generation there (temp+fsync+rename), so a
// killed search can be resumed bit-identically — POST /v1/search with
// {"resumeId": ID} (or fepiactl search -resume ID) after a restart; /statz
// lists recovered checkpoints as "resumable". The coordinator additionally
// journals every ring membership change (join/leave, checksummed,
// generation-stamped) and on boot replays the journal, preferring the
// journaled fleet over -workers; /readyz reports "recovering" (503) until
// a journaled member answers a probe or -recovery-timeout lapses.
// docs/operations.md §"Coordinator crash and recovery" is the runbook.
//
// On SIGTERM (or SIGINT) the daemon stops accepting work, lets in-flight
// requests finish — cancelling them at -drain-timeout so every accepted
// request still gets a terminal response — and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/server"
)

func main() {
	mode := flag.String("mode", "worker", "worker (evaluate locally) or coordinator (scatter over a worker fleet)")
	addr := flag.String("addr", ":8080", "listen address")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "deadline for requests that name no timeout")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "hard cap on any requested timeout")
	maxConcurrent := flag.Int("max-concurrent", 0, "worker: evaluation slots (0 = GOMAXPROCS)")
	queueCost := flag.Int64("queue-cost", 1<<20, "worker: admission queue bound in cost units (estimated impact evaluations)")
	workers := flag.String("workers", "1", "worker: per-evaluation pool size; coordinator: comma-separated worker base URLs")
	cacheCap := flag.Int("cache", 0, "worker: impact cache entries per analysis (>0 capacity, 0 engine default, <0 disabled)")
	cacheShards := flag.Int("cache-shards", 0, "worker: impact cache shard count, rounded up to a power of two (0 = derive from GOMAXPROCS)")
	scenarioCache := flag.Int("scenario-cache", 0, "worker: built-scenario LRU capacity (0 = disabled)")
	storeDir := flag.String("store-dir", "", "worker: persistent scenario store directory (warm-starts the scenario cache; needs -scenario-cache > 0)")
	tenantQuota := flag.Int64("tenant-quota", 0, "worker: per-tenant reserved-cost ceiling at weight 1 (0 = queue-cost/4, <0 = disabled)")
	tenantWeights := flag.String("tenant-weights", "", "worker: per-tenant fair-queue weights as name=weight[,name=weight...] (unlisted tenants weigh 1)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive numeric-tier failures that trip a scenario class")
	breakerBackoff := flag.Duration("breaker-backoff", time.Second, "initial open interval of a tripped breaker")
	breakerMaxBackoff := flag.Duration("breaker-max-backoff", 2*time.Minute, "cap on the doubled breaker backoff")
	drainTimeout := flag.Duration("drain-timeout", 20*time.Second, "how long drain waits before cancelling in-flight work")
	enableChaos := flag.Bool("chaos", false, "accept test-only fault-injection decorations on requests (never in production)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "coordinator: /readyz probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "coordinator: deadline for one health probe")
	maxInflight := flag.Int("max-inflight", 32, "coordinator: concurrent requests per worker")
	scatterBudget := flag.Duration("scatter-budget", 250*time.Millisecond, "coordinator: deadline slack reserved for scatter/gather overhead")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinator: re-issue a shard after this long (0 = adaptive, 3x worker latency)")
	maxAttempts := flag.Int("max-attempts", 3, "coordinator: workers one shard may be sent to, counting the hedge")
	vnodes := flag.Int("vnodes", 64, "coordinator: virtual nodes per worker on the placement ring")
	stateDir := flag.String("state-dir", "", "durable state directory: search checkpoints (both modes) and the ring membership journal (coordinator)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "worker: scenario store size bound; coldest unpinned entries are evicted past it (0 = unbounded)")
	maxWatches := flag.Int("max-watches", 0, "live watch subscriptions kept in memory (0 = 64, <0 = unbounded)")
	maxWatchesPerTenant := flag.Int("max-watches-per-tenant", 0, "worker: live watches one tenant may hold (0 = 8, <0 = unbounded)")
	watchEventCap := flag.Int("watch-event-cap", 0, "events retained per watch for resume replay (0 = 1024, <0 = unbounded)")
	recoveryTimeout := flag.Duration("recovery-timeout", 15*time.Second, "coordinator: how long /readyz may report recovering while re-probing journaled members")
	flag.Parse()

	logger := log.New(os.Stderr, "fepiad: ", log.LstdFlags)

	// drainer is the piece of either mode that participates in graceful
	// shutdown; the HTTP plumbing around it is identical.
	var handler http.Handler
	var drain func(context.Context) error

	switch *mode {
	case "worker":
		pool, err := strconv.Atoi(strings.TrimSpace(*workers))
		if err != nil || pool < 0 {
			logger.Fatalf("-workers must be a non-negative integer in worker mode, got %q", *workers)
		}
		weights, err := parseWeights(*tenantWeights)
		if err != nil {
			logger.Fatalf("-tenant-weights: %v", err)
		}
		if *storeDir != "" && *scenarioCache <= 0 {
			logger.Fatalf("-store-dir needs -scenario-cache > 0 (the store warm-starts the scenario cache)")
		}
		s := server.New(server.Config{
			DefaultTimeout:      *defaultTimeout,
			MaxTimeout:          *maxTimeout,
			MaxConcurrent:       *maxConcurrent,
			MaxQueueCost:        *queueCost,
			TenantQuotaCost:     *tenantQuota,
			TenantWeights:       weights,
			Workers:             pool,
			CacheCap:            *cacheCap,
			CacheShards:         *cacheShards,
			ScenarioCacheCap:    *scenarioCache,
			StoreDir:            *storeDir,
			StoreMaxBytes:       *storeMaxBytes,
			StateDir:            *stateDir,
			MaxWatches:          *maxWatches,
			MaxWatchesPerTenant: *maxWatchesPerTenant,
			WatchEventCap:       *watchEventCap,
			BreakerThreshold:    *breakerThreshold,
			BreakerBackoff:      *breakerBackoff,
			BreakerMaxBackoff:   *breakerMaxBackoff,
			EnableChaos:         *enableChaos,
			Logf:                logger.Printf,
		})
		if *storeDir != "" {
			loaded, skippedN := s.WarmStart()
			logger.Printf("warm start: %d scenario(s) loaded, %d skipped", loaded, skippedN)
		}
		if *stateDir != "" {
			if n := s.LoadResumableSearches(); n > 0 {
				logger.Printf("recovered %d resumable search(es) from %s", n, *stateDir)
			}
		}
		handler, drain = s.Handler(), s.Drain

	case "coordinator":
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		c, err := cluster.New(cluster.Config{
			Workers:              urls,
			HealthInterval:       *healthInterval,
			ProbeTimeout:         *probeTimeout,
			MaxInflightPerWorker: *maxInflight,
			ScatterBudget:        *scatterBudget,
			DefaultTimeout:       *defaultTimeout,
			MaxTimeout:           *maxTimeout,
			HedgeAfter:           *hedgeAfter,
			MaxAttempts:          *maxAttempts,
			VNodes:               *vnodes,
			BreakerThreshold:     *breakerThreshold,
			BreakerBackoff:       *breakerBackoff,
			BreakerMaxBackoff:    *breakerMaxBackoff,
			EnableChaos:          *enableChaos,
			StateDir:             *stateDir,
			MaxWatches:           *maxWatches,
			WatchEventCap:        *watchEventCap,
			RecoveryTimeout:      *recoveryTimeout,
			Logf:                 logger.Printf,
		})
		if err != nil {
			logger.Fatalf("%v (coordinator mode needs -workers as a comma-separated URL list, or a -state-dir whose ring journal names the fleet)", err)
		}
		handler, drain = c.Handler(), c.Drain

	default:
		logger.Fatalf("unknown -mode %q (want worker or coordinator)", *mode)
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Defense against slowloris clients; evaluation time is governed by
		// the per-request deadlines, not these.
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logger.Printf("listening on %s (mode=%s chaos=%v)", *addr, *mode, *enableChaos)

	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case <-sigCtx.Done():
	}
	logger.Printf("signal received, draining (deadline %v)", *drainTimeout)

	// Shutdown sequence: stop admission first so every new request gets an
	// immediate 503, drain in-flight work, then close the listener. Drain
	// cancels stragglers at the deadline, so accepted requests always reach
	// a terminal response before the server goes away.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}

	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "fepiad: %v\n", drainErr)
		os.Exit(1)
	}
	logger.Printf("drain complete, exiting")
}

// parseWeights parses "name=weight[,name=weight...]" into a tenant weight
// map. Empty input means no overrides.
func parseWeights(s string) (map[string]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad entry %q (want name=weight)", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive number)", val, name)
		}
		weights[name] = w
	}
	return weights, nil
}
