// Command fepiad is the resilient robustness-evaluation daemon: an HTTP
// JSON service exposing the FePIA engine's single-kind, combined, and batch
// evaluations with admission control, per-request deadlines, circuit-breaking
// degradation, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	fepiad [-addr :8080] [-default-timeout 30s] [-max-timeout 2m]
//	       [-max-concurrent N] [-queue-cost 1048576] [-workers 1]
//	       [-cache 0] [-breaker-threshold 5] [-breaker-backoff 1s]
//	       [-breaker-max-backoff 2m] [-drain-timeout 20s] [-chaos]
//
// Endpoints: GET /healthz, /readyz, /statz; POST /v1/robustness, /v1/radius,
// /v1/batch. docs/operations.md documents the request/response schemas, the
// shedding and breaker semantics, and the shutdown sequence;
// docs/failure-semantics.md §server maps HTTP statuses to the engine's typed
// errors.
//
// On SIGTERM (or SIGINT) the daemon stops accepting work, lets in-flight
// requests finish — cancelling them at -drain-timeout so every accepted
// request still gets a terminal response — and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fepia/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "deadline for requests that name no timeout")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "hard cap on any requested timeout")
	maxConcurrent := flag.Int("max-concurrent", 0, "evaluation slots (0 = GOMAXPROCS)")
	queueCost := flag.Int64("queue-cost", 1<<20, "admission queue bound in cost units (estimated impact evaluations)")
	workers := flag.Int("workers", 1, "per-evaluation worker pool handed to the engine")
	cacheCap := flag.Int("cache", 0, "impact cache entries per analysis (>0 capacity, 0 engine default, <0 disabled)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive numeric-tier failures that trip a scenario class")
	breakerBackoff := flag.Duration("breaker-backoff", time.Second, "initial open interval of a tripped breaker")
	breakerMaxBackoff := flag.Duration("breaker-max-backoff", 2*time.Minute, "cap on the doubled breaker backoff")
	drainTimeout := flag.Duration("drain-timeout", 20*time.Second, "how long drain waits before cancelling in-flight work")
	enableChaos := flag.Bool("chaos", false, "accept test-only fault-injection decorations on requests (never in production)")
	flag.Parse()

	logger := log.New(os.Stderr, "fepiad: ", log.LstdFlags)

	s := server.New(server.Config{
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		MaxConcurrent:     *maxConcurrent,
		MaxQueueCost:      *queueCost,
		Workers:           *workers,
		CacheCap:          *cacheCap,
		BreakerThreshold:  *breakerThreshold,
		BreakerBackoff:    *breakerBackoff,
		BreakerMaxBackoff: *breakerMaxBackoff,
		EnableChaos:       *enableChaos,
		Logf:              logger.Printf,
	})

	hs := &http.Server{
		Addr:    *addr,
		Handler: s.Handler(),
		// Defense against slowloris clients; evaluation time is governed by
		// the per-request deadlines, not these.
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logger.Printf("listening on %s (chaos=%v)", *addr, *enableChaos)

	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case <-sigCtx.Done():
	}
	logger.Printf("signal received, draining (deadline %v)", *drainTimeout)

	// Shutdown sequence: stop admission first so every new request gets an
	// immediate 503, drain in-flight work, then close the listener. Drain
	// cancels stragglers at the deadline, so accepted requests always reach
	// a terminal response before the server goes away.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}

	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "fepiad: %v\n", drainErr)
		os.Exit(1)
	}
	logger.Printf("drain complete, exiting")
}
