// Command fepia runs a FePIA robustness analysis over a JSON scenario file
// and prints the per-kind robustness radii (Eq. 1), the combined robustness
// (Eq. 2) under the chosen weighting, and an optional operating-point check.
//
// Usage:
//
//	fepia -scenario system.json [-weighting normalized|sensitivity] \
//	      [-check "1.1,2.2;4000"]
//	fepia -example            # print a documented example scenario and exit
//
// The scenario format (see -example) describes perturbation parameters with
// their units and original values, and linear features with coefficient
// blocks and bounds. -check takes parameter values (elements comma-
// separated, parameters semicolon-separated) and reports whether the system
// is guaranteed to stay within bounds at that operating point.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"fepia"
	"fepia/internal/report"
)

// scenario is the JSON schema of an analysis.
type scenario struct {
	Params   []scenarioParam   `json:"params"`
	Features []scenarioFeature `json:"features"`
}

type scenarioParam struct {
	Name string    `json:"name"`
	Unit string    `json:"unit"`
	Orig []float64 `json:"orig"`
}

type scenarioFeature struct {
	Name string `json:"name"`
	// Min/Max bounds; omit (null) for one-sided requirements.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Coeffs holds one coefficient block per parameter, aligned with
	// params; Const is the affine offset.
	Coeffs [][]float64 `json:"coeffs"`
	Const  float64     `json:"const,omitempty"`
}

const exampleScenario = `{
  "params": [
    {"name": "exec-times", "unit": "s", "orig": [1.0, 2.0]},
    {"name": "msg-lengths", "unit": "bytes", "orig": [4000]}
  ],
  "features": [
    {"name": "latency",  "max": 42.0, "coeffs": [[2, 3], [0.005]]},
    {"name": "util",     "max": 0.9,  "coeffs": [[0.2, 0.1], [0]], "const": 0.1}
  ]
}`

func main() {
	file := flag.String("scenario", "", "path to the JSON scenario")
	weighting := flag.String("weighting", "normalized", "P-space weighting: normalized or sensitivity")
	check := flag.String("check", "", "operating point to check: elements comma-separated, parameters semicolon-separated")
	mcSigma := flag.Float64("mc", 0, "also run Monte-Carlo: relative-normal drift with this sigma per element")
	mcSamples := flag.Int("mc-samples", 10000, "Monte-Carlo sample count")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole analysis (0 = unlimited), e.g. 30s")
	example := flag.Bool("example", false, "print an example scenario and exit")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *example {
		fmt.Println(exampleScenario)
		return
	}
	if *file == "" {
		fmt.Fprintln(os.Stderr, "fepia: -scenario is required (see -example)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var sc scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *file, err))
	}
	a, err := buildAnalysis(sc)
	if err != nil {
		fatal(err)
	}

	var w fepia.Weighting
	switch *weighting {
	case "normalized":
		w = fepia.Normalized{}
	case "sensitivity":
		w = fepia.Sensitivity{}
	default:
		fatal(fmt.Errorf("unknown weighting %q", *weighting))
	}

	// Per-kind robustness.
	tb := report.NewTable("Per-kind robustness rho(Phi, pi_j) — Eq. 1",
		"parameter", "unit", "rho", "critical feature", "boundary")
	for j, p := range a.Params {
		r, err := a.RobustnessSingleCtx(ctx, j)
		if err != nil {
			fatal(err)
		}
		crit := "-"
		if r.Feature >= 0 {
			crit = a.Features[r.Feature].Name
		}
		tb.AddRow(p.Name, p.Unit, fmtRadius(r.Value), crit, r.Side.String())
	}
	tb.WriteText(os.Stdout)
	fmt.Println()

	// Combined robustness.
	rho, err := a.RobustnessCtx(ctx, w)
	if err != nil {
		fatal(err)
	}
	tb2 := report.NewTable(fmt.Sprintf("Combined robustness rho(Phi, P) — Eq. 2, %s weighting", w.Name()),
		"feature", "r(phi_i, P)", "boundary")
	for i, r := range rho.PerFeature {
		tb2.AddRow(a.Features[i].Name, fmtRadius(r.Value), r.Side.String())
	}
	tb2.WriteText(os.Stdout)
	fmt.Printf("\nrho_mu(Phi, P) = %s  (critical feature: %s)\n",
		fmtRadius(rho.Value), a.Features[rho.Critical].Name)

	if *mcSigma > 0 {
		mc, err := a.MonteCarloCtx(ctx, fepia.MCOptions{
			Model:   fepia.MCRelativeNormal,
			Spread:  *mcSigma,
			Samples: *mcSamples,
			Seed:    1,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nMonte-Carlo (relative-normal drift, sigma = %g, %d samples):\n", *mcSigma, mc.Samples)
		fmt.Printf("  violation probability: %.4f\n", mc.ViolationRate)
		if mc.CriticalFeature >= 0 {
			fmt.Printf("  most-violated feature: %s\n", a.Features[mc.CriticalFeature].Name)
		}
	}

	if *check != "" {
		vals, err := parsePoint(*check, a)
		if err != nil {
			fatal(err)
		}
		ok, err := a.Tolerable(vals, w)
		if err != nil {
			fatal(err)
		}
		violates := a.Violates(vals)
		fmt.Printf("\noperating point %s:\n", *check)
		fmt.Printf("  guaranteed tolerable (recipe): %v\n", ok)
		fmt.Printf("  violates bounds (direct):      %v\n", violates)
	}
}

func buildAnalysis(sc scenario) (*fepia.Analysis, error) {
	params := make([]fepia.Perturbation, len(sc.Params))
	for j, p := range sc.Params {
		params[j] = fepia.Perturbation{Name: p.Name, Unit: p.Unit, Orig: fepia.Vector(p.Orig)}
	}
	features := make([]fepia.Feature, len(sc.Features))
	for i, f := range sc.Features {
		if len(f.Coeffs) != len(params) {
			return nil, fmt.Errorf("feature %q has %d coefficient blocks, want %d", f.Name, len(f.Coeffs), len(params))
		}
		coeffs := make([]fepia.Vector, len(f.Coeffs))
		for j, c := range f.Coeffs {
			coeffs[j] = fepia.Vector(c)
		}
		bounds := fepia.Bounds{Min: math.Inf(-1), Max: math.Inf(1)}
		if f.Min != nil {
			bounds.Min = *f.Min
		}
		if f.Max != nil {
			bounds.Max = *f.Max
		}
		features[i] = fepia.Feature{
			Name:   f.Name,
			Bounds: bounds,
			Linear: &fepia.LinearImpact{Coeffs: coeffs, Const: f.Const},
		}
	}
	return fepia.NewAnalysis(features, params)
}

func parsePoint(s string, a *fepia.Analysis) ([]fepia.Vector, error) {
	blocks := strings.Split(s, ";")
	if len(blocks) != len(a.Params) {
		return nil, fmt.Errorf("check point has %d parameter blocks, want %d", len(blocks), len(a.Params))
	}
	out := make([]fepia.Vector, len(blocks))
	for j, b := range blocks {
		parts := strings.Split(b, ",")
		v := make(fepia.Vector, len(parts))
		for i, p := range parts {
			x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("check point block %d element %d: %w", j, i, err)
			}
			v[i] = x
		}
		out[j] = v
	}
	return out, nil
}

func fmtRadius(v float64) string {
	if math.IsInf(v, 1) {
		return "inf (unreachable boundary)"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fepia: %v\n", err)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "fepia: the analysis exceeded -timeout; raise the budget or simplify the scenario")
	case errors.Is(err, fepia.ErrImpactPanic):
		fmt.Fprintln(os.Stderr, "fepia: an impact function panicked; the offending feature is identified above")
	case errors.Is(err, fepia.ErrNumeric):
		fmt.Fprintln(os.Stderr, "fepia: an impact function produced NaN/Inf; see docs/failure-semantics.md")
	}
	os.Exit(1)
}
