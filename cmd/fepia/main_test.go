package main

import (
	"encoding/json"
	"math"
	"testing"

	"fepia"
)

func parseScenario(t *testing.T, raw string) scenario {
	t.Helper()
	var sc scenario
	if err := json.Unmarshal([]byte(raw), &sc); err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestExampleScenarioBuilds(t *testing.T) {
	sc := parseScenario(t, exampleScenario)
	a, err := buildAnalysis(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Params) != 2 || len(a.Features) != 2 {
		t.Fatalf("analysis shape %d/%d", len(a.Params), len(a.Features))
	}
	rho, err := a.Robustness(fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) {
		t.Errorf("rho = %v", rho.Value)
	}
}

func TestBuildAnalysisOneSidedBounds(t *testing.T) {
	sc := parseScenario(t, `{
		"params": [{"name": "x", "unit": "s", "orig": [1]}],
		"features": [
			{"name": "hi", "max": 5, "coeffs": [[1]]},
			{"name": "lo", "min": 0.1, "coeffs": [[1]]},
			{"name": "band", "min": 0.1, "max": 5, "coeffs": [[1]]}
		]
	}`)
	a, err := buildAnalysis(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a.Features[0].Bounds.Min, -1) {
		t.Error("omitted min must be -Inf")
	}
	if !math.IsInf(a.Features[1].Bounds.Max, 1) {
		t.Error("omitted max must be +Inf")
	}
	if a.Features[2].Bounds.Min != 0.1 || a.Features[2].Bounds.Max != 5 {
		t.Error("band bounds wrong")
	}
}

func TestBuildAnalysisCoeffBlockMismatch(t *testing.T) {
	sc := parseScenario(t, `{
		"params": [{"name": "x", "orig": [1]}, {"name": "y", "orig": [1]}],
		"features": [{"name": "f", "max": 5, "coeffs": [[1]]}]
	}`)
	if _, err := buildAnalysis(sc); err == nil {
		t.Error("coefficient block mismatch must error")
	}
}

func TestBuildAnalysisViolatingOrigRejected(t *testing.T) {
	sc := parseScenario(t, `{
		"params": [{"name": "x", "orig": [10]}],
		"features": [{"name": "f", "max": 5, "coeffs": [[1]]}]
	}`)
	if _, err := buildAnalysis(sc); err == nil {
		t.Error("original point outside bounds must be rejected")
	}
}

func TestParsePoint(t *testing.T) {
	sc := parseScenario(t, exampleScenario)
	a, err := buildAnalysis(sc)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := parsePoint("1.5, 2.5; 4100", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0][0] != 1.5 || vals[0][1] != 2.5 || vals[1][0] != 4100 {
		t.Errorf("parsed %v", vals)
	}
	if _, err := parsePoint("1,2", a); err == nil {
		t.Error("wrong block count must error")
	}
	if _, err := parsePoint("1,x;3", a); err == nil {
		t.Error("non-numeric element must error")
	}
}

func TestFmtRadius(t *testing.T) {
	if got := fmtRadius(math.Inf(1)); got != "inf (unreachable boundary)" {
		t.Errorf("inf rendering = %q", got)
	}
	if got := fmtRadius(1.5); got != "1.5" {
		t.Errorf("finite rendering = %q", got)
	}
}
