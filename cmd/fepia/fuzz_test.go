package main

// FuzzScenarioJSON drives the scenario parser and analysis builder with
// arbitrary byte strings: malformed JSON, mismatched coefficient-block
// shapes, and non-finite floats must all surface as errors — never as a
// panic, and never as an analysis that later divides by a zero dimension.

import (
	"encoding/json"
	"testing"

	"fepia"
)

func FuzzScenarioJSON(f *testing.F) {
	f.Add([]byte(exampleScenario))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"params": [], "features": []}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"params": [{"name": "x", "orig": []}], "features": [{"name": "f", "coeffs": [[]]}]}`))
	// Coefficient block count disagrees with the parameter count.
	f.Add([]byte(`{"params": [{"name": "x", "orig": [1]}], "features": [{"name": "f", "max": 1, "coeffs": [[2], [3]]}]}`))
	// Coefficient block length disagrees with the parameter dimension.
	f.Add([]byte(`{"params": [{"name": "x", "orig": [1, 2]}], "features": [{"name": "f", "max": 1, "coeffs": [[2]]}]}`))
	// Bounds that exclude the original operating point.
	f.Add([]byte(`{"params": [{"name": "x", "orig": [1]}], "features": [{"name": "f", "max": -5, "coeffs": [[2]]}]}`))
	// Inverted band.
	f.Add([]byte(`{"params": [{"name": "x", "orig": [1]}], "features": [{"name": "f", "min": 9, "max": -9, "coeffs": [[1]]}]}`))
	// A large float that overflows to +Inf when scaled.
	f.Add([]byte(`{"params": [{"name": "x", "orig": [1e308]}], "features": [{"name": "f", "max": 1, "coeffs": [[1e308]]}]}`))
	f.Add([]byte(`{"params": [{"name": "x", "orig": [0]}], "features": [{"name": "f", "max": 1, "coeffs": [[1]]}]}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var sc scenario
		if err := json.Unmarshal(raw, &sc); err != nil {
			return // malformed JSON is rejected upstream of buildAnalysis
		}
		a, err := buildAnalysis(sc)
		if err != nil {
			return // shape or validation errors are the expected outcome
		}
		// A scenario that builds must also evaluate without panicking.
		_, _ = a.Robustness(fepia.Normalized{})
	})
}
