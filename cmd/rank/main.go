// Command rank runs the full mapping-heuristic line-up on one independent-
// task instance and prints each allocation's estimated makespan, its FePIA
// robustness under its own requirement τ·M^orig, and its robustness under a
// shared requirement τ·M(min-min) — the two readings of "which mapping is
// most robust" that experiment E7 contrasts.
//
// Usage:
//
//	rank [-tasks 64] [-machines 8] [-cv 0.35] [-class inconsistent|partial|consistent]
//	     [-tau 1.3] [-seed 1] [-load etc.json] [-save etc.json]
//
// -save writes the generated ETC matrix as JSON; -load replays a saved one
// (the same makespan document POST /v1/search takes as its instance).
// -meta adds the metaheuristic mappers (annealing, genetic), which run
// through the engine-backed search (internal/sched Search): output is
// byte-stable for a fixed seed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"fepia"
	"fepia/internal/etc"
	"fepia/internal/makespan"
	"fepia/internal/report"
	"fepia/internal/scenario"
	"fepia/internal/sched"
	"fepia/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "rank: %v\n", err)
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "rank: the ranking exceeded -timeout; raise the budget or drop -meta/-staging")
		}
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags in, report out.
// Everything it prints is a deterministic function of the arguments (no
// timestamps, no map iteration), so tests can hold the output byte-stable.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rank", flag.ContinueOnError)
	tasks := fs.Int("tasks", 64, "number of tasks")
	machines := fs.Int("machines", 8, "number of machines")
	cv := fs.Float64("cv", 0.35, "task and machine heterogeneity (CVB coefficient of variation)")
	class := fs.String("class", "inconsistent", "ETC consistency class: inconsistent, partial, or consistent")
	tau := fs.Float64("tau", 1.3, "robustness requirement multiplier (> 1)")
	meta := fs.Bool("meta", false, "also run the metaheuristic mappers (annealing, genetic) — slower")
	staging := fs.Bool("staging", false, "add input-data staging (bytes) as a second perturbation kind and report the combined dimensionless rho")
	seed := fs.Int64("seed", 1, "instance seed")
	loadPath := fs.String("load", "", "replay a saved ETC matrix instead of generating")
	savePath := fs.String("save", "", "write the ETC matrix as JSON")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole ranking (0 = unlimited), e.g. 1m")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var m *etc.Matrix
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		var err2 error
		m, _, err2 = scenario.LoadMakespan(f)
		f.Close()
		if err2 != nil {
			return err2
		}
	} else {
		src := stats.NewSource(*seed)
		p := etc.CVBParams{Tasks: *tasks, Machines: *machines, MeanTask: 10, TaskCV: *cv, MachineCV: *cv}
		var err error
		switch *class {
		case "consistent":
			p.Consistent = true
			m, err = etc.CVB(p, src)
		case "partial":
			m, err = etc.PartiallyConsistent(p, src)
		case "inconsistent":
			m, err = etc.CVB(p, src)
		default:
			return fmt.Errorf("unknown class %q", *class)
		}
		if err != nil {
			return err
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := scenario.SaveMakespan(f, m, nil); err != nil {
			f.Close()
			return err
		}
		f.Close()
		fmt.Fprintf(stdout, "ETC matrix written to %s\n\n", *savePath)
	}

	fmt.Fprintf(stdout, "instance: %d tasks x %d machines (%s), achieved task CV %.3f, machine CV %.3f\n\n",
		m.Tasks, m.Machines, m.Classify(), m.TaskCV(), m.MachineCV())

	mmAlloc, err := sched.MinMin(m)
	if err != nil {
		return err
	}
	mmSys, err := makespan.New(m, mmAlloc)
	if err != nil {
		return err
	}
	commonBound := *tau * mmSys.OrigMakespan()

	// Optional mixed-kind extension: per-task input sizes staged over each
	// machine's ingest link (the E13 model).
	var sizes, bws []float64
	if *staging {
		ssrc := stats.NewSource(*seed ^ 0x57a61)
		sizes = ssrc.UniformVec(m.Tasks, 1000, 50000)
		bws = ssrc.UniformVec(m.Machines, 5000, 20000)
	}

	type row struct {
		name                  string
		ms, rhoOwn, rhoCommon float64
		rhoMixed              float64
	}
	lineup := sched.Registry(*tau, stats.NewSource(*seed^0x5eed))
	if *meta {
		lineup = append(lineup,
			sched.Named{Name: "anneal-robust", Fn: sched.Anneal(sched.AnnealOptions{Tau: *tau, Seed: *seed})},
			sched.Named{Name: "genetic-robust", Fn: sched.Genetic(sched.GAOptions{Tau: *tau, Seed: *seed})},
		)
	}
	var rows []row
	for _, h := range lineup {
		alloc, err := h.Fn(m)
		if err != nil {
			return err
		}
		s, err := makespan.New(m, alloc)
		if err != nil {
			return err
		}
		_, own, err := s.ClosedFormRadii(*tau)
		if err != nil {
			return err
		}
		_, common, err := s.RadiiWithBound(commonBound)
		if err != nil {
			return err
		}
		r := row{name: h.Name, ms: s.OrigMakespan(), rhoOwn: own, rhoCommon: common}
		if *staging {
			ms, err := makespan.NewMixed(m, alloc, sizes, bws)
			if err != nil {
				return err
			}
			a, err := ms.MixedAnalysis(*tau)
			if err != nil {
				return err
			}
			rho, err := a.RobustnessCtx(ctx, fepia.Normalized{})
			if err != nil {
				return err
			}
			r.rhoMixed = rho.Value
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].ms < rows[b].ms })

	cols := []string{"heuristic", "est. makespan", "rho (own req.)", "rho (common req.)"}
	if *staging {
		cols = append(cols, "mixed rho (exec+bytes, dimensionless)")
	}
	tb := report.NewTable(fmt.Sprintf("heuristic ranking (tau = %.2f; common bound = %.4g)", *tau, commonBound), cols...)
	for _, r := range rows {
		cells := []interface{}{r.name, r.ms, r.rhoOwn, r.rhoCommon}
		if *staging {
			cells = append(cells, r.rhoMixed)
		}
		tb.AddRow(cells...)
	}
	tb.WriteText(stdout)
	fmt.Fprintln(stdout, "\nrho own-req.: tolerance to execution-time drift against the allocation's")
	fmt.Fprintln(stdout, "own promise (tau x its estimate). rho common-req.: against one shared QoS")
	fmt.Fprintln(stdout, "contract; negative means the allocation misses the contract outright.")
	return nil
}
