package main

import (
	"bytes"
	"testing"
)

// TestMetaOutputByteStable pins the determinism contract of the
// metaheuristic mappers: two `rank -meta` runs with the same seed must
// print byte-identical reports — the annealing and genetic searches now go
// through the engine-backed sched.Search, whose trajectory depends only on
// the seed, never on scheduling or backend.
func TestMetaOutputByteStable(t *testing.T) {
	args := []string{"-tasks", "24", "-machines", "5", "-meta", "-seed", "7"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("-meta output not byte-stable across runs:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("run printed nothing")
	}
}

// TestSaveLoadRoundTrip: a saved instance replays to the identical report
// (the -save document is also what POST /v1/search takes as its instance).
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/etc.json"
	var gen bytes.Buffer
	if err := run([]string{"-tasks", "12", "-machines", "3", "-seed", "3", "-save", path}, &gen); err != nil {
		t.Fatal(err)
	}
	var replay bytes.Buffer
	// -seed still drives the random heuristic's stream; only the instance
	// comes from the file.
	if err := run([]string{"-load", path, "-seed", "3"}, &replay); err != nil {
		t.Fatal(err)
	}
	// The generated run prints a "written to" banner first; the replayed
	// report must match everything after it.
	genOut := gen.Bytes()
	idx := bytes.Index(genOut, []byte("instance:"))
	if idx < 0 {
		t.Fatalf("no instance header in output:\n%s", genOut)
	}
	if !bytes.Equal(genOut[idx:], replay.Bytes()) {
		t.Fatalf("replayed report diverged:\n--- generated ---\n%s\n--- replayed ---\n%s", genOut[idx:], replay.String())
	}
}
