// Command hiperdsim generates a synthetic HiPer-D streaming scenario,
// prints its FePIA robustness analysis (mixed execution-time and
// message-length perturbations), and cross-validates the analytic model with
// a discrete-event simulation — optionally at a perturbed operating point.
//
// Usage:
//
//	hiperdsim [-seed 1] [-sensors 2] [-layers 2] [-width 3] [-actuators 2]
//	          [-rate 4] [-datasets 500] [-scale-exec 1.0] [-scale-msg 1.0]
//	          [-save system.json | -load system.json] [-fail N]
//
// -scale-exec and -scale-msg multiply every execution time / message length
// before the simulation to explore robustness: try pushing them until the
// QoS breaks and compare against the printed robustness radius. -save writes
// the generated scenario as JSON; -load replays a saved one instead of
// generating. -fail N removes machine N (robustness-aware recovery) before
// the analysis.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"fepia"
	"fepia/internal/hiperd"
	"fepia/internal/report"
	"fepia/internal/scenario"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "scenario seed")
	sensors := flag.Int("sensors", 2, "number of sensor applications")
	layers := flag.Int("layers", 2, "processing layers")
	width := flag.Int("width", 3, "applications per layer")
	actuators := flag.Int("actuators", 2, "number of actuator applications")
	rate := flag.Float64("rate", 4, "sensor data-set rate (per second)")
	dataSets := flag.Int("datasets", 500, "data sets to simulate")
	scaleExec := flag.Float64("scale-exec", 1.0, "multiply every execution time")
	scaleMsg := flag.Float64("scale-msg", 1.0, "multiply every message length")
	savePath := flag.String("save", "", "write the scenario as JSON and continue")
	loadPath := flag.String("load", "", "replay a saved scenario instead of generating")
	failIdx := flag.Int("fail", -1, "fail machine N (robust remap) before the analysis")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the robustness analysis (0 = unlimited), e.g. 30s")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var sys *hiperd.System
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		sys, err = scenario.LoadHiPerD(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		p := workload.DefaultHiPerD()
		p.Sensors, p.Layers, p.Width, p.Actuators = *sensors, *layers, *width, *actuators
		p.Rate = *rate
		var err error
		sys, err = workload.HiPerD(p, stats.NewSource(*seed))
		if err != nil {
			fatal(err)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := scenario.SaveHiPerD(f, sys); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Printf("scenario written to %s\n\n", *savePath)
	}
	if *failIdx >= 0 {
		failed, err := sys.FailMachine(*failIdx, hiperd.RobustRemap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("machine %d failed; %d survivors after robustness-aware recovery\n\n", *failIdx, len(failed.Machines))
		sys = failed
	}

	fmt.Printf("HiPer-D scenario: %d apps, %d machines, %d edges, rate %.3g/s, latency bound %.4gs\n\n",
		len(sys.Apps), len(sys.Machines), len(sys.MsgSizes), sys.Rate, sys.LatencyMax)

	a, err := sys.Analysis()
	if err != nil {
		fatal(err)
	}
	tb := report.NewTable("Robustness analysis", "quantity", "value")
	for j, pp := range a.Params {
		r, err := a.RobustnessSingleCtx(ctx, j)
		if err != nil {
			fatal(err)
		}
		tb.AddRow(fmt.Sprintf("rho vs %s (%s)", pp.Name, pp.Unit), r.Value)
	}
	rho, err := a.RobustnessCtx(ctx, fepia.Normalized{})
	if err != nil {
		fatal(err)
	}
	tb.AddRow("combined rho (normalized P-space)", rho.Value)
	tb.AddRow("critical feature", a.Features[rho.Critical].Name)
	tb.WriteText(os.Stdout)
	fmt.Println()

	// Simulate at the (possibly scaled) operating point.
	e := sys.OrigExecTimes().Scale(*scaleExec)
	m := sys.OrigMsgSizes().Scale(*scaleMsg)
	okAna, err := sys.QoSOK(e, m)
	if err != nil {
		fatal(err)
	}
	anaLat, err := sys.WorstLatency(e, m)
	if err != nil {
		fatal(err)
	}
	warmup := *dataSets / 10
	res, err := sys.Simulate(e, m, *dataSets, warmup)
	if err != nil {
		fatal(err)
	}
	tb2 := report.NewTable(fmt.Sprintf("Simulation at scale-exec=%.3g scale-msg=%.3g (%d data sets)",
		*scaleExec, *scaleMsg, *dataSets),
		"quantity", "value")
	tb2.AddRow("analytic worst latency (s)", anaLat)
	tb2.AddRow("simulated mean latency (s)", res.MeanLatency)
	tb2.AddRow("simulated max latency (s)", res.MaxLatency)
	tb2.AddRow("QoS satisfied (analytic)", okAna)
	tb2.AddRow("QoS satisfied (simulated)", res.MaxLatency <= sys.LatencyMax)
	tb2.AddRow("data sets completed", res.DataSets)
	tb2.AddRow("simulator events", res.Events)
	tb2.WriteText(os.Stdout)

	// Where does this operating point sit relative to the radius?
	vals := []fepia.Vector{e, m}
	pVec, err := fepia.ToP(a, fepia.Normalized{}, 0, vals)
	if err != nil {
		fatal(err)
	}
	pOrig, err := fepia.POrig(a, fepia.Normalized{}, 0)
	if err != nil {
		fatal(err)
	}
	dist := pVec.Dist2(pOrig)
	fmt.Printf("\n||P - P_orig|| = %.4g vs rho = %.4g: ", dist, rho.Value)
	switch {
	case dist < rho.Value:
		fmt.Println("inside the robustness radius — QoS guaranteed.")
	default:
		fmt.Println("outside the radius — no guarantee (may or may not violate).")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hiperdsim: %v\n", err)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "hiperdsim: the analysis exceeded -timeout; raise the budget or shrink the scenario")
	}
	os.Exit(1)
}
