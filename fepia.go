// Package fepia is the public API of this repository: a production-oriented
// implementation of the FePIA robustness analysis for resource allocations
// in parallel and distributed systems, reproducing
//
//	B. Eslamnour and S. Ali, "A Measure of Robustness Against Multiple
//	Kinds of Perturbations", Proc. 19th IEEE IPDPS, 2005,
//
// which extends Ali, Maciejewski, Siegel, and Kim, "Measuring the
// Robustness of a Resource Allocation" (IEEE TPDS 15(7), 2004) to
// perturbation parameters of different kinds (different physical units).
//
// # Concepts
//
// A robustness analysis consists of:
//
//   - Perturbation parameters π_j — vectors of uncertain quantities, one
//     vector per *kind* (task execution times in seconds, message lengths
//     in bytes, sensor loads in objects per data set, …), each with its
//     assumed original value π_j^orig.
//   - Performance features φ_i — the QoS quantities that must stay within
//     tolerable bounds ⟨β_i^min, β_i^max⟩ (makespan, utilization, latency).
//   - Impact functions f_i mapping parameter values to feature values.
//
// The robustness radius r_μ(φ_i, π_j) is the smallest Euclidean distance
// from π_j^orig to a parameter value at which φ_i leaves its bounds; the
// robustness metric ρ is the minimum radius over all features. For multiple
// kinds of perturbations the parameters are merged into one dimensionless
// vector P; this package implements both merge schemes the paper analyzes —
// the degenerate sensitivity weighting and the normalized weighting the
// paper proposes — plus the operating-point check built on them.
//
// # Quick start
//
//	a, err := fepia.NewAnalysis(
//		[]fepia.Feature{{
//			Name:   "latency",
//			Bounds: fepia.MaxOnly(42),
//			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
//		}},
//		[]fepia.Perturbation{
//			{Name: "exec-times", Unit: "s", Orig: fepia.Vector{1, 2}},
//			{Name: "msg-lengths", Unit: "bytes", Orig: fepia.Vector{4}},
//		},
//	)
//	if err != nil { ... }
//	rho, err := a.Robustness(fepia.Normalized{})  // ρ_μ(Φ, P), Eq. 2
//
// Production callers should prefer the hardened entry point, which takes a
// context, a worker-pool size, and a policy for numeric failures:
//
//	rho, err := a.RobustnessWith(ctx, fepia.Normalized{}, fepia.EvalOptions{
//		Workers:          4,    // per-feature worker pool
//		DegradeOnNumeric: true, // NaN/Inf ⇒ Monte-Carlo lower bound, flagged Degraded
//	})
//
// The examples/ directory contains complete programs: a quick start, the
// makespan ranking scenario, the HiPer-D streaming scenario with DES
// validation, and an interactive demonstration of the 1/√n degeneracy.
//
// # Failure semantics
//
// The evaluation runtime is hardened for service use. Context-aware
// variants of the expensive entry points — Analysis.RobustnessCtx,
// Analysis.RobustnessConcurrentCtx, Analysis.MonteCarloCtx,
// Analysis.RadiusSingleCtx, Analysis.CombinedRadiusCtx — honor
// cancellation and deadlines within one impact-function evaluation. A
// panicking ImpactFunc is contained as a typed *ImpactPanicError (matched
// by errors.Is(err, ErrImpactPanic)) carrying the feature index and stack;
// NaN/Inf leaking out of an impact function or the numeric root-finding
// becomes a typed *NumericError (ErrNumeric) instead of a silently wrong
// radius; and Analysis.RobustnessWith with EvalOptions.DegradeOnNumeric
// degrades numeric failures to a Monte-Carlo lower-bound estimate flagged
// Degraded: true. See docs/failure-semantics.md for the full taxonomy.
//
// # Throughput
//
// For many evaluations — candidate ranking, sweeps, service loops — use the
// batch engine and the impact cache instead of looping over Robustness:
//
//	a.EnableImpactCache(0) // memoize impact evaluations (numeric tier)
//	results, errs := fepia.RobustnessBatch(ctx, items, fepia.EvalOptions{})
//
// RobustnessBatch schedules every boundary search of every item on one
// shared worker pool; Analysis.RobustnessBatchCtx and
// Analysis.CombinedRadiusBatchCtx are the single-analysis conveniences. The
// cache is sharded (lock-free reads; EnableImpactCacheWith tunes capacity
// and shard count) and never stores faulty (NaN/Inf/panicking) evaluations,
// so the failure semantics above are unchanged.
//
// Two further accelerations target the numeric level-set tier, and both are
// exact — radii stay bit-identical to the plain scalar search:
//
//	a.EnableWarmStart() // reuse converged brackets across repeated searches
//	rho, err := a.RobustnessWith(ctx, fepia.Normalized{}, fepia.EvalOptions{
//		KProbe: 8, // evaluate probe blocks through Feature.ImpactK kernels
//	})
//
// Warm starts record each boundary search's probe lines and converged
// brackets and replay them — after bit-exact revalidation against the live
// objective — on the next search of the same feature; EvalOptions.KProbe
// batches boundary probes through vectorized impact kernels (features built
// by the scenario layer carry kernels for all four analytic families). See
// docs/architecture.md for the engine layout and docs/performance.md for
// measured numbers and tuning guidance.
//
// # Serving
//
// To run evaluations as a network service, use cmd/fepiad: an HTTP JSON
// daemon over these entry points with admission control and load shedding,
// per-request deadlines, a per-scenario-class circuit breaker that degrades
// to the Monte-Carlo tier instead of failing, and graceful drain on
// SIGTERM. Beyond one machine, fepiad -mode=coordinator scatters each
// evaluation over a fleet of worker daemons and min-folds the shards back
// into bit-identical single-node results (internal/cluster). See
// docs/operations.md, in particular its "Running a fleet" section.
package fepia

import (
	"context"

	"fepia/internal/core"
	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// Vector is a dense real vector; the element order of a perturbation
// parameter or coefficient block.
type Vector = vec.V

// Perturbation is one perturbation parameter π_j (one kind of uncertainty).
type Perturbation = core.Perturbation

// Bounds is the tolerable variation ⟨β^min, β^max⟩ of a feature.
type Bounds = core.Bounds

// Feature is a QoS performance feature φ_i with bounds and impact function.
type Feature = core.Feature

// ImpactFunc maps perturbation values to a feature value.
type ImpactFunc = core.ImpactFunc

// LinearImpact declares an affine impact function, unlocking exact
// closed-form radii.
type LinearImpact = core.LinearImpact

// QuadImpact declares a separable quadratic impact function, unlocking the
// exact ellipsoid tier.
type QuadImpact = core.QuadImpact

// Analysis is a complete FePIA robustness analysis.
type Analysis = core.Analysis

// Radius is the outcome of a robustness-radius computation.
type Radius = core.Radius

// Robustness is the system-level metric ρ with per-feature breakdown.
type Robustness = core.Robustness

// Certifier is the operating-point recipe precompiled for repeated checks
// (admission-control loops). Build one with Analysis.NewCertifier.
type Certifier = core.Certifier

// Weighting merges parameters of different kinds into the dimensionless
// P-space.
type Weighting = core.Weighting

// Normalized is the paper's proposed weighting: P_jk = π_jk/π_jk^orig
// (Section 3.2). This is the scheme to use.
type Normalized = core.Normalized

// Sensitivity is the earlier weighting α_j = 1/r_μ(φ_i, π_j), which the
// paper proves degenerate for linear features (Section 3.1). Provided for
// comparison and reproduction.
type Sensitivity = core.Sensitivity

// Custom is the paper's general weighted concatenation with caller-chosen
// weighting constants α_j (one per perturbation parameter).
type Custom = core.Custom

// BoundarySide identifies which bound a nearest boundary point lies on.
type BoundarySide = core.BoundarySide

// Boundary sides.
const (
	SideNone = core.SideNone
	SideMax  = core.SideMax
	SideMin  = core.SideMin
)

// Norm selects the distance notion for norm-generalized radii of linear
// features (RadiusSingleNorm / RobustnessSingleNorm).
type Norm = core.Norm

// Norm choices: the paper's Euclidean radius plus the total-budget (ℓ1) and
// uniform-drift (ℓ∞) variants.
const (
	L2   = core.L2
	L1   = core.L1
	LInf = core.LInf
)

// MCModel selects the Monte-Carlo perturbation model.
type MCModel = core.MCModel

// Monte-Carlo perturbation models.
const (
	MCRelativeNormal = core.MCRelativeNormal
	MCUniformBall    = core.MCUniformBall
)

// MCOptions configure Analysis.MonteCarlo.
type MCOptions = core.MCOptions

// MCResult summarizes a Monte-Carlo robustness estimation.
type MCResult = core.MCResult

// EvalOptions tune the hardened evaluation engine (Analysis.RobustnessWith):
// worker-pool size and the Monte-Carlo degradation of numeric failures.
type EvalOptions = core.EvalOptions

// BatchItem pairs one analysis (e.g. a candidate resource allocation) with
// the weighting to evaluate it under; the unit of work of RobustnessBatch.
type BatchItem = core.BatchItem

// CacheStats is a snapshot of the impact cache's counters (see
// Analysis.EnableImpactCache and Analysis.CacheStats).
type CacheStats = core.CacheStats

// CacheOptions configure the sharded impact cache
// (Analysis.EnableImpactCacheWith): entry capacity and shard count.
type CacheOptions = core.CacheOptions

// CacheShardStats is one cache shard's counters
// (Analysis.CacheShardStats); imbalanced shard hit rates signal probe-key
// skew.
type CacheShardStats = core.CacheShardStats

// WarmStats count what warm-started boundary searches reused
// (Analysis.EnableWarmStart and Analysis.WarmStats).
type WarmStats = optimize.WarmStats

// ImpactPanicError reports a panic recovered from a caller-supplied impact
// function; it carries the feature index and the captured stack.
type ImpactPanicError = core.ImpactPanicError

// NumericError reports a NaN/Inf observed during a robustness evaluation.
type NumericError = core.NumericError

// Containment sentinels for errors.Is; see docs/failure-semantics.md.
var (
	// ErrImpactPanic matches any error caused by a panic inside a
	// caller-supplied impact function.
	ErrImpactPanic = core.ErrImpactPanic
	// ErrNumeric matches any error caused by a non-finite value observed
	// while evaluating an impact function or a radius.
	ErrNumeric = core.ErrNumeric
	// ErrDimMismatch matches errors from wrong-shaped parameter values
	// (Tolerable, Certifier.Check, Certifier.CriticalMargin, ToP/FromP).
	ErrDimMismatch = vec.ErrDimMismatch
)

// NewAnalysis assembles and validates an analysis.
func NewAnalysis(features []Feature, params []Perturbation) (*Analysis, error) {
	return core.NewAnalysis(features, params)
}

// MaxOnly is the one-sided requirement φ ≤ max.
func MaxOnly(max float64) Bounds { return core.MaxOnly(max) }

// MinOnly is the one-sided requirement φ ≥ min.
func MinOnly(min float64) Bounds { return core.MinOnly(min) }

// Band is the two-sided requirement min ≤ φ ≤ max.
func Band(min, max float64) Bounds { return core.Band(min, max) }

// SingleParamRadiusLinear is the paper's Section 3.1 closed form for
// r_μ(φ, π_j) of a linear feature over one-element parameters.
func SingleParamRadiusLinear(k, orig Vector, j int, beta float64) (float64, error) {
	return core.SingleParamRadiusLinear(k, orig, j, beta)
}

// SensitivityRadiusLinear is the paper's degeneracy value 1/√n.
func SensitivityRadiusLinear(n int) float64 { return core.SensitivityRadiusLinear(n) }

// NormalizedRadiusLinear is the paper's Section 3.2 closed form for the
// normalized combined radius of a linear feature.
func NormalizedRadiusLinear(k, orig Vector, beta float64) (float64, error) {
	return core.NormalizedRadiusLinear(k, orig, beta)
}

// LinearOneElemAnalysis builds the linear one-element-parameter system of
// Section 3.1: φ = Σ k_j·π_j with bound β·φ^orig.
func LinearOneElemAnalysis(k, orig Vector, beta float64) (*Analysis, error) {
	return core.LinearOneElemAnalysis(k, orig, beta)
}

// ToP converts native parameter values to P-space under w for feature i.
func ToP(a *Analysis, w Weighting, featIdx int, values []Vector) (Vector, error) {
	return core.ToP(a, w, featIdx, values)
}

// FromP converts a P-space vector back to native parameter values.
func FromP(a *Analysis, w Weighting, featIdx int, p Vector) ([]Vector, error) {
	return core.FromP(a, w, featIdx, p)
}

// POrig returns P^orig for feature featIdx under w.
func POrig(a *Analysis, w Weighting, featIdx int) (Vector, error) {
	return core.POrig(a, w, featIdx)
}

// RobustnessBatch evaluates every (analysis, weighting) candidate of items
// over one shared worker pool, splitting numeric radii into independently
// scheduled boundary-side searches. The returned slices are parallel to
// items; per-item failure semantics match Analysis.RobustnessWith. See the
// package documentation's Throughput section and docs/performance.md.
func RobustnessBatch(ctx context.Context, items []BatchItem, opt EvalOptions) ([]Robustness, []error) {
	return core.RobustnessBatch(ctx, items, opt)
}
