package fepia_test

// End-to-end integration tests: each walks a complete operator story across
// package boundaries — generate a system, analyze it, certify operating
// points, validate with the discrete-event simulator, break the system,
// recover, and re-analyze. These are the flows the README promises; the
// unit suites cover the parts, these cover the joints.

import (
	"bytes"
	"math"
	"testing"

	"fepia"
	"fepia/internal/core"
	"fepia/internal/hiperd"
	"fepia/internal/makespan"
	"fepia/internal/scenario"
	"fepia/internal/sched"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

// TestEndToEndStreamingLifecycle: workload → analysis → certifier → DES →
// failure → robust recovery → re-analysis → serialization round trip.
func TestEndToEndStreamingLifecycle(t *testing.T) {
	p := workload.DefaultHiPerD()
	p.DedicatedMachines = false
	p.Machines = 5
	p.Rate = 2
	sys, err := workload.HiPerD(p, stats.NewSource(77))
	if err != nil {
		t.Fatal(err)
	}

	// Analyze and certify.
	a, err := sys.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.Robustness(fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) {
		t.Fatalf("rho = %v", rho.Value)
	}
	cert, err := a.NewCertifier(fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cert.Rho()-rho.Value) > 1e-12 {
		t.Fatalf("certifier rho %v != analysis rho %v", cert.Rho(), rho.Value)
	}

	// Certified operating point runs clean in the simulator.
	e := sys.OrigExecTimes().Scale(1.02)
	m := sys.OrigMsgSizes().Scale(1.02)
	ok, err := cert.Check([]fepia.Vector{e, m})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("2% uniform drift should be certified on this system")
	}
	sim, err := sys.Simulate(e, m, 150, 15)
	if err != nil {
		t.Fatal(err)
	}
	if sim.MaxLatency > sys.LatencyMax {
		t.Fatalf("certified point violated QoS in simulation: %v > %v", sim.MaxLatency, sys.LatencyMax)
	}

	// Fail a machine, recover robustly, and the survivors still run.
	failed, err := sys.FailMachine(1, hiperd.RobustRemap)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := failed.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho2, err := a2.RobustnessConcurrent(fepia.Normalized{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(rho2.Value > 0) {
		t.Fatalf("post-failure rho = %v", rho2.Value)
	}
	sim2, err := failed.Simulate(failed.OrigExecTimes(), failed.OrigMsgSizes(), 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.DataSets != 100 {
		t.Fatalf("post-failure system completed %d/100 data sets", sim2.DataSets)
	}

	// Serialization survives the whole object, including the failure state.
	var buf bytes.Buffer
	if err := scenario.SaveHiPerD(&buf, failed); err != nil {
		t.Fatal(err)
	}
	back, err := scenario.LoadHiPerD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := back.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	rho3, err := a3.Robustness(fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho3.Value-rho2.Value) > 1e-12 {
		t.Fatalf("serialized system changed robustness: %v vs %v", rho3.Value, rho2.Value)
	}
}

// TestEndToEndMakespanLifecycle: ETC generation → heuristic mapping →
// FePIA analysis → metric agreement with the closed form → Monte-Carlo and
// certified-ball consistency.
func TestEndToEndMakespanLifecycle(t *testing.T) {
	m, err := workload.Makespan(workload.DefaultMakespan(), stats.NewSource(88))
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := sched.Sufferage(m)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := makespan.New(m, alloc)
	if err != nil {
		t.Fatal(err)
	}
	const tau = 1.25
	a, err := sys.Analysis(tau)
	if err != nil {
		t.Fatal(err)
	}
	_, rhoCF, err := sys.ClosedFormRadii(tau)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.RobustnessSingle(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho.Value-rhoCF) > 1e-9*(1+rhoCF) {
		t.Fatalf("engine %v vs closed form %v", rho.Value, rhoCF)
	}

	// The normalized certified ball is violation-free under Monte-Carlo.
	rhoN, err := a.Robustness(core.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := a.MonteCarlo(core.MCOptions{
		Model:   core.MCUniformBall,
		Spread:  rhoN.Value * 0.999,
		Samples: 3000,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Violations != 0 {
		t.Fatalf("%d violations inside the certified ball", mc.Violations)
	}
}

// TestEndToEndMixedKinds: the paper's headline flow — two incompatible
// units, per-kind radii, combined dimensionless metric, recipe soundness —
// exercised through the public facade only.
func TestEndToEndMixedKinds(t *testing.T) {
	a, err := fepia.NewAnalysis(
		[]fepia.Feature{
			{
				Name:   "latency",
				Bounds: fepia.MaxOnly(50),
				Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{3, 1}, {0.004}}},
			},
			{
				Name:   "power",
				Bounds: fepia.MaxOnly(30),
				Quad: &fepia.QuadImpact{
					A: []fepia.Vector{{2, 2}, {0}},
					C: []fepia.Vector{{0, 0}, {0}},
				},
			},
		},
		[]fepia.Perturbation{
			{Name: "exec", Unit: "s", Orig: fepia.Vector{2, 3}},
			{Name: "msg", Unit: "bytes", Orig: fepia.Vector{2500}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Per-kind and combined metrics exist and are finite.
	for j := 0; j < 2; j++ {
		r, err := a.RobustnessSingle(j)
		if err != nil {
			t.Fatal(err)
		}
		if !(r.Value > 0) || math.IsInf(r.Value, 1) {
			t.Fatalf("param %d rho = %v", j, r.Value)
		}
	}
	rho, err := a.Robustness(fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	// Mixed linear+quadratic feature set: both tiers must be analytic.
	for _, r := range rho.PerFeature {
		if !r.Analytic {
			t.Fatalf("feature %d fell back to the numeric tier", r.Feature)
		}
	}
	// Recipe soundness sweep via the facade.
	src := stats.NewSource(4)
	for trial := 0; trial < 300; trial++ {
		vals := []fepia.Vector{
			{2 * src.Uniform(0.5, 1.6), 3 * src.Uniform(0.5, 1.6)},
			{2500 * src.Uniform(0.5, 1.6)},
		}
		ok, err := a.Tolerable(vals, fepia.Normalized{})
		if err != nil {
			t.Fatal(err)
		}
		if ok && a.Violates(vals) {
			t.Fatalf("unsound verdict at %v", vals)
		}
	}
}
